//! Deployment helper: spin up a fabric of providers plus clients, and
//! run deployment-wide maintenance (GC audit, anti-entropy repair).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use evostore_kv::{ChunkStats, ChunkedStore, FannedLogStore, KvBackend, LogStore, MemPoolStore};
use evostore_obs::ledger::install_costs;
use evostore_obs::{
    FlightEvent, MonotonicClock, ObsHub, ObsServer, OpCosts, OpLedger, RegistrySnapshot, SloSpec,
    TimeSource, Tracer,
};
use evostore_rpc::{BulkHandle, EndpointId, Fabric, RetryPolicy, TraceHandle};
use evostore_tensor::{ModelId, TensorKey};

use crate::client::EvoStoreClient;
use crate::messages::{
    methods, DigestReply, DigestRequest, GetMetaRequest, HaveChunksReply, HaveChunksRequest,
    ModelMetaReply, ObsSnapshotRequest, ProviderStats, ReadChunksReply, ReadChunksRequest,
    ReadTensorsReply, ReadTensorsRequest, SyncChunksReply, SyncChunksRequest, SyncModelReply,
    SyncModelRequest, SyncRefsReply, SyncRefsRequest, SyncRetireReply, SyncRetireRequest,
    Tombstone, TransferManifestReply, TransferManifestRequest,
};
use crate::policy::{ChunkingPolicy, DataPlanePolicy, DeltaPolicy, StorePolicy};
use crate::provider::{Provider, ProviderState};
use crate::replication::ReplicationPolicy;

/// Flight-recorder capacity of the fabric's ring (faults, endpoint
/// down/up transitions).
pub const FABRIC_FLIGHT_EVENTS: usize = 4096;

/// Flight-recorder capacity of the deployment's own ring (repair and
/// transfer spans).
pub const DEPLOYMENT_FLIGHT_EVENTS: usize = 1024;

/// Which KV backend providers persist tensors into.
#[derive(Debug, Clone)]
pub enum BackendKind {
    /// Synchronized in-memory pools (the paper's experimental config).
    Memory,
    /// Append-only log store under `dir/provider-<i>/` (the RocksDB-style
    /// persistent config).
    Log { dir: std::path::PathBuf },
    /// Persistent log store fronted by a byte-bounded in-memory cache
    /// (the combined "in-memory and persistently" provider of §4.3).
    Tiered {
        /// Storage directory.
        dir: std::path::PathBuf,
        /// Memory-tier budget per provider, in bytes.
        memory_budget: usize,
    },
}

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Number of providers.
    pub providers: usize,
    /// RPC service threads per provider.
    pub service_threads: usize,
    /// Tensor storage backend.
    pub backend: BackendKind,
    /// Replica placement policy (factor 1 = the paper's unreplicated
    /// static hashing).
    pub replication: ReplicationPolicy,
    /// Observability clock override: spans, flight events and slow-op
    /// thresholds are stamped from this source. `None` uses the wall
    /// clock; simulations pass a virtual clock (e.g.
    /// `evostore_sim::SimClock`).
    pub clock: Option<Arc<dyn TimeSource>>,
    /// Physical tensor-storage policy: whole records vs content-addressed
    /// chunks, and parent-delta encoding of derived models. The default
    /// reproduces the pre-policy layout byte for byte.
    pub store_policy: StorePolicy,
    /// Data-plane copy discipline: zero-copy scatter-gather (default) or
    /// forced contiguous consolidation (the A/B measurement lever behind
    /// the datapath bench's `--force-copy` mode). Results are
    /// byte-identical either way.
    pub data_plane: DataPlanePolicy,
    /// Deprecated boolean form of [`DeploymentConfig::data_plane`]; kept
    /// for one release so existing call sites keep compiling. Either
    /// lever forcing consolidation wins.
    #[deprecated(note = "set data_plane: DataPlanePolicy::ForcedCopy instead")]
    pub force_copy_data_plane: bool,
    /// Broadcast-tree fanout of the delivery plane: how many subscribers
    /// fetch a released model directly from the provider; the rest fetch
    /// from an earlier subscriber along the planned tree.
    pub deliver_fanout: usize,
    /// Bind address (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) of
    /// the live exposition server serving `/metrics`, `/metrics.json`,
    /// `/slo`, `/traces/recent` and `/flight` over HTTP. `None` (the
    /// default) serves nothing.
    pub obs_listen: Option<String>,
    /// Repair/re-replication transfer discipline: negotiate chunk
    /// possession and ship only missing chunks and stored delta records
    /// (the default), or always ship materialized payloads — the A/B
    /// measurement lever behind the transfer bench's `--materialized`
    /// mode. Results are identical either way; only bytes moved differ.
    pub negotiated_transfer: bool,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        #[allow(deprecated)]
        DeploymentConfig {
            providers: 4,
            service_threads: 2,
            backend: BackendKind::Memory,
            replication: ReplicationPolicy::default(),
            clock: None,
            store_policy: StorePolicy::default(),
            data_plane: DataPlanePolicy::default(),
            force_copy_data_plane: false,
            deliver_fanout: 4,
            obs_listen: None,
            negotiated_transfer: true,
        }
    }
}

/// A running EvoStore deployment.
pub struct Deployment {
    fabric: Arc<Fabric>,
    providers: Vec<Provider>,
    provider_ids: Vec<EndpointId>,
    replication: ReplicationPolicy,
    obs: Arc<ObsHub>,
    force_copy: bool,
    obs_server: Option<ObsServer>,
    /// Per-op-class resource attribution for deployment-driven work
    /// (`repair` passes, per-model `transfer` legs), exported as
    /// `evostore_ledger_*` under node `deployment`.
    ledger: Arc<OpLedger>,
    /// Span factory for the transfer plane: every `transfer.sync_model`
    /// root carries the negotiation round-trips as child spans.
    tracer: Arc<Tracer>,
    /// Chunk-negotiated, delta-preserving sync (the default) vs always
    /// materialized — the transfer bench's A/B lever.
    negotiated_transfer: AtomicBool,
    /// The delta policy providers were built with; bounds the
    /// post-repair chain compaction pass.
    delta: DeltaPolicy,
}

/// What one [`Deployment::repair`] pass did.
#[derive(Debug, Default, Clone)]
pub struct RepairReport {
    /// Providers that did not answer the digest broadcast (their
    /// replicas could not be repaired this pass).
    pub unreachable: Vec<EndpointId>,
    /// Records re-replicated onto providers that missed or held stale
    /// copies of them.
    pub models_synced: usize,
    /// Stale records removed because a sibling replica witnessed the
    /// retirement.
    pub retirements_applied: usize,
    /// Tensor reference counts corrected to the authoritative value.
    pub refs_adjusted: usize,
    /// Orphaned tensor payloads reclaimed (only when every provider
    /// contributed a digest).
    pub orphans_removed: usize,
    /// Referenced payloads that could not be installed because no live
    /// replica holds them (data loss beyond the replication factor).
    pub missing_payloads: usize,
}

impl Deployment {
    /// Start a deployment.
    pub fn new(cfg: DeploymentConfig) -> Deployment {
        assert!(cfg.providers > 0);
        let fabric = Fabric::new();
        let obs_clock: Arc<dyn TimeSource> = cfg
            .clock
            .clone()
            .unwrap_or_else(|| Arc::new(MonotonicClock::default()));
        let obs = Arc::new(ObsHub::new(obs_clock));
        // Default latency objectives per op class; callers re-register
        // via `deployment.obs().slo()` to tighten or loosen them.
        for spec in [
            SloSpec::new("store", 250_000, 0.99),
            SloSpec::new("fetch", 250_000, 0.99),
            SloSpec::new("query", 50_000, 0.99),
            SloSpec::new("retire", 250_000, 0.99),
            SloSpec::new("repair", 5_000_000, 0.99),
            SloSpec::new("deliver", 500_000, 0.99),
        ] {
            obs.slo().register(spec);
        }
        fabric.set_flight_recorder(Some(obs.new_recorder("fabric", FABRIC_FLIGHT_EVENTS)));
        let clock = Arc::new(AtomicU64::new(1));
        // Either data-plane lever (typed policy or the deprecated
        // boolean) forces consolidation.
        #[allow(deprecated)]
        let force_copy = cfg.data_plane.is_forced_copy() || cfg.force_copy_data_plane;
        let chunking = cfg.store_policy.chunking;
        // Under chunking, the whole-tensor layer wraps in a
        // content-addressed chunk store; persistent tensor stores switch
        // to the fanned two-level hash-directory layout (chunk keys are
        // content hashes, so fan-out by leading key byte is uniform).
        let wrap = |b: Box<dyn KvBackend>| -> Box<dyn KvBackend> {
            match chunking {
                ChunkingPolicy::Whole => b,
                ChunkingPolicy::Chunked { chunk_size } => Box::new(
                    ChunkedStore::open(b, chunk_size).expect("open content-addressed chunk layer"),
                ),
            }
        };
        let mut providers = Vec::with_capacity(cfg.providers);
        for i in 0..cfg.providers {
            let (backend, meta): (Box<dyn KvBackend>, Box<dyn KvBackend>) = match &cfg.backend {
                BackendKind::Memory => (
                    wrap(Box::new(MemPoolStore::new())),
                    Box::new(MemPoolStore::new()),
                ),
                BackendKind::Log { dir } => {
                    let tensor_dir = dir.join(format!("provider-{i}/tensors"));
                    let tensors: Box<dyn KvBackend> = match chunking {
                        ChunkingPolicy::Whole => Box::new(
                            LogStore::open(tensor_dir).expect("open provider tensor store"),
                        ),
                        ChunkingPolicy::Chunked { .. } => Box::new(
                            FannedLogStore::open(tensor_dir).expect("open provider tensor store"),
                        ),
                    };
                    (
                        wrap(tensors),
                        Box::new(
                            LogStore::open(dir.join(format!("provider-{i}/meta")))
                                .expect("open provider meta store"),
                        ),
                    )
                }
                BackendKind::Tiered { dir, memory_budget } => {
                    let tensor_dir = dir.join(format!("provider-{i}/tensors"));
                    let durable: Box<dyn KvBackend> = match chunking {
                        ChunkingPolicy::Whole => Box::new(
                            LogStore::open(tensor_dir).expect("open provider tensor store"),
                        ),
                        ChunkingPolicy::Chunked { .. } => Box::new(
                            FannedLogStore::open(tensor_dir).expect("open provider tensor store"),
                        ),
                    };
                    (
                        wrap(Box::new(evostore_kv::TieredStore::new(
                            durable,
                            *memory_budget,
                        ))),
                        Box::new(
                            LogStore::open(dir.join(format!("provider-{i}/meta")))
                                .expect("open provider meta store"),
                        ),
                    )
                }
            };
            providers.push(Provider::spawn(
                Arc::clone(&fabric),
                i,
                cfg.providers,
                cfg.replication,
                Arc::clone(&clock),
                backend,
                meta,
                cfg.service_threads,
                Some(&obs),
                cfg.store_policy.delta,
                cfg.deliver_fanout,
            ));
        }
        if force_copy {
            for p in &providers {
                p.state.set_force_copy(true);
            }
        }
        let provider_ids: Vec<EndpointId> = providers.iter().map(|p| p.endpoint_id()).collect();
        let obs_server = cfg.obs_listen.as_deref().map(|addr| {
            Self::start_obs_server(addr, Arc::clone(&fabric), provider_ids.clone(), &obs)
                .unwrap_or_else(|e| panic!("obs exposition server on {addr}: {e}"))
        });
        let ledger = Arc::new(OpLedger::new());
        {
            let l = Arc::clone(&ledger);
            obs.registry().register(move || l.metrics("deployment"));
        }
        let tracer = Arc::new(Tracer::new(
            "deployment",
            Arc::clone(obs.clock()),
            obs.new_recorder("deployment", DEPLOYMENT_FLIGHT_EVENTS),
        ));
        Deployment {
            fabric,
            providers,
            provider_ids,
            replication: cfg.replication,
            obs,
            force_copy,
            obs_server,
            ledger,
            tracer,
            negotiated_transfer: AtomicBool::new(cfg.negotiated_transfer),
            delta: cfg.store_policy.delta,
        }
    }

    /// Spin up the live exposition server: every route re-renders from
    /// the deployment's current state per request.
    fn start_obs_server(
        addr: &str,
        fabric: Arc<Fabric>,
        provider_ids: Vec<EndpointId>,
        obs: &Arc<ObsHub>,
    ) -> std::io::Result<ObsServer> {
        let snap = {
            let (fabric, ids, obs) = (Arc::clone(&fabric), provider_ids.clone(), Arc::clone(obs));
            move || merged_snapshot(&fabric, &ids, &obs)
        };
        let metrics = snap.clone();
        let metrics_json = snap;
        let slo = Arc::clone(obs);
        let traces = Arc::clone(obs);
        let flight = {
            let (ids, obs) = (provider_ids, Arc::clone(obs));
            move || render_flight_dump(&obs, &ids)
        };
        ObsServer::builder()
            .route("/metrics", move || {
                (
                    "text/plain; version=0.0.4".into(),
                    metrics().to_prometheus_text(),
                )
            })
            .route("/metrics.json", move || {
                ("application/json".into(), metrics_json().to_json())
            })
            .route("/slo", move || {
                ("application/json".into(), slo.slo().to_json())
            })
            .route("/traces/recent", move || {
                ("text/plain".into(), traces.recent_traces(16))
            })
            .route("/flight", move || ("text/plain".into(), flight()))
            .start(addr)
    }

    /// Address of the live exposition server, when one was configured
    /// (its port is concrete even when the config bound port 0).
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs_server.as_ref().map(|s| s.addr())
    }

    /// Reopen a log-backed deployment after a restart: restore every
    /// provider's catalog from its durable meta store, then rebuild the
    /// tensor reference counts by replaying all owner maps (and attached
    /// optimizer states) across providers, and finally purge tensors
    /// orphaned by a crash.
    pub fn reopen(cfg: DeploymentConfig) -> Result<Deployment, String> {
        if matches!(cfg.backend, BackendKind::Memory) {
            return Err("reopen requires a persistent (Log) backend".into());
        }
        let rep = cfg.replication;
        let dep = Deployment::new(cfg);
        let states = dep.provider_states();
        for s in &states {
            s.recover_catalog();
        }
        // Replay references: every owner-map key and optimizer key of
        // every *distinct* model (replicas hold identical records after
        // a clean shutdown, so the union catalog dedups them) increments
        // the count on every provider of the key's replica chain.
        let n = states.len();
        let mut union: HashMap<ModelId, (u64, Vec<TensorKey>)> = HashMap::new();
        for s in &states {
            for (model, ts, map, opt) in s.catalog_entries() {
                match union.get(&model) {
                    Some(&(uts, _)) if uts == ts => {}
                    Some(&(uts, _)) => {
                        return Err(format!(
                            "model {model}: replica timestamps diverge after reopen \
                             ({uts} vs {ts}) — run repair()"
                        ));
                    }
                    None => {
                        let mut keys = map.all_tensor_keys();
                        keys.extend(opt);
                        union.insert(model, (ts, keys));
                    }
                }
            }
        }
        for (_, keys) in union.values() {
            for key in keys {
                for host in rep.replicas(key.owner, n) {
                    states[host].replay_ref(*key)?;
                }
            }
        }
        for s in &states {
            s.purge_orphan_tensors()
                .map_err(|e| format!("purge orphans: {e}"))?;
        }
        dep.gc_audit()?;
        Ok(dep)
    }

    /// In-memory deployment with `n` providers (test/example shorthand).
    pub fn in_memory(n: usize) -> Deployment {
        Deployment::new(DeploymentConfig {
            providers: n,
            ..Default::default()
        })
    }

    /// In-memory deployment with `n` providers keeping `factor` replicas
    /// of every model (test/example shorthand).
    pub fn in_memory_replicated(n: usize, factor: usize) -> Deployment {
        Deployment::new(DeploymentConfig {
            providers: n,
            replication: ReplicationPolicy::new(factor),
            ..Default::default()
        })
    }

    /// The replica placement policy in effect.
    pub fn replication(&self) -> ReplicationPolicy {
        self.replication
    }

    /// A new client handle (cheap; one per worker thread), with the
    /// default resilience policy.
    pub fn client(&self) -> EvoStoreClient {
        self.client_builder().build()
    }

    /// A client builder pre-wired to this deployment's fabric and
    /// providers — for callers that want a custom retry policy, call
    /// timeout, or quorum.
    pub fn client_builder(&self) -> crate::client::EvoStoreClientBuilder {
        EvoStoreClient::builder(Arc::clone(&self.fabric))
            .providers(self.provider_ids.clone())
            .replication(self.replication)
            .obs_hub(Arc::clone(&self.obs))
            .data_plane(DataPlanePolicy::from_force_copy(self.force_copy))
    }

    /// The deployment's observability hub (clock, unified registry,
    /// flight recorders).
    pub fn obs(&self) -> &Arc<ObsHub> {
        &self.obs
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Provider endpoint ids, in provider-index order.
    pub fn provider_ids(&self) -> &[EndpointId] {
        &self.provider_ids
    }

    /// Direct access to provider state (tests, audits, benches).
    pub fn provider_states(&self) -> Vec<Arc<ProviderState>> {
        self.providers
            .iter()
            .map(|p| Arc::clone(&p.state))
            .collect()
    }

    /// Switch every provider between indexed ancestor/pattern queries
    /// (the default) and the unindexed full-catalog scan — the A/B lever
    /// behind the fig5 bench's `--no-index` mode.
    pub fn set_index_enabled(&self, enabled: bool) {
        for p in &self.providers {
            p.state.set_index_enabled(enabled);
        }
    }

    /// Switch every provider's indexed query path between prefiltered
    /// bucket walks (bitset/bloom rejection, the default) and plain
    /// walks — the A/B lever behind the catalog bench's
    /// `--no-prefilter` mode. Results are identical either way.
    pub fn set_prefilter_enabled(&self, enabled: bool) {
        for p in &self.providers {
            p.state.set_prefilter_enabled(enabled);
        }
    }

    /// Switch every provider between the zero-copy scatter-gather data
    /// plane (the default) and forced contiguous consolidation — the
    /// A/B lever behind the datapath bench's `--force-copy` mode.
    /// Clients built *after* the switch pick up the matching store-side
    /// behavior via [`Deployment::client_builder`].
    pub fn set_force_copy(&mut self, force: bool) {
        self.force_copy = force;
        for p in &self.providers {
            p.state.set_force_copy(force);
        }
    }

    /// Switch between chunk-negotiated, delta-preserving re-replication
    /// (the default) and materialized payload shipping — the A/B lever
    /// behind the transfer bench's `--materialized` mode. Results are
    /// identical either way; only bytes moved differ.
    pub fn set_negotiated_transfer(&self, on: bool) {
        self.negotiated_transfer.store(on, Ordering::Relaxed);
    }

    /// Whether repair currently negotiates chunk possession before
    /// shipping payloads.
    pub fn negotiated_transfer(&self) -> bool {
        self.negotiated_transfer.load(Ordering::Relaxed)
    }

    /// Per-op-class resource attribution for deployment-driven work:
    /// every [`Deployment::repair`] pass folds into the `repair` class
    /// and every per-model re-replication leg into `transfer`, so the
    /// bytes a negotiated sync avoided moving are visible right in the
    /// ledger (`evostore_ledger_bytes_*{node="deployment"}`).
    pub fn ledger(&self) -> &Arc<OpLedger> {
        &self.ledger
    }

    /// Per-provider statistics, in provider-index order — including the
    /// KV byte counters ([`ProviderStats::tensor_kv`] /
    /// [`ProviderStats::meta_kv`]) carried in STATS replies.
    pub fn stats(&self) -> Vec<ProviderStats> {
        self.providers.iter().map(|p| p.state.stats()).collect()
    }

    /// Per-provider chunk-occupancy counters, in provider-index order
    /// (`None` on providers whose tensor store is not content-addressed).
    pub fn chunk_stats(&self) -> Vec<Option<ChunkStats>> {
        self.providers
            .iter()
            .map(|p| p.state.chunk_stats())
            .collect()
    }

    /// Maintenance re-base pass: on every provider, rewrite delta
    /// records whose chain depth exceeds `max_depth` back to raw bytes,
    /// bounding reconstruction cost after deep derivation chains
    /// accumulate. Returns how many records were rewritten. Like
    /// [`Deployment::repair`], run it against a quiescent deployment.
    pub fn compact_deltas(&self, max_depth: u8) -> Result<usize, String> {
        let mut rewritten = 0;
        for p in &self.providers {
            rewritten += p.state.rebase_deltas(max_depth)?;
        }
        Ok(rewritten)
    }

    /// One unified metrics snapshot for the whole deployment: the hub
    /// registry (clients built via [`Deployment::client_builder`]
    /// register their telemetry there) merged with every provider's
    /// registry, fanned in over the `OBS_SNAPSHOT` RPC.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        merged_snapshot(&self.fabric, &self.provider_ids, &self.obs)
    }

    /// Prometheus text exposition of [`Deployment::metrics_snapshot`] —
    /// the one export surface for every counter in the system.
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().to_prometheus_text()
    }

    /// Merge every flight recorder (fabric, providers, clients) into one
    /// time-ordered postmortem dump. Degraded answers and failovers are
    /// annotated with the fault window of the endpoints involved (down
    /// since when, per the fabric's down/up transitions), so each
    /// degraded line alone names the provider and fault responsible.
    pub fn flight_dump(&self) -> String {
        render_flight_dump(&self.obs, &self.provider_ids)
    }

    /// Cross-provider garbage-collection audit. Replication-aware: the
    /// catalogs are deduplicated into a union (replicas of a record must
    /// agree on its timestamp and optimizer state), every referenced
    /// tensor must be hosted — with a reference count equal to the
    /// number of union models referencing it — on *every* member of its
    /// owner's replica chain, and nothing may be hosted off-chain or
    /// unreferenced.
    pub fn gc_audit(&self) -> Result<(), String> {
        let n = self.providers.len();
        let rep = self.replication;
        // Union catalog; replicas must agree.
        let mut union: HashMap<ModelId, (u64, Vec<TensorKey>, Vec<TensorKey>)> = HashMap::new();
        let mut held: Vec<HashSet<ModelId>> = vec![HashSet::new(); n];
        for (i, p) in self.providers.iter().enumerate() {
            for (model, ts, map, opt) in p.state.catalog_entries() {
                held[i].insert(model);
                match union.get(&model) {
                    Some((uts, _, uopt)) => {
                        if *uts != ts {
                            return Err(format!(
                                "model {model}: replica timestamps diverge ({uts} vs {ts} on \
                                 provider {i}) — run repair()"
                            ));
                        }
                        if *uopt != opt {
                            return Err(format!(
                                "model {model}: replica optimizer states diverge on provider {i} \
                                 — run repair()"
                            ));
                        }
                    }
                    None => {
                        union.insert(model, (ts, map.all_tensor_keys(), opt));
                    }
                }
            }
        }
        // Every record must be present on its full chain.
        for &model in union.keys() {
            for idx in rep.replicas(model, n) {
                if !held[idx].contains(&model) {
                    return Err(format!(
                        "model {model} missing on replica provider {idx} — run repair()"
                    ));
                }
            }
        }
        // Expected global count per key (same on every hosting replica).
        let mut expected: HashMap<TensorKey, u64> = HashMap::new();
        for (_, ref_keys, opt_keys) in union.values() {
            for key in ref_keys.iter().chain(opt_keys) {
                *expected.entry(*key).or_default() += 1;
            }
        }
        for (i, p) in self.providers.iter().enumerate() {
            p.state.audit_tensors()?;
            let hosted: HashSet<TensorKey> = p.state.hosted_tensor_keys().into_iter().collect();
            for (&key, &want) in &expected {
                if !rep.is_replica(key.owner, n, i) {
                    continue;
                }
                if !hosted.contains(&key) {
                    return Err(format!(
                        "tensor {key} missing on replica provider {i} — run repair()"
                    ));
                }
                let refs = p.state.tensor_refs(key);
                if refs != want {
                    return Err(format!(
                        "tensor {key} on provider {i}: refcount {refs}, but {want} models \
                         reference it"
                    ));
                }
            }
            for key in hosted {
                if !expected.contains_key(&key) {
                    return Err(format!(
                        "tensor {key} hosted on provider {i} but referenced by no model"
                    ));
                }
                if !rep.is_replica(key.owner, n, i) {
                    return Err(format!(
                        "tensor {key} hosted off its replica chain on provider {i}"
                    ));
                }
            }
        }
        Ok(())
    }

    // ---- anti-entropy repair ---------------------------------------------

    /// One anti-entropy pass over every reachable provider: exchange
    /// digests, converge each replica chain on the newest incarnation of
    /// every record, propagate witnessed retirements (fencing their
    /// parked decrements), install authoritative reference counts, and —
    /// when every provider contributed a digest — reclaim orphaned
    /// payloads.
    ///
    /// An administrative pass: run it against a quiescent deployment
    /// (no concurrent stores/retires), typically after a failed provider
    /// comes back. Idempotent — a second pass on a healthy deployment
    /// reports zero work.
    pub fn repair(&self) -> Result<RepairReport, String> {
        let start_us = self.obs.clock().now_us();
        let costs = OpCosts::new();
        let out = {
            let _costs = install_costs(Some(Arc::clone(&costs)));
            self.repair_inner()
        };
        let latency_us = self.obs.clock().now_us().saturating_sub(start_us);
        self.obs.slo().record("repair", latency_us, out.is_ok());
        self.ledger.finish_op("repair", out.is_ok(), &costs);
        // Post-repair maintenance: verbatim delta transfer re-installs
        // chains at their stored depth, so re-base anything a prior
        // policy (or a lowered bound) left beyond the cap. Idempotent —
        // a healthy deployment re-bases nothing.
        if out.is_ok() && self.delta.enabled {
            self.compact_deltas(self.delta.max_chain_depth)
                .map_err(|e| format!("post-repair delta compaction: {e}"))?;
        }
        out
    }

    fn repair_inner(&self) -> Result<RepairReport, String> {
        let retry = RetryPolicy::default().with_timeout(Duration::from_secs(30));
        let n = self.provider_ids.len();
        let rep = self.replication;
        let mut report = RepairReport::default();

        // 1. Digest every provider; remember who is unreachable.
        let legs = evostore_rpc::broadcast::<_, DigestReply>(
            &self.fabric,
            &self.provider_ids,
            methods::DIGEST,
            &DigestRequest {},
            &retry,
            None,
        )
        .map_err(|e| format!("digest broadcast: {e}"))?;
        let mut digests: HashMap<usize, DigestReply> = HashMap::new();
        for (ep, leg) in legs {
            match leg {
                Ok(d) => {
                    digests.insert(d.provider_index, d);
                }
                Err(e) if e.is_transient() => report.unreachable.push(ep),
                Err(e) => return Err(format!("digest from {ep}: {e}")),
            }
        }
        if digests.is_empty() {
            return Err("no provider answered the digest broadcast".into());
        }

        // 2. Merge retirements: newest tombstone per model wins.
        let mut tombstones: HashMap<ModelId, Tombstone> = HashMap::new();
        for d in digests.values() {
            for t in &d.tombstones {
                let e = tombstones.entry(t.model).or_insert(*t);
                if (t.record_timestamp, t.retired_at) > (e.record_timestamp, e.retired_at) {
                    *e = *t;
                }
            }
        }

        // 3. Union catalog: newest incarnation of every record wins
        // (optimizer attachment breaks equal-timestamp ties), remembering
        // a live replica to copy payloads from; drop retired incarnations.
        struct UnionEntry {
            timestamp: u64,
            ref_keys: Vec<TensorKey>,
            optimizer_keys: Vec<TensorKey>,
            source: usize,
        }
        let mut union: HashMap<ModelId, UnionEntry> = HashMap::new();
        for (&idx, d) in &digests {
            for m in &d.models {
                let better = match union.get(&m.model) {
                    None => true,
                    Some(u) => {
                        m.timestamp > u.timestamp
                            || (m.timestamp == u.timestamp
                                && m.optimizer_keys.len() > u.optimizer_keys.len())
                    }
                };
                if better {
                    union.insert(
                        m.model,
                        UnionEntry {
                            timestamp: m.timestamp,
                            ref_keys: m.ref_keys.clone(),
                            optimizer_keys: m.optimizer_keys.clone(),
                            source: idx,
                        },
                    );
                }
            }
        }
        union.retain(|model, u| {
            tombstones
                .get(model)
                .map(|t| u.timestamp > t.record_timestamp)
                .unwrap_or(true)
        });

        // 4. Authoritative global reference counts over live records.
        let mut expected: HashMap<TensorKey, u64> = HashMap::new();
        for u in union.values() {
            for key in u.ref_keys.iter().chain(&u.optimizer_keys) {
                *expected.entry(*key).or_default() += 1;
            }
        }

        let tomb_list: Vec<Tombstone> = tombstones.values().copied().collect();
        // Orphan pruning is only safe with a complete digest: with a
        // provider missing, a key could look orphaned merely because
        // every record referencing it lives on the unreachable provider.
        let full_coverage = report.unreachable.is_empty();

        // 5. Converge each live provider.
        let mut indices: Vec<usize> = digests.keys().copied().collect();
        indices.sort_unstable();
        for idx in indices {
            let ep = self.provider_ids[idx];
            let digest = &digests[&idx];

            // 5a. Propagate retirements first (removes stale records and
            // fences their parked decrement legs).
            if !tomb_list.is_empty() {
                let reply: SyncRetireReply = evostore_rpc::unary(
                    &self.fabric,
                    ep,
                    methods::SYNC_RETIRE,
                    &SyncRetireRequest {
                        tombstones: tomb_list.clone(),
                    },
                    &retry,
                    None,
                )
                .map_err(|e| format!("sync_retire on provider {idx}: {e}"))?;
                report.retirements_applied += reply.removed;
            }

            // 5b. Re-replicate records this provider should hold but
            // missed (or holds stale).
            let local: HashMap<ModelId, (u64, usize)> = digest
                .models
                .iter()
                .map(|m| (m.model, (m.timestamp, m.optimizer_keys.len())))
                .collect();
            let mut to_sync: Vec<&ModelId> = union.keys().collect();
            to_sync.sort_unstable();
            for &model in to_sync {
                let u = &union[&model];
                if u.source == idx || !rep.replicas(model, n).contains(&idx) {
                    continue;
                }
                let stale = match local.get(&model) {
                    None => true,
                    Some(&(ts, opt)) => {
                        ts < u.timestamp || (ts == u.timestamp && opt < u.optimizer_keys.len())
                    }
                };
                if !stale {
                    continue;
                }
                match self.sync_model_to(model, &u.optimizer_keys, u.source, idx, &retry)? {
                    true => report.models_synced += 1,
                    false => report.missing_payloads += 1,
                }
            }

            // 5c. Install authoritative counts for every key placed here;
            // reclaim orphans when the digest was complete.
            let mut entries: Vec<(TensorKey, u64)> = expected
                .iter()
                .filter(|(key, _)| rep.is_replica(key.owner, n, idx))
                .map(|(&key, &count)| (key, count))
                .collect();
            entries.sort_unstable_by_key(|(key, _)| *key);
            let reply: SyncRefsReply = evostore_rpc::unary(
                &self.fabric,
                ep,
                methods::SYNC_REFS,
                &SyncRefsRequest {
                    entries,
                    prune_unlisted: full_coverage,
                },
                &retry,
                None,
            )
            .map_err(|e| format!("sync_refs on provider {idx}: {e}"))?;
            report.refs_adjusted += reply.adjusted;
            report.orphans_removed += reply.removed;
            report.missing_payloads += reply.missing;
        }
        Ok(report)
    }

    /// Copy one record (metadata + the payloads its chain hosts) from
    /// provider `source` to provider `target`. Returns `Ok(false)` when
    /// the source no longer serves the payloads (lost beyond the
    /// replication factor).
    ///
    /// With [`DeploymentConfig::negotiated_transfer`] on (the default)
    /// this is a chunk-negotiated, delta-preserving driver: it asks the
    /// source how the stored bytes decompose (`TRANSFER_MANIFEST`),
    /// probes the target's possession set (`HAVE_CHUNKS`), and ships
    /// only the missing chunks (`READ_CHUNKS` → `SYNC_CHUNKS`) — or, on
    /// layout mismatch, the stored delta records verbatim. Any decline
    /// or failure along the way falls back to the materialized
    /// `SYNC_MODEL` path, which is the correctness backstop.
    ///
    /// The whole leg is accounted as one `transfer` op in the
    /// deployment ledger and as a `transfer.sync_model` span tree whose
    /// children are the negotiation round-trips.
    fn sync_model_to(
        &self,
        model: ModelId,
        optimizer_keys: &[TensorKey],
        source: usize,
        target: usize,
        retry: &RetryPolicy,
    ) -> Result<bool, String> {
        let costs = OpCosts::new();
        let mut root = self.tracer.start_root("transfer.sync_model");
        let out = {
            let _costs = install_costs(Some(Arc::clone(&costs)));
            let trace = TraceHandle::new(&self.tracer, root.ctx());
            self.sync_model_inner(model, optimizer_keys, source, target, retry, &trace)
        };
        self.ledger.finish_op("transfer", out.is_ok(), &costs);
        // Credit the same movement to the enclosing repair op (the
        // transfer cell replaced the repair cell while installed).
        let s = costs.snapshot();
        evostore_obs::ledger::add_bytes_in(s.bytes_in);
        evostore_obs::ledger::add_bytes_out(s.bytes_out);
        evostore_obs::ledger::add_chunks_touched(s.chunks_touched);
        if let Err(e) = &out {
            root.fail(e.to_string());
        }
        root.finish();
        out
    }

    fn sync_model_inner(
        &self,
        model: ModelId,
        optimizer_keys: &[TensorKey],
        source: usize,
        target: usize,
        retry: &RetryPolicy,
        trace: &TraceHandle<'_>,
    ) -> Result<bool, String> {
        let src = self.provider_ids[source];
        let meta: ModelMetaReply = evostore_rpc::unary_traced(
            &self.fabric,
            src,
            methods::GET_META,
            &GetMetaRequest { model },
            retry,
            None,
            Some(trace),
        )
        .map_err(|e| format!("get_meta({model}) from provider {source}: {e}"))?;
        // Ship only what the target's replica role needs: the model's
        // self-owned tensors plus its optimizer copy. Inherited keys
        // belong to their owners' chains and are synced with those
        // records.
        let mut keys: Vec<TensorKey> = meta
            .owner_map
            .all_tensor_keys()
            .into_iter()
            .filter(|k| k.owner == model)
            .collect();
        keys.extend_from_slice(optimizer_keys);
        if self.negotiated_transfer() {
            // Anything short of a completed negotiation — declined
            // (layout mismatch, missing delta base, whole-record source
            // without deltas) or failed mid-flight — falls through to
            // the materialized backstop.
            if let Ok(Some(done)) =
                self.sync_model_negotiated(model, &meta, &keys, source, target, retry, trace)
            {
                return Ok(done);
            }
        }
        self.sync_model_materialized(model, meta, keys, source, target, retry, trace)
    }

    /// Try the derivative-aware path. `Ok(None)` means negotiation
    /// declined and the caller should ship materialized payloads.
    #[allow(clippy::too_many_arguments)]
    fn sync_model_negotiated(
        &self,
        model: ModelId,
        meta: &ModelMetaReply,
        keys: &[TensorKey],
        source: usize,
        target: usize,
        retry: &RetryPolicy,
        trace: &TraceHandle<'_>,
    ) -> Result<Option<bool>, String> {
        let src = self.provider_ids[source];
        let dst = self.provider_ids[target];
        // 1. How do the source's stored records decompose?
        let manifest: TransferManifestReply = match evostore_rpc::unary_traced(
            &self.fabric,
            src,
            methods::TRANSFER_MANIFEST,
            &TransferManifestRequest {
                keys: keys.to_vec(),
            },
            retry,
            None,
            Some(trace),
        ) {
            Ok(m) => m,
            Err(e) if e.is_transient() => {
                return Err(format!("transfer_manifest({model}) from {source}: {e}"))
            }
            // The source can't describe its stored layout: decline.
            Err(_) => return Ok(None),
        };
        let has_deltas = manifest.records.iter().any(|r| r.delta_base.is_some());
        if !manifest.chunked && !has_deltas {
            // Whole records, no delta linkage: negotiation saves nothing.
            return Ok(None);
        }
        // Union of the chunk hashes to probe (dedup, source order) and
        // the delta bases that must already sit on the target (bases
        // riding along in this shipment fence themselves).
        let shipped: HashSet<TensorKey> = keys.iter().copied().collect();
        let mut hashes: Vec<[u8; 16]> = Vec::new();
        let mut seen: HashSet<[u8; 16]> = HashSet::new();
        for r in &manifest.records {
            for h in &r.hashes {
                if seen.insert(*h) {
                    hashes.push(*h);
                }
            }
        }
        let mut base_keys: Vec<TensorKey> = manifest
            .records
            .iter()
            .filter_map(|r| r.delta_base)
            .filter(|b| !shipped.contains(b))
            .collect();
        base_keys.sort_unstable();
        base_keys.dedup();
        // 2. Probe the receiver's possession set.
        let have: HaveChunksReply = match evostore_rpc::unary_traced(
            &self.fabric,
            dst,
            methods::HAVE_CHUNKS,
            &HaveChunksRequest {
                hashes: hashes.clone(),
                keys: base_keys,
            },
            retry,
            None,
            Some(trace),
        ) {
            Ok(h) => h,
            Err(e) if e.is_transient() => {
                return Err(format!("have_chunks({model}) on {target}: {e}"))
            }
            Err(_) => return Ok(None),
        };
        // Every delta base must be on the target (or in this shipment),
        // or verbatim delta transfer would strand the chain.
        if have.have_records.iter().any(|ok| !ok) {
            return Ok(None);
        }
        if manifest.chunked && have.chunked && have.chunk_size == manifest.chunk_size {
            return self.sync_chunks_to(
                model, meta, &manifest, &hashes, &have, source, target, retry, trace,
            );
        }
        if has_deltas {
            // Chunk negotiation is off the table (layout or granularity
            // mismatch) but the delta linkage still transfers: ship the
            // stored records verbatim over SYNC_MODEL.
            return self.sync_raw_records_to(model, meta, keys, source, target, retry, trace);
        }
        Ok(None)
    }

    /// Chunk-negotiated leg: pull only the chunks the target reported
    /// missing from the source and install the records manifest-level —
    /// no tensor is materialized on either side.
    #[allow(clippy::too_many_arguments)]
    fn sync_chunks_to(
        &self,
        model: ModelId,
        meta: &ModelMetaReply,
        manifest: &TransferManifestReply,
        hashes: &[[u8; 16]],
        have: &HaveChunksReply,
        source: usize,
        target: usize,
        retry: &RetryPolicy,
        trace: &TraceHandle<'_>,
    ) -> Result<Option<bool>, String> {
        let src = self.provider_ids[source];
        let dst = self.provider_ids[target];
        let missing: Vec<[u8; 16]> = hashes
            .iter()
            .zip(&have.have_chunks)
            .filter(|(_, held)| !**held)
            .map(|(h, _)| *h)
            .collect();
        let mut lens: Vec<u64> = Vec::with_capacity(missing.len());
        let mut segments: Vec<Bytes> = Vec::with_capacity(missing.len());
        if !missing.is_empty() {
            let read: ReadChunksReply = match evostore_rpc::unary_traced(
                &self.fabric,
                src,
                methods::READ_CHUNKS,
                &ReadChunksRequest {
                    hashes: missing.clone(),
                },
                retry,
                None,
                Some(trace),
            ) {
                Ok(r) => r,
                Err(e) if e.is_transient() => {
                    return Err(format!("read_chunks({model}) from {source}: {e}"))
                }
                Err(_) => return Ok(None),
            };
            let handle = BulkHandle(read.bulk);
            let region = self
                .fabric
                .bulk_get_vec(handle)
                .map_err(|e| format!("chunk bulk pull for {model}: {e}"))?;
            let mut off = 0usize;
            for &len in &read.lens {
                let len = len as usize;
                let chunk = region
                    .slice(off, len)
                    .ok_or_else(|| format!("chunk region truncated for {model}"))?;
                off += len;
                lens.push(len as u64);
                segments.push(chunk);
            }
            self.fabric.bulk_release(handle);
            evostore_obs::ledger::add_bytes_in(off as u64);
            evostore_obs::ledger::add_chunks_touched(segments.len() as u64);
        }
        let moved: u64 = lens.iter().sum();
        let out = self.fabric.bulk_expose_vec(segments);
        let result: Result<SyncChunksReply, _> = evostore_rpc::unary_traced(
            &self.fabric,
            dst,
            methods::SYNC_CHUNKS,
            &SyncChunksRequest {
                model,
                graph: meta.graph.clone(),
                owner_map: meta.owner_map.clone(),
                parent: meta.parent,
                quality: meta.quality,
                timestamp: meta.timestamp,
                records: manifest.records.clone(),
                pushed: missing,
                lens,
                bulk: out.0,
            },
            retry,
            None,
            Some(trace),
        );
        self.fabric.bulk_release(out);
        match result {
            Ok(_) => {
                evostore_obs::ledger::add_bytes_out(moved);
                Ok(Some(true))
            }
            Err(e) if e.is_transient() => Err(format!("sync_chunks({model}) to {target}: {e}")),
            // The target rejected the manifest (e.g. a chunk it claimed
            // got reclaimed concurrently): materialized backstop.
            Err(_) => Ok(None),
        }
    }

    /// Delta-preserving leg over the whole-record plane: read the stored
    /// bytes verbatim (EVDL delta records included) and sync them as
    /// raw records, so a repaired derived model keeps its O(changed
    /// bytes) encoding and its reclaim fencing.
    #[allow(clippy::too_many_arguments)]
    fn sync_raw_records_to(
        &self,
        model: ModelId,
        meta: &ModelMetaReply,
        keys: &[TensorKey],
        source: usize,
        target: usize,
        retry: &RetryPolicy,
        trace: &TraceHandle<'_>,
    ) -> Result<Option<bool>, String> {
        let src = self.provider_ids[source];
        let read: ReadTensorsReply = match evostore_rpc::unary_traced(
            &self.fabric,
            src,
            methods::READ,
            &ReadTensorsRequest {
                keys: keys.to_vec(),
                raw_records: true,
            },
            retry,
            None,
            Some(trace),
        ) {
            Ok(r) => r,
            Err(e) if e.is_transient() => {
                return Err(format!("read raw records of {model} from {source}: {e}"))
            }
            Err(_) => return Ok(None),
        };
        let handle = BulkHandle(read.bulk);
        let region = self
            .fabric
            .bulk_get(handle)
            .map_err(|e| format!("bulk pull for {model}: {e}"))?;
        evostore_obs::ledger::add_bytes_in(region.len() as u64);
        evostore_obs::ledger::add_chunks_touched(read.manifest.len() as u64);
        let moved = region.len() as u64;
        let out = self.fabric.bulk_expose(region);
        let result: Result<SyncModelReply, _> = evostore_rpc::unary_traced(
            &self.fabric,
            self.provider_ids[target],
            methods::SYNC_MODEL,
            &SyncModelRequest {
                model,
                graph: meta.graph.clone(),
                owner_map: meta.owner_map.clone(),
                parent: meta.parent,
                quality: meta.quality,
                timestamp: meta.timestamp,
                manifest: read.manifest,
                bulk: out.0,
                raw_records: true,
            },
            retry,
            None,
            Some(trace),
        );
        self.fabric.bulk_release(out);
        self.fabric.bulk_release(handle);
        match result {
            Ok(_) => {
                evostore_obs::ledger::add_bytes_out(moved);
                Ok(Some(true))
            }
            Err(e) if e.is_transient() => Err(format!("sync_model({model}) to {target}: {e}")),
            // The target rejected the verbatim records (e.g. delta
            // disabled there): materialized backstop.
            Err(_) => Ok(None),
        }
    }

    /// Materialized fallback: read fully reconstructed tensor records
    /// from the source and push them whole — correct against any layout
    /// or policy mismatch, at O(model bytes) cost.
    #[allow(clippy::too_many_arguments)]
    fn sync_model_materialized(
        &self,
        model: ModelId,
        meta: ModelMetaReply,
        keys: Vec<TensorKey>,
        source: usize,
        target: usize,
        retry: &RetryPolicy,
        trace: &TraceHandle<'_>,
    ) -> Result<bool, String> {
        let src = self.provider_ids[source];
        let read: ReadTensorsReply = match evostore_rpc::unary_traced(
            &self.fabric,
            src,
            methods::READ,
            &ReadTensorsRequest {
                keys,
                raw_records: false,
            },
            retry,
            None,
            Some(trace),
        ) {
            Ok(r) => r,
            // The source catalogs the record but lost payloads (e.g. a
            // crash between legs): report, don't fail the whole pass.
            Err(e) if !e.is_transient() => {
                let _ = e;
                return Ok(false);
            }
            Err(e) => return Err(format!("read payloads of {model} from {source}: {e}")),
        };
        let handle = BulkHandle(read.bulk);
        let region = self
            .fabric
            .bulk_get(handle)
            .map_err(|e| format!("bulk pull for {model}: {e}"))?;
        evostore_obs::ledger::add_bytes_in(region.len() as u64);
        evostore_obs::ledger::add_chunks_touched(read.manifest.len() as u64);
        let moved = region.len() as u64;
        // Re-expose the same bytes for the target; the manifest offsets
        // carry over unchanged.
        let out = self.fabric.bulk_expose(region);
        let result: Result<SyncModelReply, String> = evostore_rpc::unary_traced(
            &self.fabric,
            self.provider_ids[target],
            methods::SYNC_MODEL,
            &SyncModelRequest {
                model,
                graph: meta.graph,
                owner_map: meta.owner_map,
                parent: meta.parent,
                quality: meta.quality,
                timestamp: meta.timestamp,
                manifest: read.manifest,
                bulk: out.0,
                raw_records: false,
            },
            retry,
            None,
            Some(trace),
        )
        .map_err(|e| format!("sync_model({model}) to provider {target}: {e}"));
        self.fabric.bulk_release(out);
        self.fabric.bulk_release(handle);
        evostore_obs::ledger::add_bytes_out(moved);
        result.map(|_| true)
    }
}

/// One unified metrics snapshot: the hub registry merged with every
/// reachable provider's registry, fanned in over the `OBS_SNAPSHOT`
/// RPC. Free-standing so the exposition server's route closures can
/// re-render it per request without holding a `Deployment` borrow.
fn merged_snapshot(fabric: &Fabric, provider_ids: &[EndpointId], obs: &ObsHub) -> RegistrySnapshot {
    let mut snap = obs.registry().snapshot();
    let retry = RetryPolicy::default().with_timeout(Duration::from_secs(30));
    if let Ok(legs) = evostore_rpc::broadcast::<_, RegistrySnapshot>(
        fabric,
        provider_ids,
        methods::OBS_SNAPSHOT,
        &ObsSnapshotRequest {},
        &retry,
        None,
    ) {
        for (_, leg) in legs {
            // An unreachable provider degrades the snapshot rather
            // than failing it; its series are simply absent.
            if let Ok(provider_snap) = leg {
                snap.merge(&provider_snap);
            }
        }
    }
    snap
}

/// Merge every flight recorder (fabric, providers, clients) into one
/// time-ordered postmortem dump. Degraded answers and failovers are
/// annotated with the fault window of the endpoints involved (down
/// since when, per the fabric's down/up transitions), so each degraded
/// line alone names the provider and fault responsible.
fn render_flight_dump(obs: &ObsHub, provider_ids: &[EndpointId]) -> String {
    // `providerN(epM)` when the endpoint is a provider of this
    // deployment, `epM` otherwise (clients, external endpoints).
    let endpoint_name = |ep: u32| match provider_ids.iter().position(|e| e.0 == ep) {
        Some(i) => format!("provider{i}(ep{ep})"),
        None => format!("ep{ep}"),
    };
    let mut events: Vec<(String, FlightEvent)> = Vec::new();
    let mut out = String::new();
    for rec in obs.recorders() {
        out.push_str(&format!(
            "# node {}: {} recorded, {} dropped\n",
            rec.node(),
            rec.recorded(),
            rec.dropped()
        ));
        for e in rec.events() {
            events.push((rec.node().to_string(), e));
        }
    }
    events.sort_by_key(|(_, e)| e.at_us());
    // Walk in time order tracking which endpoints are down so the
    // degraded/failover lines can name their fault window.
    let mut down_since: HashMap<u32, u64> = HashMap::new();
    let since = |down: &HashMap<u32, u64>, ep: u32| match down.get(&ep) {
        Some(at) => format!("{} (down since {at}us)", endpoint_name(ep)),
        None => endpoint_name(ep),
    };
    for (node, e) in &events {
        let at = e.at_us();
        let line = match e {
            FlightEvent::Span(s) => {
                let ep = match s.endpoint {
                    Some(ep) => format!(" @{}", endpoint_name(ep)),
                    None => String::new(),
                };
                format!(
                    "span {}{} trace={:016x} span={:x} parent={:x} {}..{}us {}",
                    s.name,
                    ep,
                    s.trace_id,
                    s.span_id,
                    s.parent_span_id,
                    s.start_us,
                    s.end_us,
                    s.status
                )
            }
            FlightEvent::Fault {
                endpoint,
                method,
                action,
                ..
            } => format!(
                "FAULT {} method={method} action={action}",
                endpoint_name(*endpoint)
            ),
            FlightEvent::EndpointDown { endpoint, .. } => {
                down_since.insert(*endpoint, at);
                format!("DOWN {}", endpoint_name(*endpoint))
            }
            FlightEvent::EndpointUp { endpoint, .. } => {
                let was = down_since.remove(endpoint);
                match was {
                    Some(from) => {
                        format!(
                            "UP {} (was down {from}us..{at}us)",
                            endpoint_name(*endpoint)
                        )
                    }
                    None => format!("UP {}", endpoint_name(*endpoint)),
                }
            }
            FlightEvent::Failover {
                trace_id,
                from,
                to,
                what,
                ..
            } => format!(
                "FAILOVER {what} trace={trace_id:016x} {} -> {}",
                since(&down_since, *from),
                endpoint_name(*to)
            ),
            FlightEvent::Degraded {
                trace_id,
                op,
                unreachable,
                ..
            } => {
                let who: Vec<String> = unreachable
                    .iter()
                    .map(|ep| since(&down_since, *ep))
                    .collect();
                format!(
                    "DEGRADED {op} trace={trace_id:016x} unreachable=[{}]",
                    who.join(", ")
                )
            }
            FlightEvent::Note { text, .. } => text.clone(),
        };
        out.push_str(&format!("[{at:>10}us] {node:<10} {line}\n"));
    }
    out
}
