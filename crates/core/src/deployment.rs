//! Deployment helper: spin up a fabric of providers plus clients.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use evostore_kv::{KvBackend, LogStore, MemPoolStore};
use evostore_rpc::{EndpointId, Fabric};

use crate::client::EvoStoreClient;
use crate::provider::{Provider, ProviderState};

/// Which KV backend providers persist tensors into.
#[derive(Debug, Clone)]
pub enum BackendKind {
    /// Synchronized in-memory pools (the paper's experimental config).
    Memory,
    /// Append-only log store under `dir/provider-<i>/` (the RocksDB-style
    /// persistent config).
    Log { dir: std::path::PathBuf },
    /// Persistent log store fronted by a byte-bounded in-memory cache
    /// (the combined "in-memory and persistently" provider of §4.3).
    Tiered {
        /// Storage directory.
        dir: std::path::PathBuf,
        /// Memory-tier budget per provider, in bytes.
        memory_budget: usize,
    },
}

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Number of providers.
    pub providers: usize,
    /// RPC service threads per provider.
    pub service_threads: usize,
    /// Tensor storage backend.
    pub backend: BackendKind,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            providers: 4,
            service_threads: 2,
            backend: BackendKind::Memory,
        }
    }
}

/// A running EvoStore deployment.
pub struct Deployment {
    fabric: Arc<Fabric>,
    providers: Vec<Provider>,
    provider_ids: Vec<EndpointId>,
}

impl Deployment {
    /// Start a deployment.
    pub fn new(cfg: DeploymentConfig) -> Deployment {
        assert!(cfg.providers > 0);
        let fabric = Fabric::new();
        let clock = Arc::new(AtomicU64::new(1));
        let mut providers = Vec::with_capacity(cfg.providers);
        for i in 0..cfg.providers {
            let (backend, meta): (Box<dyn KvBackend>, Box<dyn KvBackend>) = match &cfg.backend {
                BackendKind::Memory => {
                    (Box::new(MemPoolStore::new()), Box::new(MemPoolStore::new()))
                }
                BackendKind::Log { dir } => (
                    Box::new(
                        LogStore::open(dir.join(format!("provider-{i}/tensors")))
                            .expect("open provider tensor store"),
                    ),
                    Box::new(
                        LogStore::open(dir.join(format!("provider-{i}/meta")))
                            .expect("open provider meta store"),
                    ),
                ),
                BackendKind::Tiered { dir, memory_budget } => (
                    Box::new(evostore_kv::TieredStore::new(
                        LogStore::open(dir.join(format!("provider-{i}/tensors")))
                            .expect("open provider tensor store"),
                        *memory_budget,
                    )),
                    Box::new(
                        LogStore::open(dir.join(format!("provider-{i}/meta")))
                            .expect("open provider meta store"),
                    ),
                ),
            };
            providers.push(Provider::spawn(
                Arc::clone(&fabric),
                i,
                cfg.providers,
                Arc::clone(&clock),
                backend,
                meta,
                cfg.service_threads,
            ));
        }
        let provider_ids = providers.iter().map(|p| p.endpoint_id()).collect();
        Deployment {
            fabric,
            providers,
            provider_ids,
        }
    }

    /// Reopen a log-backed deployment after a restart: restore every
    /// provider's catalog from its durable meta store, then rebuild the
    /// tensor reference counts by replaying all owner maps (and attached
    /// optimizer states) across providers, and finally purge tensors
    /// orphaned by a crash.
    pub fn reopen(cfg: DeploymentConfig) -> Result<Deployment, String> {
        if matches!(cfg.backend, BackendKind::Memory) {
            return Err("reopen requires a persistent (Log) backend".into());
        }
        let dep = Deployment::new(cfg);
        let states = dep.provider_states();
        for s in &states {
            s.recover_catalog();
        }
        // Replay references: every owner-map key and optimizer key, from
        // every catalog, increments its hosting provider's count.
        let n = states.len();
        for s in &states {
            for map in s.owner_maps() {
                for key in map.all_tensor_keys() {
                    let host = key.owner.provider_for(n);
                    states[host].replay_ref(key)?;
                }
            }
            for key in s.optimizer_key_refs() {
                let host = key.owner.provider_for(n);
                states[host].replay_ref(key)?;
            }
        }
        for s in &states {
            s.purge_orphan_tensors()
                .map_err(|e| format!("purge orphans: {e}"))?;
        }
        dep.gc_audit()?;
        Ok(dep)
    }

    /// In-memory deployment with `n` providers (test/example shorthand).
    pub fn in_memory(n: usize) -> Deployment {
        Deployment::new(DeploymentConfig {
            providers: n,
            ..Default::default()
        })
    }

    /// A new client handle (cheap; one per worker thread), with the
    /// default resilience policy.
    pub fn client(&self) -> EvoStoreClient {
        self.client_builder().build()
    }

    /// A client builder pre-wired to this deployment's fabric and
    /// providers — for callers that want a custom retry policy, call
    /// timeout, or quorum.
    pub fn client_builder(&self) -> crate::client::EvoStoreClientBuilder {
        EvoStoreClient::builder(Arc::clone(&self.fabric)).providers(self.provider_ids.clone())
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Provider endpoint ids, in provider-index order.
    pub fn provider_ids(&self) -> &[EndpointId] {
        &self.provider_ids
    }

    /// Direct access to provider state (tests, audits, benches).
    pub fn provider_states(&self) -> Vec<Arc<ProviderState>> {
        self.providers
            .iter()
            .map(|p| Arc::clone(&p.state))
            .collect()
    }

    /// Switch every provider between indexed ancestor/pattern queries
    /// (the default) and the unindexed full-catalog scan — the A/B lever
    /// behind the fig5 bench's `--no-index` mode.
    pub fn set_index_enabled(&self, enabled: bool) {
        for p in &self.providers {
            p.state.set_index_enabled(enabled);
        }
    }

    /// Cross-provider garbage-collection audit: the reference count of
    /// every hosted tensor must equal the number of cataloged models
    /// whose owner maps reference it, and no unreferenced tensor may
    /// remain stored.
    pub fn gc_audit(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut expected: HashMap<evostore_tensor::TensorKey, u64> = HashMap::new();
        for p in &self.providers {
            for map in p.state.owner_maps() {
                for key in map.all_tensor_keys() {
                    *expected.entry(key).or_default() += 1;
                }
            }
        }
        for p in &self.providers {
            for key in p.state.optimizer_key_refs() {
                *expected.entry(key).or_default() += 1;
            }
        }
        let mut hosted = 0usize;
        for p in &self.providers {
            p.state.audit_tensors()?;
            for key in p.state.hosted_tensor_keys() {
                hosted += 1;
                let refs = p.state.tensor_refs(key);
                let want = expected.get(&key).copied().unwrap_or(0);
                if refs != want {
                    return Err(format!(
                        "tensor {key}: refcount {refs}, but {want} models reference it"
                    ));
                }
            }
        }
        if hosted != expected.len() {
            return Err(format!(
                "{hosted} tensors hosted but {} referenced by owner maps",
                expected.len()
            ));
        }
        Ok(())
    }
}
