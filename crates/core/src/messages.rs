//! Wire messages between EvoStore clients and providers.
//!
//! Control messages travel as JSON over the RPC fabric; the tensor data
//! plane never does — store and read requests carry a *bulk handle* plus a
//! manifest, and the payload moves through one consolidated one-sided
//! transfer (the owner-based consolidation of §4.1).

use evostore_graph::{CompactGraph, IndexQueryStats, LcpResult};
use evostore_kv::MetricsSnapshot;
use evostore_tensor::{ModelId, TensorKey};
use serde::{Deserialize, Serialize};

use crate::owner_map::OwnerMap;

/// Location of one tensor inside a consolidated bulk region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Which tensor this is.
    pub key: TensorKey,
    /// Byte offset of its serialized record inside the region.
    pub offset: u64,
    /// Record length in bytes.
    pub len: u64,
}

/// Store a new (or derived) model: metadata inline, new tensors in the
/// exposed bulk region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreModelRequest {
    /// Id of the model being stored (determines its provider placement).
    pub model: ModelId,
    /// The flattened architecture.
    pub graph: CompactGraph,
    /// Ownership of every vertex.
    pub owner_map: OwnerMap,
    /// Direct transfer-learning ancestor, if any.
    pub parent: Option<ModelId>,
    /// Quality metric (e.g. validation accuracy) used for LCP tie-breaks.
    pub quality: f64,
    /// Where each *self-owned* tensor lives in the bulk region.
    pub manifest: Vec<ManifestEntry>,
    /// Bulk region holding the consolidated new tensors.
    pub bulk: u64,
    /// Write-order stamp to store under. `None` on the first (primary)
    /// leg — the serving provider assigns one from the shared clock —
    /// and `Some` on mirror legs, so every replica of a model records
    /// the *same* timestamp. A request whose model already exists with
    /// a timestamp ≥ this one is answered idempotently (a retried
    /// mirror leg whose first delivery applied must not double-store).
    #[serde(default)]
    pub timestamp: Option<u64>,
}

/// Reply to a store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreModelReply {
    /// Global write ordering stamp (provenance ordering, §4.1).
    pub timestamp: u64,
    /// Bytes of tensor payload persisted by this request.
    pub bytes_stored: u64,
}

/// Fetch a model's metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GetMetaRequest {
    /// The model to look up.
    pub model: ModelId,
}

/// A model's metadata record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelMetaReply {
    /// The flattened architecture.
    pub graph: CompactGraph,
    /// Ownership of every vertex.
    pub owner_map: OwnerMap,
    /// Direct ancestor.
    pub parent: Option<ModelId>,
    /// Quality metric.
    pub quality: f64,
    /// Global write-order stamp.
    pub timestamp: u64,
}

/// Read a set of tensors hosted by the target provider.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadTensorsRequest {
    /// Keys to read; every key's owner must hash to the target provider.
    pub keys: Vec<TensorKey>,
    /// When true, return the *stored* record bytes verbatim — possibly
    /// EVDL delta records — instead of materialized tensors. Only the
    /// delta-preserving sync driver sets this; ordinary readers always
    /// want materialized payloads. `default` keeps old clients decodable.
    #[serde(default)]
    pub raw_records: bool,
}

/// Reply: a freshly exposed bulk region + manifest. The *client* releases
/// the region after pulling it (one-sided completion).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadTensorsReply {
    /// Offsets of each requested tensor in the region.
    pub manifest: Vec<ManifestEntry>,
    /// The exposed region.
    pub bulk: u64,
}

/// Read a contiguous element range of one hosted tensor (fine-grain
/// partial access, §1: "partial I/O to enable fine-grain access to
/// individual tensors").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadRangeRequest {
    /// The tensor.
    pub key: TensorKey,
    /// First element of the range.
    pub elem_offset: u64,
    /// Number of elements.
    pub elem_count: u64,
}

/// Reply: the requested slice as a freshly exposed bulk region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadRangeReply {
    /// Element type of the tensor.
    pub dtype_tag: u8,
    /// The exposed region holding exactly the requested bytes.
    pub bulk: u64,
}

/// Adjust reference counts of tensors hosted by the target provider.
///
/// Refcount mutation is *not* naturally idempotent, but its failure
/// handling retries legs whose outcome is indeterminate (a timeout or a
/// dropped reply may hide a handler that already ran). `op_id` makes the
/// retry safe: providers remember recently applied operation ids and
/// answer a duplicate from cache without re-applying, so a decrement can
/// never land twice and reclaim a tensor that live models still
/// reference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RefsRequest {
    /// Unique id of this logical adjustment; identical across retries of
    /// the same operation (including parked-decrement re-issues).
    pub op_id: u64,
    /// Tensor keys to increment/decrement.
    pub keys: Vec<TensorKey>,
}

impl RefsRequest {
    /// A refs adjustment over `keys` with a fresh operation id.
    pub fn new(keys: Vec<TensorKey>) -> RefsRequest {
        // Process-wide counter: the fabric is in-process, so this is
        // unique across every client handle that can reach a provider.
        static NEXT_OP_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        RefsRequest {
            op_id: NEXT_OP_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            keys,
        }
    }

    /// A refs adjustment with an explicit (deterministic) operation id.
    pub fn with_op_id(op_id: u64, keys: Vec<TensorKey>) -> RefsRequest {
        RefsRequest { op_id, keys }
    }

    /// The deterministic id of the decrement leg that retiring `model`
    /// (the incarnation stored at `timestamp`) sends to provider
    /// `provider_index`.
    ///
    /// Unlike the counter ids of [`RefsRequest::new`], this id is a pure
    /// function of the retirement, so it survives the client: a parked
    /// decrement re-issued after a fault window carries the same id as
    /// the fence the anti-entropy repair pass seeded on the recovered
    /// provider ([`methods::SYNC_RETIRE`]), and the two can never both
    /// apply. The top bit is always set, keeping the hash namespace
    /// disjoint from the counter namespace (counters start at 1 and
    /// cannot plausibly reach 2^63).
    pub fn retirement_op_id(model: ModelId, timestamp: u64, provider_index: usize) -> u64 {
        // FNV-1a over the identifying triple.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [model.0, timestamp, provider_index as u64] {
            for b in word.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h | (1 << 63)
    }
}

/// Reply to a refs adjustment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RefsReply {
    /// Keys applied.
    pub applied: usize,
    /// Tensors physically reclaimed (decrement reached zero).
    pub reclaimed: usize,
}

/// Provider-side LCP query: the client broadcasts the candidate graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LcpQueryRequest {
    /// The new candidate's flattened architecture.
    pub graph: CompactGraph,
}

/// One provider's best local match.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LcpQueryReply {
    /// Best local candidate, absent when nothing matches.
    pub best: Option<LcpCandidate>,
    /// How many LCP computations this provider actually ran: distinct
    /// non-memoized architectures on the indexed path, every stored
    /// model on the unindexed one (diagnostics).
    pub scanned: usize,
    /// How the index served this query (dedup/memo/pruning breakdown).
    pub stats: IndexQueryStats,
}

/// A candidate ancestor found by a provider.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LcpCandidate {
    /// The ancestor model.
    pub model: ModelId,
    /// Its quality metric (tie-break).
    pub quality: f64,
    /// The LCP of the queried graph against this ancestor.
    pub lcp: LcpResult,
}

/// Batched LCP queries: N candidate graphs in one envelope. The provider
/// answers every query against *one* pinned catalog snapshot, amortizing
/// dispatch, tracing, and snapshot acquisition across the batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LcpBatchRequest {
    /// The candidate architectures, answered in order.
    pub graphs: Vec<CompactGraph>,
}

/// Per-query replies, index-aligned with [`LcpBatchRequest::graphs`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LcpBatchReply {
    /// `replies[i]` answers `graphs[i]`.
    pub replies: Vec<LcpQueryReply>,
}

/// Batched pattern queries: N patterns in one envelope, answered against
/// one pinned catalog snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternBatchRequest {
    /// The patterns, answered in order.
    pub patterns: Vec<evostore_graph::ArchPattern>,
}

/// Per-query replies, index-aligned with [`PatternBatchRequest::patterns`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternBatchReply {
    /// `replies[i]` answers `patterns[i]`.
    pub replies: Vec<PatternQueryReply>,
}

/// Remove a model's metadata; the reply carries the owner map so the
/// client can decrement tensor references across providers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RetireMetaRequest {
    /// The model to retire.
    pub model: ModelId,
}

/// Reply to metadata retirement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RetireMetaReply {
    /// The retired model's owner map (drives the decrement fan-out).
    pub owner_map: OwnerMap,
    /// Write-order stamp of the retired record. Together with the model
    /// id it names *which* incarnation was retired: the decrement
    /// fan-out derives deterministic operation ids from it
    /// ([`RefsRequest::retirement_op_id`]), and the anti-entropy
    /// tombstone carries it so stale replicas can tell a missed
    /// retirement from a missed (newer) store.
    #[serde(default)]
    pub timestamp: u64,
}

/// Scan the target provider's catalog for architectures matching a
/// pattern (§1's "queries that look for specific architectural features
/// and patterns").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternQueryRequest {
    /// The pattern.
    pub pattern: evostore_graph::ArchPattern,
}

/// Locally matching models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternQueryReply {
    /// `(model, quality)` of every local match.
    pub matches: Vec<(ModelId, f64)>,
    /// Pattern evaluations actually run (distinct architectures on the
    /// indexed path, every stored model otherwise).
    pub scanned: usize,
    /// How the index served this query.
    pub stats: IndexQueryStats,
}

/// Attach optimizer state to a stored model (the paper's stated future
/// work: checkpoints that can resume the original training). The state
/// is model-private — never shared or deduplicated — and is reclaimed
/// with the model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreOptimizerRequest {
    /// The (already stored) model.
    pub model: ModelId,
    /// Slots of the optimizer tensors in the bulk region.
    pub manifest: Vec<ManifestEntry>,
    /// Bulk region holding the serialized optimizer tensors.
    pub bulk: u64,
}

/// Fetch a model's optimizer state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadOptimizerRequest {
    /// The model.
    pub model: ModelId,
}

/// Empty request for parameterless methods (stats).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StatsRequest {}

// ---- anti-entropy repair -------------------------------------------------

/// One model's entry in a provider digest: enough to detect a stale or
/// missing replica (the timestamp) and to rebuild the global expected
/// reference count of every tensor (the key lists) without fetching any
/// catalog record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelDigest {
    /// The cataloged model.
    pub model: ModelId,
    /// Its write-order stamp; identical across consistent replicas.
    pub timestamp: u64,
    /// Every tensor key the model's owner map references (self-owned
    /// and inherited) — one global reference each.
    pub ref_keys: Vec<TensorKey>,
    /// Attached optimizer-state keys (model-private) — one reference
    /// each.
    pub optimizer_keys: Vec<TensorKey>,
}

/// A recorded retirement: which model, which incarnation (its record
/// timestamp), and when. A tombstone kills any replica record with
/// `timestamp <= record_timestamp`; a re-store under the same id gets a
/// newer stamp and survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tombstone {
    /// The retired model.
    pub model: ModelId,
    /// Write-order stamp of the record that was retired.
    pub record_timestamp: u64,
    /// Write-order stamp of the retirement itself.
    pub retired_at: u64,
}

/// Ask a provider for its catalog digest (empty request).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DigestRequest {}

/// A provider's anti-entropy digest: every cataloged model plus every
/// retirement it has witnessed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DigestReply {
    /// The provider's index (sanity cross-check for the repair pass).
    pub provider_index: usize,
    /// Digest of every cataloged model.
    pub models: Vec<ModelDigest>,
    /// Every retirement recorded here.
    pub tombstones: Vec<Tombstone>,
}

/// Re-replicate one model onto the target: the full catalog record plus
/// the payloads of its self-owned (and optimizer) tensors, consolidated
/// in a bulk region exactly like a store. Applied only when the target
/// has no record for the model or a strictly older one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncModelRequest {
    /// The model being re-replicated.
    pub model: ModelId,
    /// The flattened architecture.
    pub graph: CompactGraph,
    /// Ownership of every vertex.
    pub owner_map: OwnerMap,
    /// Direct ancestor.
    pub parent: Option<ModelId>,
    /// Quality metric.
    pub quality: f64,
    /// The authoritative write-order stamp (from the source replica).
    pub timestamp: u64,
    /// Self-owned + optimizer tensor payload locations in the region.
    pub manifest: Vec<ManifestEntry>,
    /// Bulk region holding the payloads.
    pub bulk: u64,
    /// When true, the payloads are the source's *stored* record bytes
    /// shipped verbatim — possibly EVDL delta records — instead of
    /// materialized tensors. The receiver validates delta framing,
    /// requires each delta's base to be locally present (or part of this
    /// same request), and registers `delta_deps` fencing on arrival.
    /// `default` keeps pre-transfer-plane senders decodable.
    #[serde(default)]
    pub raw_records: bool,
}

/// Reply to a model sync.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncModelReply {
    /// Whether the record was installed (false: target already newer).
    pub applied: bool,
    /// Tensor payloads written.
    pub tensors_stored: usize,
}

// ---- derivative-aware transfer plane -------------------------------------

/// One record's *transfer manifest*: how the stored bytes decompose into
/// content-addressed chunks at the source, plus the record's delta
/// linkage. `hashes` is empty when the source stores records whole; the
/// delta fields describe the *stored* encoding (which a chunk-verbatim
/// transfer preserves).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Which record this is.
    pub key: TensorKey,
    /// Stored record length in bytes (the chunked logical total).
    pub total: u64,
    /// Content hashes of the record's chunks in order
    /// ([`evostore_tensor::ContentHash::to_bytes`] form).
    pub hashes: Vec<[u8; 16]>,
    /// When the stored record is an EVDL delta: the base record's key.
    pub delta_base: Option<TensorKey>,
    /// Delta chain depth of the stored record (0 = raw).
    pub delta_depth: u8,
}

/// Ask the *source* provider how a model's records decompose into chunks
/// and deltas — the opening move of chunk-negotiated re-replication.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferManifestRequest {
    /// The records (self-owned + optimizer keys) to describe.
    pub keys: Vec<TensorKey>,
}

/// The source's transfer manifests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferManifestReply {
    /// Whether the source stores records chunked (chunk hashes present
    /// and usable for negotiation).
    pub chunked: bool,
    /// The source's chunk size; manifests transfer verbatim only between
    /// stores chunking at the same granularity.
    pub chunk_size: u64,
    /// One entry per requested key, in request order.
    pub records: Vec<TransferRecord>,
}

/// Possession probe on the *receiver*: which of these chunks (by content
/// hash) and records (by key — delta-base fencing) it already holds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HaveChunksRequest {
    /// Chunk content hashes to probe.
    pub hashes: Vec<[u8; 16]>,
    /// Record keys whose presence the sender needs (delta bases).
    pub keys: Vec<TensorKey>,
}

/// The receiver's possession set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HaveChunksReply {
    /// Whether the receiver can accept manifest-level chunk inserts.
    pub chunked: bool,
    /// The receiver's chunk size.
    pub chunk_size: u64,
    /// `have_chunks[i]` answers `hashes[i]`.
    pub have_chunks: Vec<bool>,
    /// `have_records[i]` answers `keys[i]`.
    pub have_records: Vec<bool>,
}

/// Read chunk payloads by content hash from the source, as a freshly
/// exposed bulk region (the caller releases it).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadChunksRequest {
    /// The chunks to read.
    pub hashes: Vec<[u8; 16]>,
}

/// Reply: chunk payloads concatenated in request order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadChunksReply {
    /// Byte length of each requested chunk inside the region.
    pub lens: Vec<u64>,
    /// The exposed region.
    pub bulk: u64,
}

/// Chunk-negotiated re-replication: install a model from transfer
/// manifests plus only the chunks the receiver reported missing — the
/// tensor is never materialized on either side, and delta-encoded
/// records transfer verbatim (their `delta_deps` fencing is registered
/// on arrival). Staleness rules are identical to [`SyncModelRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncChunksRequest {
    /// The model being re-replicated.
    pub model: ModelId,
    /// The flattened architecture.
    pub graph: CompactGraph,
    /// Ownership of every vertex.
    pub owner_map: OwnerMap,
    /// Direct ancestor.
    pub parent: Option<ModelId>,
    /// Quality metric.
    pub quality: f64,
    /// The authoritative write-order stamp (from the source replica).
    pub timestamp: u64,
    /// Transfer manifest of every self-owned + optimizer record.
    pub records: Vec<TransferRecord>,
    /// Hashes of the pushed (receiver-missing) chunks, in bulk order.
    pub pushed: Vec<[u8; 16]>,
    /// Byte length of each pushed chunk (framing of the bulk region).
    pub lens: Vec<u64>,
    /// Bulk region holding the pushed chunk payloads.
    pub bulk: u64,
}

/// Reply to a chunk-negotiated sync.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncChunksReply {
    /// Whether the record was installed (false: target already newer).
    pub applied: bool,
    /// Records written (manifest-level inserts).
    pub records_stored: usize,
    /// Chunk payload bytes the negotiation avoided shipping.
    pub bytes_saved: u64,
}

/// Chunk-negotiated tensor fetch (delivery plane): the client names the
/// content hashes it can already source locally — typically chunks of
/// the superseded cached version after a `NewVersionOf` event — and the
/// provider pushes only the rest. The provider frames each *materialized*
/// record at `chunk_size`, so this works over any storage layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FetchChunksRequest {
    /// Keys to fetch; every key's owner must hash to the target provider.
    pub keys: Vec<TensorKey>,
    /// Chunking granularity the client hashed at (> 0).
    pub chunk_size: u64,
    /// Hashes the client already holds.
    pub have: Vec<[u8; 16]>,
}

/// Reply: per-key chunk framing plus the missing chunk payloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FetchChunksReply {
    /// Chunk framing of each materialized record, in request order (the
    /// delta fields are unused here — materialized records are raw).
    pub records: Vec<TransferRecord>,
    /// Hashes pushed in the bulk region, in order.
    pub pushed: Vec<[u8; 16]>,
    /// Byte length of each pushed chunk.
    pub lens: Vec<u64>,
    /// The exposed region (the client releases it).
    pub bulk: u64,
}

/// Spread retirements to a replica: record each tombstone, drop any
/// record it covers, and seed the deterministic decrement fence
/// ([`RefsRequest::retirement_op_id`]) so a parked client decrement for
/// the same retirement can never re-apply after repair has already
/// settled the counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncRetireRequest {
    /// The retirements to apply.
    pub tombstones: Vec<Tombstone>,
}

/// Reply to a retirement sync.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncRetireReply {
    /// Stale records removed by these tombstones.
    pub removed: usize,
}

/// Set the target's hosted reference counts to the authoritative values
/// the repair pass computed from the union catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncRefsRequest {
    /// `(key, count)` for every tensor this provider should host.
    pub entries: Vec<(TensorKey, u64)>,
    /// Delete hosted tensors absent from `entries`. Only set when the
    /// digest broadcast reached *every* provider: with a provider
    /// unreachable, a key absent from the union may simply belong to a
    /// model whose replicas are all down, and must not be dropped.
    pub prune_unlisted: bool,
}

/// Reply to a refs sync.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncRefsReply {
    /// Hosted keys whose count was changed.
    pub adjusted: usize,
    /// Unlisted hosted tensors deleted (`prune_unlisted`).
    pub removed: usize,
    /// Expected keys with no stored payload here (under-replication the
    /// model-sync step should have fixed; non-zero means repair could
    /// not fully converge this pass).
    pub missing: usize,
}

/// Provider statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ProviderStats {
    /// Models whose metadata lives here.
    pub models: usize,
    /// Distinct architecture signatures in the local catalog (the
    /// ancestor-query index's dedup denominator).
    pub distinct_archs: usize,
    /// Live tensors hosted here.
    pub tensors: usize,
    /// Bytes of live tensor payload.
    pub tensor_bytes: u64,
    /// Approximate metadata bytes (owner maps).
    pub metadata_bytes: u64,
    /// Cumulative ancestor/pattern query counters (scanned, deduped,
    /// pruned, memo hits) since this provider started.
    pub query_stats: IndexQueryStats,
    /// Tensor-store backend counters (ops + bytes moved). `default` so
    /// replies from pre-observability providers still decode.
    #[serde(default)]
    pub tensor_kv: MetricsSnapshot,
    /// Metadata-store backend counters.
    #[serde(default)]
    pub meta_kv: MetricsSnapshot,
    /// Segments handed to vectored bulk exposure by read-side handlers
    /// (zero-copy scatter-gather data plane).
    #[serde(default)]
    pub bulk_segments_exposed: u64,
    /// Tensor reads served without copying the payload (shared-buffer
    /// clone of a memory-resident value).
    #[serde(default)]
    pub zero_copy_reads: u64,
    /// Tensor reads that fell back to a copying `get` (disk-resident
    /// record or forced-copy lever).
    #[serde(default)]
    pub copy_fallback_reads: u64,
    /// Store requests validated by the parallel decode-free path.
    #[serde(default)]
    pub validate_par_batches: u64,
    /// Records stored as parent deltas rather than raw bytes.
    #[serde(default)]
    pub delta_stored: u64,
    /// Delta decodes performed to serve reads (one per chain link).
    #[serde(default)]
    pub delta_reconstructs: u64,
    /// Delta records rewritten back to raw bytes (base reclaimed, or a
    /// maintenance re-base pass).
    #[serde(default)]
    pub delta_rebased: u64,
    /// Live content-addressed chunks (zero on unchunked backends).
    #[serde(default)]
    pub chunks: u64,
    /// Chunk writes absorbed by deduplication.
    #[serde(default)]
    pub chunk_dedup_hits: u64,
    /// Bytes the chunked records claim to hold (pre-dedup).
    #[serde(default)]
    pub chunk_logical_bytes: u64,
    /// Bytes actually occupied by deduplicated chunk payloads.
    #[serde(default)]
    pub chunk_physical_bytes: u64,
    /// Catalog snapshots published (one per store/retire/sync mutation).
    #[serde(default)]
    pub snapshot_publications: u64,
    /// Lock-free snapshot pins taken by read handlers.
    #[serde(default)]
    pub snapshot_reads: u64,
    /// Snapshots swapped out but not yet reclaimed (still pinned by a
    /// reader at the last publication) — a gauge, near-zero at rest.
    #[serde(default)]
    pub snapshot_retired: u64,
    /// Batched query envelopes served (`LCP_BATCH` + `MATCH_PATTERN_BATCH`).
    #[serde(default)]
    pub batch_envelopes: u64,
    /// Individual queries delivered inside batched envelopes.
    #[serde(default)]
    pub batch_queries: u64,
    /// Delivery-plane counters (subscriptions, event pushes, broadcast
    /// trees).
    #[serde(default)]
    pub deliver: evostore_deliver::DeliverStats,
    /// Chunk hashes this provider was asked to probe for possession
    /// (negotiated-transfer offers it received as a sync target, plus
    /// chunk-aware watcher fetches it served).
    #[serde(default)]
    pub transfer_chunks_offered: u64,
    /// Chunk payloads this provider shipped for negotiated transfers.
    #[serde(default)]
    pub transfer_chunks_sent: u64,
    /// Offered chunks the negotiation elided (already held by the
    /// receiving side).
    #[serde(default)]
    pub transfer_chunks_skipped: u64,
    /// Delta-encoded records that crossed the wire verbatim (never
    /// materialized) during sync.
    #[serde(default)]
    pub transfer_deltas_shipped: u64,
    /// Payload bytes negotiation kept off the wire.
    #[serde(default)]
    pub transfer_bytes_saved: u64,
}

impl ProviderStats {
    /// Element-wise sum (the reduce step of a stats broadcast).
    pub fn merge(self, other: ProviderStats) -> ProviderStats {
        ProviderStats {
            models: self.models + other.models,
            distinct_archs: self.distinct_archs + other.distinct_archs,
            tensors: self.tensors + other.tensors,
            tensor_bytes: self.tensor_bytes + other.tensor_bytes,
            metadata_bytes: self.metadata_bytes + other.metadata_bytes,
            query_stats: self.query_stats.merge(other.query_stats),
            tensor_kv: {
                let mut kv = self.tensor_kv;
                kv.merge(&other.tensor_kv);
                kv
            },
            meta_kv: {
                let mut kv = self.meta_kv;
                kv.merge(&other.meta_kv);
                kv
            },
            bulk_segments_exposed: self.bulk_segments_exposed + other.bulk_segments_exposed,
            zero_copy_reads: self.zero_copy_reads + other.zero_copy_reads,
            copy_fallback_reads: self.copy_fallback_reads + other.copy_fallback_reads,
            validate_par_batches: self.validate_par_batches + other.validate_par_batches,
            delta_stored: self.delta_stored + other.delta_stored,
            delta_reconstructs: self.delta_reconstructs + other.delta_reconstructs,
            delta_rebased: self.delta_rebased + other.delta_rebased,
            chunks: self.chunks + other.chunks,
            chunk_dedup_hits: self.chunk_dedup_hits + other.chunk_dedup_hits,
            chunk_logical_bytes: self.chunk_logical_bytes + other.chunk_logical_bytes,
            chunk_physical_bytes: self.chunk_physical_bytes + other.chunk_physical_bytes,
            snapshot_publications: self.snapshot_publications + other.snapshot_publications,
            snapshot_reads: self.snapshot_reads + other.snapshot_reads,
            snapshot_retired: self.snapshot_retired + other.snapshot_retired,
            batch_envelopes: self.batch_envelopes + other.batch_envelopes,
            batch_queries: self.batch_queries + other.batch_queries,
            deliver: self.deliver.merge(other.deliver),
            transfer_chunks_offered: self.transfer_chunks_offered + other.transfer_chunks_offered,
            transfer_chunks_sent: self.transfer_chunks_sent + other.transfer_chunks_sent,
            transfer_chunks_skipped: self.transfer_chunks_skipped + other.transfer_chunks_skipped,
            transfer_deltas_shipped: self.transfer_deltas_shipped + other.transfer_deltas_shipped,
            transfer_bytes_saved: self.transfer_bytes_saved + other.transfer_bytes_saved,
        }
    }
}

/// Ask a provider for its observability registry snapshot (empty
/// request). The reply is an [`evostore_obs::RegistrySnapshot`] built on
/// demand: provider stats gauges, kv backend counters, index query
/// counters, and flight-recorder occupancy.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ObsSnapshotRequest {}

/// RPC method names registered by every provider.
pub mod methods {
    /// Store a model (metadata + consolidated tensors).
    pub const STORE: &str = "evostore.store";
    /// Fetch model metadata.
    pub const GET_META: &str = "evostore.get_meta";
    /// Read hosted tensors (returns a bulk region).
    pub const READ: &str = "evostore.read";
    /// Increment tensor refcounts.
    pub const INCR_REFS: &str = "evostore.incr_refs";
    /// Decrement tensor refcounts (GC at zero).
    pub const DECR_REFS: &str = "evostore.decr_refs";
    /// Provider-side LCP scan.
    pub const LCP: &str = "evostore.lcp";
    /// Batched LCP scan: N graphs, one envelope, one pinned snapshot.
    pub const LCP_BATCH: &str = "evostore.lcp_batch";
    /// Batched pattern scan.
    pub const MATCH_PATTERN_BATCH: &str = "evostore.match_pattern_batch";
    /// Partial (element-range) tensor read.
    pub const READ_RANGE: &str = "evostore.read_range";
    /// Retire model metadata.
    pub const RETIRE_META: &str = "evostore.retire_meta";
    /// Architecture pattern scan.
    pub const MATCH_PATTERN: &str = "evostore.match_pattern";
    /// Attach optimizer state.
    pub const STORE_OPTIMIZER: &str = "evostore.store_optimizer";
    /// Fetch optimizer state.
    pub const LOAD_OPTIMIZER: &str = "evostore.load_optimizer";
    /// Provider statistics.
    pub const STATS: &str = "evostore.stats";
    /// Anti-entropy catalog digest.
    pub const DIGEST: &str = "evostore.digest";
    /// Re-replicate one model (record + payloads) onto the target.
    pub const SYNC_MODEL: &str = "evostore.sync_model";
    /// Spread retirement tombstones onto the target.
    pub const SYNC_RETIRE: &str = "evostore.sync_retire";
    /// Set hosted reference counts to authoritative values.
    pub const SYNC_REFS: &str = "evostore.sync_refs";
    /// Observability registry snapshot (metrics exposition fan-in).
    pub const OBS_SNAPSHOT: &str = "evostore.obs_snapshot";
    /// Transfer manifests (chunk + delta decomposition) of stored
    /// records, from the sync source.
    pub const TRANSFER_MANIFEST: &str = "evostore.transfer_manifest";
    /// Chunk/record possession probe on the sync target.
    pub const HAVE_CHUNKS: &str = "evostore.have_chunks";
    /// Read chunk payloads by content hash from the sync source.
    pub const READ_CHUNKS: &str = "evostore.read_chunks";
    /// Chunk-negotiated, delta-preserving model re-replication.
    pub const SYNC_CHUNKS: &str = "evostore.sync_chunks";
    /// Chunk-negotiated tensor fetch (delivery-plane peer exchange).
    pub const FETCH_CHUNKS: &str = "evostore.fetch_chunks";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_sums() {
        let a = ProviderStats {
            models: 1,
            distinct_archs: 1,
            tensors: 2,
            tensor_bytes: 100,
            metadata_bytes: 16,
            query_stats: IndexQueryStats {
                candidates: 10,
                scanned: 2,
                memo_hits: 3,
                deduped: 4,
                pruned: 1,
                prefiltered: 1,
                answered: 2,
            },
            tensor_kv: MetricsSnapshot {
                puts: 2,
                bytes_written: 100,
                ..MetricsSnapshot::default()
            },
            meta_kv: MetricsSnapshot::default(),
            bulk_segments_exposed: 5,
            zero_copy_reads: 4,
            copy_fallback_reads: 1,
            validate_par_batches: 2,
            delta_stored: 3,
            delta_reconstructs: 6,
            delta_rebased: 1,
            chunks: 10,
            chunk_dedup_hits: 7,
            chunk_logical_bytes: 2048,
            chunk_physical_bytes: 1024,
            snapshot_publications: 4,
            snapshot_reads: 20,
            snapshot_retired: 1,
            batch_envelopes: 2,
            batch_queries: 9,
            deliver: evostore_deliver::DeliverStats {
                events_published: 5,
                tree_depth: 2,
                ..Default::default()
            },
            transfer_chunks_offered: 10,
            transfer_chunks_sent: 3,
            transfer_chunks_skipped: 7,
            transfer_deltas_shipped: 2,
            transfer_bytes_saved: 4096,
        };
        let b = ProviderStats {
            models: 3,
            distinct_archs: 2,
            tensors: 4,
            tensor_bytes: 900,
            metadata_bytes: 32,
            query_stats: IndexQueryStats::default(),
            tensor_kv: MetricsSnapshot {
                puts: 1,
                bytes_written: 900,
                ..MetricsSnapshot::default()
            },
            meta_kv: MetricsSnapshot::default(),
            bulk_segments_exposed: 3,
            zero_copy_reads: 1,
            copy_fallback_reads: 2,
            validate_par_batches: 1,
            delta_stored: 1,
            delta_reconstructs: 2,
            delta_rebased: 0,
            chunks: 5,
            chunk_dedup_hits: 3,
            chunk_logical_bytes: 512,
            chunk_physical_bytes: 256,
            snapshot_publications: 1,
            snapshot_reads: 5,
            snapshot_retired: 0,
            batch_envelopes: 1,
            batch_queries: 3,
            deliver: evostore_deliver::DeliverStats {
                events_published: 2,
                tree_depth: 3,
                ..Default::default()
            },
            transfer_chunks_offered: 5,
            transfer_chunks_sent: 1,
            transfer_chunks_skipped: 4,
            transfer_deltas_shipped: 1,
            transfer_bytes_saved: 1024,
        };
        let m = a.merge(b);
        assert_eq!(m.models, 4);
        assert_eq!(m.distinct_archs, 3);
        assert_eq!(m.tensors, 6);
        assert_eq!(m.tensor_bytes, 1000);
        assert_eq!(m.metadata_bytes, 48);
        assert_eq!(m.query_stats.candidates, 10);
        assert_eq!(m.query_stats.scanned, 2);
        assert_eq!(m.query_stats.memo_hits, 3);
        assert_eq!(m.tensor_kv.puts, 3);
        assert_eq!(m.tensor_kv.bytes_written, 1000);
        assert_eq!(m.bulk_segments_exposed, 8);
        assert_eq!(m.zero_copy_reads, 5);
        assert_eq!(m.copy_fallback_reads, 3);
        assert_eq!(m.validate_par_batches, 3);
        assert_eq!(m.delta_stored, 4);
        assert_eq!(m.delta_reconstructs, 8);
        assert_eq!(m.delta_rebased, 1);
        assert_eq!(m.chunks, 15);
        assert_eq!(m.chunk_dedup_hits, 10);
        assert_eq!(m.chunk_logical_bytes, 2560);
        assert_eq!(m.chunk_physical_bytes, 1280);
        assert_eq!(m.query_stats.prefiltered, 1);
        assert_eq!(m.query_stats.answered, 2);
        assert_eq!(m.snapshot_publications, 5);
        assert_eq!(m.snapshot_reads, 25);
        assert_eq!(m.snapshot_retired, 1);
        assert_eq!(m.batch_envelopes, 3);
        assert_eq!(m.batch_queries, 12);
        assert_eq!(m.deliver.events_published, 7);
        assert_eq!(m.deliver.tree_depth, 3, "gauges merge by max");
        assert_eq!(m.transfer_chunks_offered, 15);
        assert_eq!(m.transfer_chunks_sent, 4);
        assert_eq!(m.transfer_chunks_skipped, 11);
        assert_eq!(m.transfer_deltas_shipped, 3);
        assert_eq!(m.transfer_bytes_saved, 5120);
    }

    #[test]
    fn transfer_messages_roundtrip_json() {
        use evostore_graph::{flatten, Architecture, LayerConfig, LayerKind};
        let mut arch = Architecture::new("t");
        arch.add_layer(LayerConfig::new("in", LayerKind::Input { shape: vec![4] }));
        let graph = flatten(&arch).unwrap();
        let owner_map = OwnerMap::fresh(ModelId(3), &graph);
        let key = TensorKey::new(ModelId(3), evostore_tensor::VertexId(1), 0);
        let base = TensorKey::new(ModelId(2), evostore_tensor::VertexId(1), 0);
        let req = SyncChunksRequest {
            model: ModelId(3),
            graph,
            owner_map,
            parent: Some(ModelId(2)),
            quality: 0.9,
            timestamp: 7,
            records: vec![TransferRecord {
                key,
                total: 128,
                hashes: vec![[1u8; 16], [2u8; 16]],
                delta_base: Some(base),
                delta_depth: 1,
            }],
            pushed: vec![[2u8; 16]],
            lens: vec![64],
            bulk: 9,
        };
        let bytes = serde_json::to_vec(&req).unwrap();
        let back: SyncChunksRequest = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].hashes, req.records[0].hashes);
        assert_eq!(back.records[0].delta_base, Some(base));
        assert_eq!(back.pushed, vec![[2u8; 16]]);

        let probe = HaveChunksRequest {
            hashes: vec![[5u8; 16]],
            keys: vec![key],
        };
        let back: HaveChunksRequest =
            serde_json::from_slice(&serde_json::to_vec(&probe).unwrap()).unwrap();
        assert_eq!(back.hashes, probe.hashes);
        assert_eq!(back.keys, probe.keys);
    }

    #[test]
    fn sync_request_raw_records_defaults_to_false() {
        // Wire compatibility: a pre-transfer-plane sync body (no
        // raw_records field) still decodes as a materialized sync.
        let json = r#"{"model":1,"graph":{"vertices":[],"edges":[]},"owner_map":{"model":1,"owners":[]},"parent":null,"quality":0.5,"timestamp":3,"manifest":[],"bulk":0}"#;
        if let Ok(req) = serde_json::from_str::<SyncModelRequest>(json) {
            assert!(!req.raw_records);
        }
    }

    #[test]
    fn messages_roundtrip_json() {
        let req = RefsRequest::new(vec![TensorKey::new(
            ModelId(3),
            evostore_tensor::VertexId(1),
            0,
        )]);
        let bytes = serde_json::to_vec(&req).unwrap();
        let back: RefsRequest = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.keys, req.keys);
        assert_eq!(back.op_id, req.op_id);
    }

    #[test]
    fn refs_op_ids_are_unique() {
        let a = RefsRequest::new(Vec::new());
        let b = RefsRequest::new(Vec::new());
        assert_ne!(a.op_id, b.op_id);
    }

    #[test]
    fn retirement_op_ids_are_deterministic_and_distinct() {
        let a = RefsRequest::retirement_op_id(ModelId(7), 42, 1);
        assert_eq!(a, RefsRequest::retirement_op_id(ModelId(7), 42, 1));
        assert_ne!(a, RefsRequest::retirement_op_id(ModelId(7), 42, 2));
        assert_ne!(a, RefsRequest::retirement_op_id(ModelId(7), 43, 1));
        assert_ne!(a, RefsRequest::retirement_op_id(ModelId(8), 42, 1));
    }

    #[test]
    fn retirement_op_ids_avoid_the_counter_namespace() {
        for m in 0..50u64 {
            for p in 0..4usize {
                let id = RefsRequest::retirement_op_id(ModelId(m), m * 3 + 1, p);
                assert!(id >= 1 << 63, "hash ids live above the counter range");
            }
        }
    }

    #[test]
    fn store_request_timestamp_defaults_to_none() {
        // Wire compatibility: a pre-replication store body (no timestamp
        // field) still decodes, as a primary-leg request.
        let json = r#"{"model":1,"graph":{"vertices":[],"edges":[]},"owner_map":{"model":1,"owners":[]},"parent":null,"quality":0.5,"manifest":[],"bulk":0}"#;
        if let Ok(req) = serde_json::from_str::<StoreModelRequest>(json) {
            assert_eq!(req.timestamp, None);
        }
    }
}
