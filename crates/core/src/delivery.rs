//! Provider-side delivery hub: subscription matching against catalog
//! publications, per-subscriber bounded queues, and the asynchronous
//! pump that pushes `deliver.event` RPCs.
//!
//! Every [`ProviderState::mutate_catalog`] publication hands the hub
//! the snapshot it just published plus the [`CatalogChange`] log the
//! mutation produced. The hub matches each change against every live
//! subscription (walking ancestor chains and architecture prefixes
//! through the *snapshot*, so matching sees exactly the state the rest
//! of the deployment sees), plans one deterministic [`BroadcastTree`]
//! per release over the matched subscriber endpoints, and enqueues
//! sequence-numbered events. A dedicated pump thread — never a fabric
//! service thread, so an event push can trigger a prefetch that calls
//! straight back into this provider without deadlocking the service
//! pool — drains the queues with bounded retry and reaps subscribers
//! that stay unreachable.
//!
//! [`ProviderState::mutate_catalog`]: crate::provider::ProviderState

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use evostore_deliver::wire::methods;
use evostore_deliver::{
    BroadcastTree, DeliverMetrics, DeliverStats, EventAck, EventKind, EventPush, ModelEvent,
    SubscribeReply, SubscribeRequest, SubscriberQueue, SubscriptionFilter, UnsubscribeReply,
    UnsubscribeRequest,
};
use evostore_graph::CompactGraph;
use evostore_obs::Tracer;
use evostore_rpc::{fan_out_traced, EndpointId, Fabric, RetryPolicy, TraceHandle};
use evostore_tensor::ModelId;

use crate::provider::CatalogSnapshot;

/// One entry of a catalog mutation's change log, recorded by
/// `Catalog::insert` / `Catalog::remove` and drained at publication.
/// Retirements capture the record fields they need for matching, since
/// the record is gone from the published snapshot.
#[derive(Debug, Clone)]
pub enum CatalogChange {
    /// A record was inserted (store, sync, recovery).
    Stored {
        /// The cataloged model.
        model: ModelId,
    },
    /// A record was removed.
    Retired {
        /// The retired model.
        model: ModelId,
        /// Its recorded parent.
        parent: Option<ModelId>,
        /// Its architecture (for prefix filters).
        graph: Arc<CompactGraph>,
        /// Its recorded quality.
        quality: f64,
        /// Its record timestamp.
        timestamp: u64,
    },
}

/// Events per `deliver.event` push.
const PUSH_BATCH: usize = 64;
/// Consecutive failed pushes before a subscriber is declared dead and
/// its subscription reaped (pending events count as dropped).
const DEAD_AFTER: u32 = 8;
/// Base backoff between pushes to a failing subscriber.
const PUSH_BACKOFF: Duration = Duration::from_millis(10);
/// Pump idle poll (also bounds shutdown latency).
const PUMP_IDLE: Duration = Duration::from_millis(20);
/// Ancestor-chain walk bound (matches the provenance API's own bound).
const MAX_ANCESTOR_WALK: usize = 64;
/// Subscription queue capacity bounds.
const MAX_QUEUE_CAP: usize = 65_536;

/// One live subscription.
struct Subscription {
    filter: SubscriptionFilter,
    subscriber: u32,
    queue: SubscriberQueue,
    /// Catalog-replay backlog, fed into the bounded queue as acks free
    /// space. Kept outside the queue: the bound protects against slow
    /// *live* consumption, while replay is regenerable catalog state —
    /// pouring it in all at once would overflow the very window a
    /// resubscribe is trying to recover.
    replay: std::collections::VecDeque<ModelEvent>,
    consecutive_failures: u32,
    backoff_until: Option<Instant>,
}

impl Subscription {
    /// Move replay backlog into the queue while there is room; returns
    /// the number of events enqueued (they get live sequence numbers).
    fn fill_from_replay(&mut self) -> u64 {
        let mut moved = 0u64;
        while self.queue.free() > 0 {
            let Some(ev) = self.replay.pop_front() else {
                break;
            };
            self.queue.enqueue(ev);
            moved += 1;
        }
        moved
    }
}

#[derive(Default)]
struct HubInner {
    subs: HashMap<u64, Subscription>,
    next_id: u64,
}

/// One push job collected from the queues (sent outside the lock).
struct PushJob {
    sub_id: u64,
    subscriber: u32,
    lost_from: Option<u64>,
    events: Vec<ModelEvent>,
}

/// The per-provider delivery hub.
pub struct DeliveryHub {
    fabric: Arc<Fabric>,
    /// The owning provider's endpoint (root of every fetch chain).
    provider_ep: u32,
    fanout: usize,
    push_retry: RetryPolicy,
    inner: Mutex<HubInner>,
    wake: Condvar,
    stop: AtomicBool,
    pump: Mutex<Option<JoinHandle<()>>>,
    /// Lock-free live-subscription count (fast path: publications with
    /// no subscribers skip the hub lock entirely).
    sub_count: AtomicU64,
    metrics: DeliverMetrics,
    /// Span factory for pump pushes (`deliver.push` roots); `None`
    /// outside an observed deployment.
    tracer: Option<Tracer>,
}

impl DeliveryHub {
    /// Hub for the provider at endpoint `provider_ep` with the given
    /// broadcast fanout.
    pub fn new(
        fabric: Arc<Fabric>,
        provider_ep: u32,
        fanout: usize,
        tracer: Option<Tracer>,
    ) -> DeliveryHub {
        DeliveryHub {
            fabric,
            provider_ep,
            fanout: fanout.max(1),
            // The pump is its own retry loop (unacked events re-push
            // with backoff), so each attempt goes out once with a
            // bounded deadline.
            push_retry: RetryPolicy::no_retry().with_timeout(Duration::from_secs(5)),
            inner: Mutex::new(HubInner::default()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            pump: Mutex::new(None),
            sub_count: AtomicU64::new(0),
            metrics: DeliverMetrics::default(),
            tracer,
        }
    }

    /// The configured broadcast fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Delivery counters snapshot.
    pub fn stats(&self) -> DeliverStats {
        self.metrics.stats()
    }

    // ---- subscription management ----------------------------------------

    /// Register a subscription; when `replay_after` is set, seed the
    /// queue with a `Stored` event for every cataloged record matching
    /// the filter with a timestamp strictly greater than it (ordered by
    /// timestamp, then model id — deterministic replay).
    pub fn subscribe(
        self: &Arc<Self>,
        req: SubscribeRequest,
        snap: &CatalogSnapshot,
    ) -> SubscribeReply {
        let queue = SubscriberQueue::new(req.queue_capacity.clamp(1, MAX_QUEUE_CAP));
        let mut replay: Vec<ModelEvent> = Vec::new();
        if let Some(after) = req.replay_after {
            let mut matched: Vec<(u64, ModelId)> = snap
                .records()
                .filter(|&(model, rec)| {
                    rec.timestamp > after
                        && req
                            .filter
                            .matches(model, &ancestor_chain(snap, rec.parent), &rec.graph)
                })
                .map(|(model, rec)| (rec.timestamp, model))
                .collect();
            matched.sort_unstable();
            for (_, model) in matched {
                let rec = snap.get(model).expect("record came from this snapshot");
                replay.push(ModelEvent {
                    seq: 0,
                    kind: EventKind::Stored,
                    model,
                    parent: rec.parent,
                    quality: rec.quality,
                    timestamp: rec.timestamp,
                    // Replays are not a coordinated release: fetch
                    // straight from the provider.
                    fetch_chain: vec![self.provider_ep],
                });
            }
        }
        let (sub_id, published) = {
            let mut inner = self.inner.lock().expect("hub lock");
            let sub_id = inner.next_id;
            inner.next_id += 1;
            let mut sub = Subscription {
                filter: req.filter,
                subscriber: req.subscriber,
                queue,
                replay: replay.into(),
                consecutive_failures: 0,
                backoff_until: None,
            };
            let published = sub.fill_from_replay();
            inner.subs.insert(sub_id, sub);
            (sub_id, published)
        };
        let live = self.sub_count.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.subscriptions.store(live, Ordering::Relaxed);
        self.metrics
            .events_published
            .fetch_add(published, Ordering::Relaxed);
        self.ensure_pump();
        self.wake.notify_all();
        SubscribeReply {
            sub_id,
            provider: self.provider_ep,
        }
    }

    /// Drop a subscription.
    pub fn unsubscribe(&self, req: UnsubscribeRequest) -> UnsubscribeReply {
        let removed = self
            .inner
            .lock()
            .expect("hub lock")
            .subs
            .remove(&req.sub_id)
            .is_some();
        if removed {
            let live = self.sub_count.fetch_sub(1, Ordering::Relaxed) - 1;
            self.metrics.subscriptions.store(live, Ordering::Relaxed);
        }
        UnsubscribeReply { removed }
    }

    // ---- publication matching -------------------------------------------

    /// Match a publication's change log against every live subscription
    /// and enqueue events. Called by `mutate_catalog` while the catalog
    /// write lock is still held, so the event order every subscriber
    /// observes is exactly the publication order. Cost with zero
    /// subscribers is one atomic load.
    pub fn on_publication(&self, snap: &CatalogSnapshot, changes: &[CatalogChange]) {
        if self.sub_count.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("hub lock");
        if inner.subs.is_empty() {
            return;
        }
        let mut published = 0u64;
        let mut overflow = 0u64;
        let mut any = false;
        for change in changes {
            // Resolve the changed record's matching inputs.
            let (kind, model, parent, graph, quality, timestamp) = match change {
                CatalogChange::Stored { model } => match snap.get(*model) {
                    // Already gone again from this snapshot (stored and
                    // retired inside one batched mutation): the retire
                    // change carries the notification.
                    None => continue,
                    Some(rec) => (
                        EventKind::Stored,
                        *model,
                        rec.parent,
                        Arc::clone(&rec.graph),
                        rec.quality,
                        rec.timestamp,
                    ),
                },
                CatalogChange::Retired {
                    model,
                    parent,
                    graph,
                    quality,
                    timestamp,
                } => (
                    EventKind::Retired,
                    *model,
                    *parent,
                    Arc::clone(graph),
                    *quality,
                    *timestamp,
                ),
            };
            let ancestors = ancestor_chain(snap, parent);
            let matched: Vec<u64> = inner
                .subs
                .iter()
                .filter(|(_, s)| s.filter.matches(model, &ancestors, &graph))
                .map(|(&id, _)| id)
                .collect();
            if matched.is_empty() {
                continue;
            }
            // Stored events get a broadcast tree over the matched
            // subscriber endpoints; retirements carry no payload.
            let tree = (kind == EventKind::Stored).then(|| {
                let eps: Vec<u32> = matched.iter().map(|id| inner.subs[id].subscriber).collect();
                let tree = BroadcastTree::plan(&eps, self.fanout, model.0);
                self.metrics.releases.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .tree_depth
                    .store(tree.depth() as u64, Ordering::Relaxed);
                self.metrics
                    .tree_width
                    .store(tree.len() as u64, Ordering::Relaxed);
                tree
            });
            for id in matched {
                let sub = inner.subs.get_mut(&id).expect("matched above");
                let fetch_chain = match &tree {
                    Some(t) => t
                        .position(sub.subscriber)
                        .map(|pos| t.fetch_chain(pos, self.provider_ep))
                        .unwrap_or_else(|| vec![self.provider_ep]),
                    None => Vec::new(),
                };
                overflow += sub.queue.enqueue(ModelEvent {
                    seq: 0,
                    kind,
                    model,
                    parent,
                    quality,
                    timestamp,
                    fetch_chain,
                });
                published += 1;
                any = true;
            }
        }
        drop(inner);
        self.metrics
            .events_published
            .fetch_add(published, Ordering::Relaxed);
        self.metrics
            .events_dropped
            .fetch_add(overflow, Ordering::Relaxed);
        if any {
            self.wake.notify_all();
        }
    }

    // ---- delivery pump ---------------------------------------------------

    /// Start the pump thread if it is not running yet.
    fn ensure_pump(self: &Arc<Self>) {
        let mut pump = self.pump.lock().expect("pump lock");
        if pump.is_none() && !self.stop.load(Ordering::Relaxed) {
            let hub = Arc::clone(self);
            *pump = Some(
                std::thread::Builder::new()
                    .name(format!("deliver-pump-{}", self.provider_ep))
                    .spawn(move || hub.pump_loop())
                    .expect("spawn delivery pump"),
            );
        }
    }

    /// Stop the pump and wait for it (provider shutdown).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.wake.notify_all();
        let handle = self.pump.lock().expect("pump lock").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    fn pump_loop(self: Arc<Self>) {
        while !self.stop.load(Ordering::Relaxed) {
            let jobs = {
                let mut inner = self.inner.lock().expect("hub lock");
                loop {
                    if self.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let jobs = Self::collect_jobs(&mut inner);
                    if !jobs.is_empty() {
                        break jobs;
                    }
                    let (guard, _) = self.wake.wait_timeout(inner, PUMP_IDLE).expect("hub lock");
                    inner = guard;
                }
            };
            self.push_jobs(jobs);
        }
    }

    /// Snapshot one push batch per due subscription (queues unchanged;
    /// acks retire events afterwards).
    fn collect_jobs(inner: &mut HubInner) -> Vec<PushJob> {
        let now = Instant::now();
        inner
            .subs
            .iter()
            .filter(|(_, s)| s.queue.pending_len() > 0 && s.backoff_until.is_none_or(|t| t <= now))
            .map(|(&sub_id, s)| {
                let (lost_from, events) = s.queue.batch(PUSH_BATCH);
                PushJob {
                    sub_id,
                    subscriber: s.subscriber,
                    lost_from,
                    events,
                }
            })
            .collect()
    }

    /// Push the collected batches in parallel and apply acks/failures.
    fn push_jobs(&self, jobs: Vec<PushJob>) {
        let legs: Vec<(EndpointId, EventPush)> = jobs
            .iter()
            .map(|j| {
                (
                    EndpointId(j.subscriber),
                    EventPush {
                        sub_id: j.sub_id,
                        provider: self.provider_ep,
                        lost_from: j.lost_from,
                        events: j.events.clone(),
                    },
                )
            })
            .collect();
        self.metrics
            .event_pushes
            .fetch_add(legs.len() as u64, Ordering::Relaxed);
        // One `deliver.push` root span per pump round; every push
        // attempt files a child under it.
        let root = self.tracer.as_ref().map(|t| t.start_root("deliver.push"));
        let results: Vec<(EndpointId, Result<EventAck, _>)> = {
            let handle = match (&self.tracer, &root) {
                (Some(t), Some(r)) => Some(TraceHandle::new(t, r.ctx())),
                _ => None,
            };
            fan_out_traced(
                &self.fabric,
                &legs,
                methods::EVENT,
                &self.push_retry,
                None,
                handle.as_ref(),
            )
        };
        let mut inner = self.inner.lock().expect("hub lock");
        for (job, (_, result)) in jobs.iter().zip(results) {
            let Some(sub) = inner.subs.get_mut(&job.sub_id) else {
                continue; // unsubscribed mid-push
            };
            match result {
                Ok(ack) => {
                    let acked = sub.queue.ack(ack.next_expected);
                    let refilled = sub.fill_from_replay();
                    sub.consecutive_failures = 0;
                    sub.backoff_until = None;
                    self.metrics
                        .events_delivered
                        .fetch_add(acked, Ordering::Relaxed);
                    self.metrics
                        .events_published
                        .fetch_add(refilled, Ordering::Relaxed);
                }
                Err(_) => {
                    sub.consecutive_failures += 1;
                    self.metrics.push_failures.fetch_add(1, Ordering::Relaxed);
                    if sub.consecutive_failures >= DEAD_AFTER {
                        let pending = (sub.queue.pending_len() + sub.replay.len()) as u64;
                        inner.subs.remove(&job.sub_id);
                        let live = self.sub_count.fetch_sub(1, Ordering::Relaxed) - 1;
                        self.metrics.subscriptions.store(live, Ordering::Relaxed);
                        self.metrics
                            .events_dropped
                            .fetch_add(pending, Ordering::Relaxed);
                    } else {
                        sub.backoff_until =
                            Some(Instant::now() + PUSH_BACKOFF * sub.consecutive_failures.min(8));
                    }
                }
            }
        }
        if let Some(r) = root {
            r.finish();
        }
    }
}

/// Walk a record's ancestor chain through the snapshot, nearest parent
/// first, bounded and cycle-safe. Chains crossing provider boundaries
/// are followed as far as the local catalog reaches.
fn ancestor_chain(snap: &CatalogSnapshot, mut parent: Option<ModelId>) -> Vec<ModelId> {
    let mut chain = Vec::new();
    while let Some(p) = parent {
        if chain.len() >= MAX_ANCESTOR_WALK || chain.contains(&p) {
            break;
        }
        chain.push(p);
        parent = snap.get(p).and_then(|r| r.parent);
    }
    chain
}
