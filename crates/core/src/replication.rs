//! Replicated tensor placement.
//!
//! The paper places every model on exactly one provider by static
//! hashing ([`ModelId::provider_for`]), which makes each provider a
//! single point of failure. This module generalizes placement to a
//! *successor chain* over the same hash ring: a model's replica set is
//! the `min(R, n)` distinct providers starting at its hash slot and
//! walking the ring forward. The chain is a pure function of
//! `(model, n, R)` — no membership state, no directory — so clients,
//! providers and the repair pass all derive identical replica sets
//! independently.
//!
//! `factor = 1` degenerates to the paper's placement exactly: the chain
//! is `[provider_for(model)]` and every path through the system behaves
//! as before.

use evostore_tensor::ModelId;

/// How many copies of every model (metadata + self-owned tensors) the
/// deployment keeps, and on which providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationPolicy {
    /// Desired copies per model. Clamped to the deployment size at use:
    /// a 2-provider deployment under `factor = 3` keeps 2 copies.
    pub factor: usize,
}

impl Default for ReplicationPolicy {
    /// Unreplicated — the paper's placement.
    fn default() -> Self {
        ReplicationPolicy { factor: 1 }
    }
}

impl ReplicationPolicy {
    /// Policy with the given factor (clamped to ≥ 1).
    pub fn new(factor: usize) -> ReplicationPolicy {
        ReplicationPolicy {
            factor: factor.max(1),
        }
    }

    /// Effective copies kept in an `n`-provider deployment.
    pub fn effective_factor(&self, n: usize) -> usize {
        self.factor.clamp(1, n.max(1))
    }

    /// The replica chain of `model` in an `n`-provider deployment:
    /// provider indices, primary first, then ring successors. Always
    /// `min(factor, n)` *distinct* indices.
    pub fn replicas(&self, model: ModelId, n: usize) -> Vec<usize> {
        self.chain(model.provider_for(n), n)
    }

    /// The replica chain rooted at hash slot `primary`.
    pub fn chain(&self, primary: usize, n: usize) -> Vec<usize> {
        (0..self.effective_factor(n))
            .map(|i| (primary + i) % n)
            .collect()
    }

    /// Does provider `index` hold a replica of `model`?
    pub fn is_replica(&self, model: ModelId, n: usize, index: usize) -> bool {
        let primary = model.provider_for(n);
        // Ring distance from the primary to `index`.
        let dist = (index + n - primary) % n;
        dist < self.effective_factor(n)
    }

    /// Is every replica chain still reachable when the providers in
    /// `down` (indices) are not?
    ///
    /// A chain is lost only when *all* of its members are down, i.e.
    /// when some cyclic run of `min(factor, n)` consecutive providers is
    /// entirely down. Query collectives use this to decide whether a
    /// broadcast with unreachable providers still achieved full logical
    /// coverage: every model's catalog entry was served by at least one
    /// live replica.
    pub fn fully_covers(&self, n: usize, down: &[usize]) -> bool {
        let r = self.effective_factor(n);
        let is_down = |i: usize| down.contains(&(i % n));
        !(0..n).any(|primary| (0..r).all(|j| is_down(primary + j)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_one_matches_static_hashing() {
        let p = ReplicationPolicy::default();
        for id in 0..200u64 {
            let m = ModelId(id);
            assert_eq!(p.replicas(m, 7), vec![m.provider_for(7)]);
        }
    }

    #[test]
    fn chains_are_distinct_successors() {
        let p = ReplicationPolicy::new(3);
        let m = ModelId(42);
        let chain = p.replicas(m, 5);
        assert_eq!(chain.len(), 3);
        let primary = m.provider_for(5);
        assert_eq!(chain[0], primary);
        assert_eq!(chain[1], (primary + 1) % 5);
        assert_eq!(chain[2], (primary + 2) % 5);
        let distinct: std::collections::HashSet<_> = chain.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn factor_clamps_to_deployment_size() {
        let p = ReplicationPolicy::new(5);
        let chain = p.replicas(ModelId(9), 3);
        assert_eq!(chain.len(), 3, "factor clamps to n");
        let distinct: std::collections::HashSet<_> = chain.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn is_replica_agrees_with_chain() {
        for factor in 1..=4 {
            let p = ReplicationPolicy::new(factor);
            for id in 0..100u64 {
                let m = ModelId(id);
                let chain = p.replicas(m, 6);
                for idx in 0..6 {
                    assert_eq!(
                        p.is_replica(m, 6, idx),
                        chain.contains(&idx),
                        "factor={factor} model={id} idx={idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn coverage_requires_one_live_replica_per_chain() {
        let p = ReplicationPolicy::new(2);
        // One provider down: every 2-chain still has a live member.
        assert!(p.fully_covers(4, &[1]));
        // Two adjacent providers down: the chain rooted at the first of
        // them is entirely down.
        assert!(!p.fully_covers(4, &[1, 2]));
        // Two non-adjacent downs keep every adjacent pair half-alive.
        assert!(p.fully_covers(4, &[0, 2]));
        // Wrap-around adjacency counts too.
        assert!(!p.fully_covers(4, &[3, 0]));
        // Unreplicated: any down provider loses its chain.
        assert!(!ReplicationPolicy::default().fully_covers(4, &[2]));
        assert!(ReplicationPolicy::default().fully_covers(4, &[]));
    }
}
