//! The EvoStore client library.
//!
//! Clients are what application processes (NAS workers) link against
//! (§4.3): they interpret owner maps, consolidate tensors for writes,
//! parallelize bulk transfers across providers, and drive the LCP
//! broadcast/reduce. A client is cheap to clone per worker thread — it is
//! just the fabric handle plus the provider list.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::BytesMut;
use evostore_graph::{CompactGraph, LcpResult};
use evostore_obs::ledger::{current_costs, install_costs};
use evostore_obs::{
    current_trace, set_current_trace, FlightRecorder, MonotonicClock, ObsHub, OpCosts, OpLedger,
    SloEngine, SlowOp, SlowOpLog, TimeSource, Tracer,
};
use evostore_rpc::{BulkHandle, EndpointId, Fabric, RetryPolicy, RpcError, TraceHandle};
use evostore_tensor::{read_tensor, write_tensor, ModelId, TensorData, TensorKey, VertexId};
use parking_lot::Mutex;
use rand::Rng;
use rayon::prelude::*;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::messages::*;
use crate::owner_map::OwnerMap;
use crate::policy::DataPlanePolicy;
use crate::replication::ReplicationPolicy;

/// Client-facing errors, structured so callers can branch on failure
/// class instead of parsing strings. [`EvoError::is_transient`] mirrors
/// [`RpcError::is_transient`]: transient failures may clear on retry (a
/// provider rebooting), permanent ones will not (a decode bug).
#[derive(Debug)]
pub enum EvoError {
    /// Permanent transport or handler failure.
    Transport(RpcError),
    /// A call exhausted its deadline (and any retry budget).
    Timeout,
    /// A provider is currently unreachable.
    Unavailable {
        /// The unreachable provider.
        endpoint: EndpointId,
    },
    /// Protocol/validation failure detected client-side.
    Protocol(String),
    /// Stored data failed validation when read back.
    Corrupt {
        /// The tensor key whose payload is bad.
        key: String,
    },
    /// A collective completed on too few providers (below the client's
    /// quorum); lists the providers that did not respond.
    PartialFailure {
        /// Providers that failed their leg of the collective.
        failed: Vec<EndpointId>,
    },
    /// A delivery subscription lost events (queue overflow provider-side
    /// or a sequence gap subscriber-side) starting at this sequence
    /// number. Recover by resubscribing with replay.
    EventsLost {
        /// First sequence number known to be lost.
        from_seq: u64,
    },
}

impl EvoError {
    /// Could retrying the operation plausibly succeed?
    pub fn is_transient(&self) -> bool {
        match self {
            EvoError::Timeout | EvoError::Unavailable { .. } | EvoError::PartialFailure { .. } => {
                true
            }
            EvoError::Transport(e) => e.is_transient(),
            // Lost events never come back on retry — only a replaying
            // resubscribe recovers them.
            EvoError::Protocol(_) | EvoError::Corrupt { .. } | EvoError::EventsLost { .. } => false,
        }
    }
}

impl std::fmt::Display for EvoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvoError::Transport(e) => write!(f, "transport: {e}"),
            EvoError::Timeout => write!(f, "operation timed out"),
            EvoError::Unavailable { endpoint } => write!(f, "provider {endpoint} unavailable"),
            EvoError::Protocol(m) => write!(f, "protocol: {m}"),
            EvoError::Corrupt { key } => write!(f, "corrupt data for tensor {key}"),
            EvoError::PartialFailure { failed } => {
                write!(
                    f,
                    "quorum not met: {} providers failed: {failed:?}",
                    failed.len()
                )
            }
            EvoError::EventsLost { from_seq } => {
                write!(f, "subscription events lost from seq {from_seq}")
            }
        }
    }
}

impl std::error::Error for EvoError {}

impl From<RpcError> for EvoError {
    fn from(e: RpcError) -> Self {
        match e {
            RpcError::Timeout => EvoError::Timeout,
            RpcError::Unavailable(endpoint) => EvoError::Unavailable { endpoint },
            other => EvoError::Transport(other),
        }
    }
}

/// Client result alias.
pub type Result<T> = std::result::Result<T, EvoError>;

/// One ranked pattern-match answer list: `(model, quality)` pairs,
/// best first (see [`EvoStoreClient::find_matching`]).
pub type RankedMatches = Vec<(ModelId, f64)>;

/// Flight-recorder ring capacity per client (overridable via
/// [`EvoStoreClientBuilder::flight_capacity`]).
pub const CLIENT_FLIGHT_EVENTS: usize = 1024;

/// Default slow-op retention threshold: root spans at least this long
/// are kept verbatim with their child breakdown.
pub const DEFAULT_SLOW_OP_THRESHOLD: Duration = Duration::from_millis(100);

/// Slow-op log capacity.
const SLOW_OP_CAPACITY: usize = 64;

/// Sequence for distinct client node names (`client0`, `client1`, ...).
static CLIENT_SEQ: AtomicUsize = AtomicUsize::new(0);

/// How much telemetry a client produces per operation.
///
/// `Full` (the default) opens a root span per op, records exemplars,
/// feeds the SLO engine, and accumulates the per-op resource ledger.
/// `Minimal` times operations into the latency histograms and nothing
/// else — the obs-off side of the telemetry-overhead A/B bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryLevel {
    /// Spans + exemplars + SLO + ledger (default).
    #[default]
    Full,
    /// Latency histograms only.
    Minimal,
}

/// A query answer that may rest on fewer than all providers.
///
/// When a collective reaches quorum but some providers were unreachable,
/// the value is still correct *over the reachable subset* and
/// `unreachable` lists the providers whose catalogs it could not see.
#[derive(Debug, Clone)]
pub struct Degraded<T> {
    /// The (possibly partial) answer.
    pub value: T,
    /// Providers that did not contribute; empty means full coverage.
    pub unreachable: Vec<EndpointId>,
}

impl<T> Degraded<T> {
    /// Did any provider fail to contribute?
    pub fn is_partial(&self) -> bool {
        !self.unreachable.is_empty()
    }

    /// Unwrap the answer, discarding the coverage annotation.
    pub fn into_inner(self) -> T {
        self.value
    }
}

/// The best transfer-learning ancestor found by an LCP query.
#[derive(Debug, Clone)]
pub struct BestAncestor {
    /// The ancestor model.
    pub model: ModelId,
    /// Its quality metric.
    pub quality: f64,
    /// LCP of the queried graph against it.
    pub lcp: LcpResult,
}

/// Outcome of a store.
#[derive(Debug, Clone, Copy)]
pub struct StoreOutcome {
    /// Tensor payload bytes actually written (the incremental write size).
    pub bytes_written: u64,
    /// Number of tensors written.
    pub tensors_written: usize,
    /// Global write-order stamp assigned by the provider.
    pub timestamp: u64,
}

/// Outcome of a retirement.
#[derive(Debug, Clone, Copy)]
pub struct RetireOutcome {
    /// References dropped.
    pub refs_dropped: usize,
    /// Tensors physically reclaimed (refcount hit zero).
    pub tensors_reclaimed: usize,
    /// Decrements that failed transiently and were parked in the
    /// client's retry queue (see
    /// [`EvoStoreClient::flush_pending_decrements`]); GC remains
    /// eventually consistent.
    pub refs_parked: usize,
}

/// A fully loaded model.
#[derive(Debug, Clone)]
pub struct LoadedModel {
    /// Flattened architecture.
    pub graph: CompactGraph,
    /// Ownership of every vertex.
    pub owner_map: OwnerMap,
    /// Every parameter tensor, keyed as in the owner map.
    pub tensors: HashMap<TensorKey, TensorData>,
    /// Direct ancestor.
    pub parent: Option<ModelId>,
    /// Quality metric.
    pub quality: f64,
}

/// Configures an [`EvoStoreClient`]: providers, retry policy, per-call
/// timeout, and collective quorum. Obtained from
/// [`EvoStoreClient::builder`].
pub struct EvoStoreClientBuilder {
    fabric: Arc<Fabric>,
    providers: Vec<EndpointId>,
    retry: RetryPolicy,
    min_quorum: Option<usize>,
    replication: ReplicationPolicy,
    obs: Option<Arc<ObsHub>>,
    slow_op_threshold: Duration,
    flight_capacity: usize,
    force_copy_data_plane: bool,
    telemetry_level: TelemetryLevel,
}

impl EvoStoreClientBuilder {
    /// The providers this client talks to (required, non-empty).
    pub fn providers(mut self, providers: Vec<EndpointId>) -> Self {
        self.providers = providers;
        self
    }

    /// Replace the whole retry policy (attempts, backoff, deadline).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Per-attempt deadline for every call this client issues.
    pub fn call_timeout(mut self, timeout: Duration) -> Self {
        self.retry.call_timeout = timeout;
        self
    }

    /// Total attempts per call (1 = no retries).
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.retry.max_attempts = attempts.max(1);
        self
    }

    /// Minimum providers that must answer a broadcast for the query to
    /// succeed (possibly degraded). Defaults to *all* providers —
    /// i.e. any unreachable provider fails the collective. Clamped to
    /// `1..=providers`.
    pub fn min_quorum(mut self, quorum: usize) -> Self {
        self.min_quorum = Some(quorum);
        self
    }

    /// Keep `factor` replicas of every model (successor-chain placement,
    /// [`ReplicationPolicy`]). Must match the deployment's policy —
    /// [`crate::deployment::Deployment::client_builder`] pre-wires it.
    pub fn replication_factor(mut self, factor: usize) -> Self {
        self.replication = ReplicationPolicy::new(factor);
        self
    }

    /// Replace the whole replica placement policy.
    pub fn replication(mut self, policy: ReplicationPolicy) -> Self {
        self.replication = policy;
        self
    }

    /// Attach the client to a deployment observability hub: its spans
    /// stamp time from the hub clock (the virtual clock in simulated
    /// runs), its flight recorder joins the hub's postmortem dump, and
    /// its telemetry registers as a metrics source.
    /// [`crate::deployment::Deployment::client_builder`] pre-wires this.
    pub fn obs_hub(mut self, hub: Arc<ObsHub>) -> Self {
        self.obs = Some(hub);
        self
    }

    /// Root spans at least this long are retained verbatim in the
    /// client's slow-op log, with their child breakdown.
    pub fn slow_op_threshold(mut self, threshold: Duration) -> Self {
        self.slow_op_threshold = threshold;
        self
    }

    /// Flight-recorder ring capacity for this client.
    pub fn flight_capacity(mut self, cap: usize) -> Self {
        self.flight_capacity = cap;
        self
    }

    /// How much per-op telemetry to produce ([`TelemetryLevel::Full`]
    /// by default). [`TelemetryLevel::Minimal`] skips spans, exemplars,
    /// SLO accounting, and the resource ledger — the measurement lever
    /// for the telemetry-overhead A/B bench.
    pub fn telemetry_level(mut self, level: TelemetryLevel) -> Self {
        self.telemetry_level = level;
        self
    }

    /// Bulk-transfer policy: zero-copy vectored regions (the default)
    /// or forced contiguous consolidation (the A/B measurement lever).
    /// Must match the provider side's policy; pre-wired by
    /// [`crate::deployment::Deployment::client_builder`].
    pub fn data_plane(mut self, policy: DataPlanePolicy) -> Self {
        self.force_copy_data_plane = policy.is_forced_copy();
        self
    }

    /// Consolidate store payloads into one contiguous buffer before
    /// exposure instead of exposing the per-tensor records as a
    /// vectored region.
    #[deprecated(note = "use data_plane(DataPlanePolicy::ForcedCopy) instead")]
    pub fn force_copy_data_plane(mut self, force: bool) -> Self {
        self.force_copy_data_plane = force;
        self
    }

    /// Build the client. Panics when no providers were configured.
    pub fn build(self) -> EvoStoreClient {
        assert!(!self.providers.is_empty(), "deployment has no providers");
        let n = self.providers.len();
        let node = format!("client{}", CLIENT_SEQ.fetch_add(1, Ordering::Relaxed));
        let recorder = match &self.obs {
            Some(hub) => hub.new_recorder(&node, self.flight_capacity),
            None => {
                let wall: Arc<dyn TimeSource> = Arc::new(MonotonicClock::default());
                Arc::new(FlightRecorder::new(&node, self.flight_capacity, wall))
            }
        };
        let clock: Arc<dyn TimeSource> = match &self.obs {
            Some(hub) => Arc::clone(hub.clock()),
            None => Arc::new(MonotonicClock::default()),
        };
        let slow = Arc::new(SlowOpLog::new(
            self.slow_op_threshold.as_micros() as u64,
            SLOW_OP_CAPACITY,
        ));
        let tracer = Arc::new(Tracer::new(&node, clock, recorder).with_slow_log(Arc::clone(&slow)));
        let telemetry = Arc::new(crate::telemetry::ClientTelemetry::new());
        let ledger = Arc::new(OpLedger::new());
        let slo = self.obs.as_ref().map(|hub| Arc::clone(hub.slo()));
        if let Some(hub) = &self.obs {
            hub.attach_slow_log(&node, Arc::clone(&slow));
            let t = Arc::clone(&telemetry);
            let l = Arc::clone(&ledger);
            let metric_node = node.clone();
            hub.registry().register(move || {
                let mut out = t.metrics(&metric_node);
                out.extend(l.metrics(&metric_node));
                out
            });
        }
        EvoStoreClient {
            fabric: self.fabric,
            providers: Arc::new(self.providers),
            retry: self.retry,
            min_quorum: self.min_quorum.unwrap_or(n).clamp(1, n),
            replication: self.replication,
            telemetry,
            tracer,
            slow_ops: slow,
            ledger,
            slo,
            telemetry_level: self.telemetry_level,
            pending_decrements: Arc::new(Mutex::new(Vec::new())),
            force_copy: self.force_copy_data_plane,
        }
    }
}

/// An EvoStore client.
#[derive(Clone)]
pub struct EvoStoreClient {
    fabric: Arc<Fabric>,
    providers: Arc<Vec<EndpointId>>,
    retry: RetryPolicy,
    min_quorum: usize,
    replication: ReplicationPolicy,
    telemetry: Arc<crate::telemetry::ClientTelemetry>,
    /// Span factory: every top-level operation opens a root span here,
    /// and each RPC attempt files a child under it.
    tracer: Arc<Tracer>,
    /// Root spans that exceeded the slow threshold, kept with their
    /// child breakdown.
    slow_ops: Arc<SlowOpLog>,
    /// Per-op-class resource attribution (bytes, chunks, retries,
    /// failovers, queue wait), folded at the end of every op.
    ledger: Arc<OpLedger>,
    /// The deployment's SLO engine, when attached to a hub.
    slo: Option<Arc<SloEngine>>,
    /// How much telemetry each op produces.
    telemetry_level: TelemetryLevel,
    /// Refcount decrements that failed transiently, awaiting re-issue
    /// (shared across clones so any handle can flush them).
    pending_decrements: Arc<Mutex<Vec<(EndpointId, RefsRequest)>>>,
    /// Consolidate store payloads before exposure instead of exposing
    /// them as a vectored region (forced-copy A/B lever).
    force_copy: bool,
}

impl EvoStoreClient {
    /// Start configuring a client for `fabric`. The default policy is 3
    /// attempts with millisecond-scale backoff, a 30 s per-attempt
    /// deadline, and full quorum (all providers must answer queries).
    pub fn builder(fabric: Arc<Fabric>) -> EvoStoreClientBuilder {
        EvoStoreClientBuilder {
            fabric,
            providers: Vec::new(),
            retry: RetryPolicy::default().with_timeout(Duration::from_secs(30)),
            min_quorum: None,
            replication: ReplicationPolicy::default(),
            obs: None,
            slow_op_threshold: DEFAULT_SLOW_OP_THRESHOLD,
            flight_capacity: CLIENT_FLIGHT_EVENTS,
            force_copy_data_plane: false,
            telemetry_level: TelemetryLevel::Full,
        }
    }

    /// Client for a deployment of the given providers.
    #[deprecated(note = "use EvoStoreClient::builder(fabric).providers(...).build()")]
    pub fn new(fabric: Arc<Fabric>, providers: Vec<EndpointId>) -> EvoStoreClient {
        EvoStoreClient::builder(fabric).providers(providers).build()
    }

    /// Operation latency telemetry (shared across clones of this client).
    pub fn telemetry(&self) -> &crate::telemetry::ClientTelemetry {
        &self.telemetry
    }

    /// Per-op-class resource attribution rolled up from finished ops.
    pub fn ledger(&self) -> &Arc<OpLedger> {
        &self.ledger
    }

    /// The SLO engine this client reports into (present when built
    /// against an [`ObsHub`]).
    pub fn slo(&self) -> Option<&Arc<SloEngine>> {
        self.slo.as_ref()
    }

    /// The client's span factory (shared across clones).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The client's flight-recorder ring.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        self.tracer.recorder()
    }

    /// Root spans that exceeded the slow threshold, with their child
    /// breakdown, oldest first.
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        self.slow_ops.entries()
    }

    /// The retry policy applied to every call.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The fabric this client runs on (watchers attach their own
    /// endpoints here).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// The deployment's provider endpoints, in provider-index order.
    pub fn provider_endpoints(&self) -> &[EndpointId] {
        &self.providers
    }

    /// Providers that must answer for a collective to succeed.
    pub fn min_quorum(&self) -> usize {
        self.min_quorum
    }

    /// Number of providers.
    pub fn num_providers(&self) -> usize {
        self.providers.len()
    }

    /// The replica placement policy in effect.
    pub fn replication(&self) -> ReplicationPolicy {
        self.replication
    }

    /// The replica chain hosting `model`'s metadata and self-owned
    /// tensors, primary first (successor chain over the static hash
    /// ring).
    fn replicas_of(&self, model: ModelId) -> Vec<EndpointId> {
        self.replication
            .replicas(model, self.providers.len())
            .into_iter()
            .map(|i| self.providers[i])
            .collect()
    }

    /// A trace handle for the ambiently active operation, if any — every
    /// RPC attempt issued under it opens a child span on this client's
    /// tracer. Top-level operations install their root span ambiently
    /// ([`set_current_trace`]) so the helpers below pick it up without
    /// signature changes.
    fn trace_handle(&self) -> Option<TraceHandle<'_>> {
        current_trace().map(|parent| TraceHandle::new(&self.tracer, parent))
    }

    /// Run `f` as a fully accounted top-level operation of `class`: open
    /// a root span named `op` and install it ambiently so every RPC
    /// issued inside files its attempt spans under it, time the op from
    /// the tracer's clock into `hist` (with the root context ambient, so
    /// the histogram bucket retains a joinable exemplar), record an SLO
    /// sample for the class, and fold a fresh cost cell into the op
    /// ledger. Under [`TelemetryLevel::Minimal`] all of that collapses
    /// to a bare histogram timing.
    fn with_root_op<T>(
        &self,
        class: &'static str,
        op: &'static str,
        hist: &crate::telemetry::LatencyHistogram,
        f: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        if self.telemetry_level == TelemetryLevel::Minimal {
            let t0 = std::time::Instant::now();
            let out = f();
            hist.record(t0.elapsed());
            return out;
        }
        let costs = OpCosts::new();
        let mut root = self.tracer.start_root(op);
        let start_us = self.tracer.now_us();
        let out = {
            let _amb = set_current_trace(Some(root.ctx()));
            let _costs = install_costs(Some(Arc::clone(&costs)));
            f()
        };
        let latency_us = self.tracer.now_us().saturating_sub(start_us);
        {
            // Re-install the root context just for the histogram record,
            // so the bucket's exemplar points at this op's span tree.
            let _amb = set_current_trace(Some(root.ctx()));
            hist.record_us(latency_us);
        }
        if let Some(slo) = &self.slo {
            slo.record(class, latency_us, out.is_ok());
        }
        self.ledger.finish_op(class, out.is_ok(), &costs);
        if let Err(e) = &out {
            root.fail(e.to_string());
        }
        root.finish();
        out
    }

    /// Typed unary call under this client's retry policy.
    fn unary<Req: Serialize, Resp: DeserializeOwned>(
        &self,
        target: EndpointId,
        method: &str,
        req: &Req,
    ) -> Result<Resp> {
        evostore_rpc::unary_traced(
            &self.fabric,
            target,
            method,
            req,
            &self.retry,
            Some(&self.telemetry.rpc),
            self.trace_handle().as_ref(),
        )
        .map_err(EvoError::from)
    }

    /// Typed unary call that walks a replica chain until one member
    /// answers, counting the failover in telemetry. Fails over on *any*
    /// error — handler errors included, because a replica that missed a
    /// write answers "not found" while its siblings hold the data.
    fn unary_failover<Req: Serialize, Resp: DeserializeOwned>(
        &self,
        targets: &[EndpointId],
        method: &str,
        req: &Req,
    ) -> Result<Resp> {
        let (served_by, resp, skipped) = evostore_rpc::unary_failover_traced(
            &self.fabric,
            targets,
            method,
            req,
            &self.retry,
            Some(&self.telemetry.rpc),
            self.trace_handle().as_ref(),
        )
        .map_err(EvoError::from)?;
        if skipped > 0 {
            self.telemetry.note_read_failover();
            let trace_id = current_trace().map(|c| c.trace_id).unwrap_or(0);
            self.tracer
                .recorder()
                .note_failover(trace_id, targets[0].0, served_by.0, method);
        }
        Ok(resp)
    }

    /// Broadcast `req` to every provider, apply quorum semantics:
    /// permanent failures abort; transient failures count against the
    /// quorum. With at least `min_quorum` replies the collective
    /// succeeds, reporting the unreachable providers alongside.
    fn quorum_broadcast<Req: Serialize, Resp: DeserializeOwned>(
        &self,
        method: &str,
        req: &Req,
    ) -> Result<(Vec<Resp>, Vec<EndpointId>)> {
        let legs = evostore_rpc::broadcast_traced(
            &self.fabric,
            &self.providers,
            method,
            req,
            &self.retry,
            Some(&self.telemetry.rpc),
            self.trace_handle().as_ref(),
        )
        .map_err(EvoError::from)?;
        let mut replies = Vec::with_capacity(legs.len());
        let mut unreachable = Vec::new();
        for (ep, reply) in legs {
            match reply {
                Ok(resp) => replies.push(resp),
                Err(e) if e.is_transient() => unreachable.push(ep),
                Err(e) => return Err(e.into()),
            }
        }
        // Replicated coverage: when every model still has at least one
        // reachable replica, the reachable catalogs jointly cover the
        // full deployment — the answer is complete, not degraded, and
        // quorum does not apply.
        if !unreachable.is_empty() {
            let down: Vec<usize> = unreachable
                .iter()
                .filter_map(|ep| self.providers.iter().position(|p| p == ep))
                .collect();
            if self.replication.fully_covers(self.providers.len(), &down) {
                unreachable.clear();
            }
        }
        if replies.len() < self.min_quorum && !unreachable.is_empty() {
            return Err(EvoError::PartialFailure {
                failed: unreachable,
            });
        }
        if !unreachable.is_empty() {
            self.telemetry.note_degraded_query();
            evostore_obs::ledger::add_degraded_legs(unreachable.len() as u64);
            let trace_id = current_trace().map(|c| c.trace_id).unwrap_or(0);
            self.tracer.recorder().note_degraded(
                trace_id,
                method,
                unreachable.iter().map(|ep| ep.0).collect(),
            );
        }
        Ok((replies, unreachable))
    }

    /// Group tensor keys by *every* replica of their owning model — the
    /// write-side fan-out (pins, decrements go to each copy).
    fn group_by_replicas(
        &self,
        keys: impl IntoIterator<Item = TensorKey>,
    ) -> HashMap<EndpointId, Vec<TensorKey>> {
        let n = self.providers.len();
        let mut groups: HashMap<EndpointId, Vec<TensorKey>> = HashMap::new();
        for key in keys {
            for idx in self.replication.replicas(key.owner, n) {
                groups.entry(self.providers[idx]).or_default().push(key);
            }
        }
        groups
    }

    // ---- store paths -----------------------------------------------------

    /// Store a model given its owner map and the tensors it owns itself.
    ///
    /// Protocol (§4.1): (1) pin every inherited tensor by incrementing its
    /// reference count on *every replica* hosting a copy — in parallel;
    /// (2) push the consolidated new tensors plus metadata to the model's
    /// replica chain (primary assigns the write stamp, mirrors receive
    /// it). If the store fails after pinning, the pins that applied are
    /// rolled back.
    pub fn store_model(
        &self,
        graph: CompactGraph,
        owner_map: OwnerMap,
        parent: Option<ModelId>,
        quality: f64,
        new_tensors: &HashMap<TensorKey, TensorData>,
    ) -> Result<StoreOutcome> {
        self.with_root_op("store", "store_model", &self.telemetry.store, move || {
            self.store_model_inner(graph, owner_map, parent, quality, new_tensors)
        })
    }

    fn store_model_inner(
        &self,
        graph: CompactGraph,
        owner_map: OwnerMap,
        parent: Option<ModelId>,
        quality: f64,
        new_tensors: &HashMap<TensorKey, TensorData>,
    ) -> Result<StoreOutcome> {
        // 1. Pin inherited tensors on every replica. Pins are strict —
        // all-or-fail — because a replica that misses a pin would
        // reclaim a tensor the new model still references.
        let inherited: Vec<TensorKey> = owner_map
            .inherited()
            .flat_map(|(_, o)| o.tensor_keys().collect::<Vec<_>>())
            .collect();
        let pin_reqs: Vec<(EndpointId, RefsRequest)> = self
            .group_by_replicas(inherited.iter().copied())
            .into_iter()
            .map(|(ep, keys)| (ep, RefsRequest::new(keys)))
            .collect();
        let mut pinned: Vec<(EndpointId, Vec<TensorKey>)> = Vec::new();
        if !pin_reqs.is_empty() {
            let results = evostore_rpc::fan_out_traced::<RefsRequest, RefsReply>(
                &self.fabric,
                &pin_reqs,
                methods::INCR_REFS,
                &self.retry,
                Some(&self.telemetry.rpc),
                self.trace_handle().as_ref(),
            );
            let mut first_err: Option<EvoError> = None;
            for ((ep, req), (_, result)) in pin_reqs.iter().zip(results) {
                match result {
                    Ok(_) => pinned.push((*ep, req.keys.clone())),
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e.into());
                        }
                    }
                }
            }
            // Propagate the pin failure as-is (a transient error means
            // the whole store is retryable by the caller), rolling back
            // only the legs that actually applied.
            if let Some(e) = first_err {
                self.unpin(&pinned);
                return Err(e);
            }
        }

        // 2. Consolidate and push.
        let result = self.push_store(graph, owner_map, parent, quality, new_tensors);

        // 3. Roll back pins on failure.
        if result.is_err() {
            self.unpin(&pinned);
        }
        result
    }

    /// Best-effort rollback of pin legs that succeeded before a store
    /// aborted.
    fn unpin(&self, pinned: &[(EndpointId, Vec<TensorKey>)]) {
        if pinned.is_empty() {
            return;
        }
        let reqs: Vec<(EndpointId, RefsRequest)> = pinned
            .iter()
            .map(|(ep, keys)| (*ep, RefsRequest::new(keys.clone())))
            .collect();
        let _ = evostore_rpc::fan_out_traced::<RefsRequest, RefsReply>(
            &self.fabric,
            &reqs,
            methods::DECR_REFS,
            &self.retry,
            Some(&self.telemetry.rpc),
            self.trace_handle().as_ref(),
        );
    }

    fn push_store(
        &self,
        graph: CompactGraph,
        owner_map: OwnerMap,
        parent: Option<ModelId>,
        quality: f64,
        new_tensors: &HashMap<TensorKey, TensorData>,
    ) -> Result<StoreOutcome> {
        let model = owner_map.model;
        // Deterministic order for reproducible layouts.
        let mut keys: Vec<&TensorKey> = new_tensors.keys().collect();
        keys.sort();
        // Serialization + content hashing runs across the pool; only
        // the offset assignment stays serial. The serialized records
        // are then exposed directly as a vectored bulk region — no
        // consolidation memcpy — with manifest offsets addressing their
        // logical concatenation. The forced-copy lever restores the old
        // contiguous consolidation for A/B measurement.
        let records: Vec<bytes::Bytes> = keys
            .par_iter()
            .map(|key| write_tensor(&new_tensors[*key]))
            .collect();
        let mut manifest = Vec::with_capacity(new_tensors.len());
        let mut offset = 0u64;
        for (key, record) in keys.into_iter().zip(&records) {
            manifest.push(ManifestEntry {
                key: *key,
                offset,
                len: record.len() as u64,
            });
            offset += record.len() as u64;
        }
        let tensors_written = manifest.len();
        evostore_obs::ledger::add_chunks_touched(tensors_written as u64);
        evostore_obs::ledger::add_bytes_out(offset);
        let bulk = if self.force_copy {
            let mut buf = BytesMut::with_capacity(offset as usize);
            for record in &records {
                buf.extend_from_slice(record);
            }
            self.fabric.bulk_expose(buf.freeze())
        } else {
            self.telemetry
                .note_bulk_segments_exposed(records.len() as u64);
            self.fabric.bulk_expose_vec(records)
        };

        let req = StoreModelRequest {
            model,
            graph,
            owner_map,
            parent,
            quality,
            manifest,
            bulk: bulk.0,
            timestamp: None,
        };
        // First leg: walk the chain until one replica accepts and
        // assigns the write stamp. Remaining members then mirror the
        // stamped record; a mirror leg that fails transiently leaves the
        // model under-replicated (recorded in telemetry, healed by
        // [`crate::deployment::Deployment::repair`]) rather than failing
        // the store. The bulk region stays exposed until every leg has
        // settled — mirrors read it too.
        let chain = self.replicas_of(model);
        let outcome = (|| -> Result<StoreOutcome> {
            let (served_by, reply, skipped) =
                evostore_rpc::unary_failover_traced::<_, StoreModelReply>(
                    &self.fabric,
                    &chain,
                    methods::STORE,
                    &req,
                    &self.retry,
                    Some(&self.telemetry.rpc),
                    self.trace_handle().as_ref(),
                )
                .map_err(EvoError::from)?;
            if skipped > 0 {
                let trace_id = current_trace().map(|c| c.trace_id).unwrap_or(0);
                self.tracer.recorder().note_failover(
                    trace_id,
                    chain[0].0,
                    served_by.0,
                    methods::STORE,
                );
            }
            let mirrors: Vec<(EndpointId, StoreModelRequest)> = chain
                .iter()
                .filter(|&&ep| ep != served_by)
                .map(|&ep| {
                    (
                        ep,
                        StoreModelRequest {
                            timestamp: Some(reply.timestamp),
                            ..req.clone()
                        },
                    )
                })
                .collect();
            if !mirrors.is_empty() {
                let results = evostore_rpc::fan_out_traced::<StoreModelRequest, StoreModelReply>(
                    &self.fabric,
                    &mirrors,
                    methods::STORE,
                    &self.retry,
                    Some(&self.telemetry.rpc),
                    self.trace_handle().as_ref(),
                );
                let mut debt = 0u64;
                let mut permanent: Option<EvoError> = None;
                for (_, result) in results {
                    match result {
                        Ok(_) => {}
                        Err(e) if e.is_transient() => debt += 1,
                        Err(e) => {
                            if permanent.is_none() {
                                permanent = Some(e.into());
                            }
                        }
                    }
                }
                if let Some(e) = permanent {
                    return Err(e);
                }
                if debt > 0 {
                    self.telemetry.note_under_replicated_stores(debt);
                }
            }
            Ok(StoreOutcome {
                bytes_written: reply.bytes_stored,
                tensors_written,
                timestamp: reply.timestamp,
            })
        })();
        self.fabric.bulk_release(bulk);
        outcome
    }

    /// Store a from-scratch model with randomly initialized parameters.
    pub fn store_fresh<R: Rng + ?Sized>(
        &self,
        model: ModelId,
        graph: &CompactGraph,
        quality: f64,
        rng: &mut R,
    ) -> Result<StoreOutcome> {
        let owner_map = OwnerMap::fresh(model, graph);
        let tensors = random_tensors(model, graph, rng);
        self.store_model(graph.clone(), owner_map, None, quality, &tensors)
    }

    /// Store a model derived from `ancestor` via the given LCP: inherits
    /// the prefix, owns (and uploads) everything else.
    ///
    /// `trained_tensors` must contain one tensor per self-owned key (the
    /// layers outside the frozen prefix).
    #[allow(clippy::too_many_arguments)]
    pub fn store_derived(
        &self,
        model: ModelId,
        graph: &CompactGraph,
        lcp: &LcpResult,
        ancestor: ModelId,
        ancestor_map: &OwnerMap,
        quality: f64,
        trained_tensors: &HashMap<TensorKey, TensorData>,
    ) -> Result<StoreOutcome> {
        let owner_map = OwnerMap::derive(model, graph, lcp, ancestor_map);
        self.store_model(
            graph.clone(),
            owner_map,
            Some(ancestor),
            quality,
            trained_tensors,
        )
    }

    // ---- queries ---------------------------------------------------------

    /// Broadcast an LCP query to every provider and reduce to the global
    /// best match (longest prefix; quality, then lower model id, break
    /// ties). The inner value is `None` when no stored model shares even
    /// the input layer.
    ///
    /// Degraded mode: providers that fail transiently (down, timing out)
    /// don't abort the query — as long as [`EvoStoreClient::min_quorum`]
    /// providers answer, the best match *over the reachable catalogs* is
    /// returned, with [`Degraded::unreachable`] naming the providers
    /// whose models were not considered. Below quorum the query fails
    /// with [`EvoError::PartialFailure`].
    pub fn query_best_ancestor(
        &self,
        graph: &CompactGraph,
    ) -> Result<Degraded<Option<BestAncestor>>> {
        let req = LcpQueryRequest {
            graph: graph.clone(),
        };
        self.with_root_op(
            "query",
            "query_best_ancestor",
            &self.telemetry.query,
            || {
                let (replies, unreachable) =
                    self.quorum_broadcast::<_, LcpQueryReply>(methods::LCP, &req)?;
                for reply in &replies {
                    self.telemetry.note_index_stats(reply.stats);
                }
                let best = replies.into_iter().filter_map(|reply| reply.best).fold(
                    None::<LcpCandidate>,
                    |acc, b| match acc {
                        None => Some(b),
                        Some(a) => Some(better_candidate(a, b)),
                    },
                );
                Ok(Degraded {
                    value: best.map(|c| BestAncestor {
                        model: c.model,
                        quality: c.quality,
                        lcp: c.lcp,
                    }),
                    unreachable,
                })
            },
        )
    }

    /// Batched [`EvoStoreClient::query_best_ancestor`]: pack every graph
    /// into one `LCP_BATCH` envelope per provider — each provider answers
    /// the whole batch against a single pinned catalog snapshot — and
    /// reduce per query across the provider replies. Returns one answer
    /// per input graph, index-aligned, with the same candidate ordering
    /// (longest prefix; quality, then lower model id, break ties) and the
    /// same degraded-mode quorum semantics as the single-query path.
    ///
    /// Dispatch, tracing, and snapshot acquisition are paid once per
    /// envelope instead of once per query — the raw-throughput path for
    /// NAS-style bursts of candidate evaluations.
    pub fn query_best_ancestors(
        &self,
        graphs: &[CompactGraph],
    ) -> Result<Degraded<Vec<Option<BestAncestor>>>> {
        if graphs.is_empty() {
            return Ok(Degraded {
                value: Vec::new(),
                unreachable: Vec::new(),
            });
        }
        let req = LcpBatchRequest {
            graphs: graphs.to_vec(),
        };
        self.with_root_op(
            "query",
            "query_best_ancestors",
            &self.telemetry.query,
            || {
                let (replies, unreachable) =
                    self.quorum_broadcast::<_, LcpBatchReply>(methods::LCP_BATCH, &req)?;
                self.telemetry.note_batch(graphs.len() as u64);
                for leg in &replies {
                    if leg.replies.len() != graphs.len() {
                        return Err(EvoError::Protocol(format!(
                            "batched LCP reply carries {} answers for {} queries",
                            leg.replies.len(),
                            graphs.len()
                        )));
                    }
                    for r in &leg.replies {
                        self.telemetry.note_index_stats(r.stats);
                    }
                }
                let value = (0..graphs.len())
                    .map(|i| {
                        replies
                            .iter()
                            .filter_map(|leg| leg.replies[i].best.clone())
                            .fold(None::<LcpCandidate>, |acc, b| match acc {
                                None => Some(b),
                                Some(a) => Some(better_candidate(a, b)),
                            })
                            .map(|c| BestAncestor {
                                model: c.model,
                                quality: c.quality,
                                lcp: c.lcp,
                            })
                    })
                    .collect();
                Ok(Degraded { value, unreachable })
            },
        )
    }

    /// Fetch model metadata, failing over along the replica chain.
    pub fn get_meta(&self, model: ModelId) -> Result<ModelMetaReply> {
        self.unary_failover(
            &self.replicas_of(model),
            methods::GET_META,
            &GetMetaRequest { model },
        )
    }

    // ---- data plane ------------------------------------------------------

    /// Fetch an arbitrary set of tensors, grouped by owning chain and
    /// pulled in parallel via one-sided bulk reads. Each group is served
    /// by its primary, failing over to the successor replicas when the
    /// primary is down, missed the write, or returned a corrupt payload.
    pub fn fetch_tensors(&self, keys: &[TensorKey]) -> Result<HashMap<TensorKey, TensorData>> {
        self.with_root_op("fetch", "fetch_tensors", &self.telemetry.fetch, || {
            let n = self.providers.len();
            let mut groups: HashMap<usize, Vec<TensorKey>> = HashMap::new();
            for key in keys {
                groups
                    .entry(key.owner.provider_for(n))
                    .or_default()
                    .push(*key);
            }
            let groups: Vec<(usize, Vec<TensorKey>)> = groups.into_iter().collect();
            // Neither the ambient context nor the ambient cost cell
            // crosses threads: capture both here and re-install them
            // inside each fetch leg.
            let parent = current_trace();
            let costs = current_costs();
            let fetched: Vec<Result<Vec<(TensorKey, TensorData)>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|(primary, keys)| {
                        let costs = costs.clone();
                        scope.spawn(move || {
                            let _amb = set_current_trace(parent);
                            let _costs = install_costs(costs);
                            self.fetch_group(*primary, keys)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fetch leg panicked"))
                    .collect()
            });
            let mut out = HashMap::with_capacity(keys.len());
            for group in fetched {
                for (key, tensor) in group? {
                    out.insert(key, tensor);
                }
            }
            Ok(out)
        })
    }

    /// Fetch one chain's keys from the first replica that can serve them.
    fn fetch_group(
        &self,
        primary: usize,
        keys: &[TensorKey],
    ) -> Result<Vec<(TensorKey, TensorData)>> {
        let chain = self.replication.chain(primary, self.providers.len());
        let req = ReadTensorsRequest {
            keys: keys.to_vec(),
            raw_records: false,
        };
        let mut last_err = None;
        for (attempt, &idx) in chain.iter().enumerate() {
            match self.fetch_from(self.providers[idx], &req) {
                Ok(tensors) => {
                    if attempt > 0 {
                        self.telemetry.note_read_failover();
                        let trace_id = current_trace().map(|c| c.trace_id).unwrap_or(0);
                        self.tracer.recorder().note_failover(
                            trace_id,
                            self.providers[chain[0]].0,
                            self.providers[idx].0,
                            methods::READ,
                        );
                    }
                    return Ok(tensors);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("replica chain is never empty"))
    }

    /// One READ + bulk pull + decode against a single provider.
    fn fetch_from(
        &self,
        target: EndpointId,
        req: &ReadTensorsRequest,
    ) -> Result<Vec<(TensorKey, TensorData)>> {
        let reply: ReadTensorsReply = self.unary(target, methods::READ, req)?;
        evostore_obs::ledger::add_chunks_touched(reply.manifest.len() as u64);
        evostore_obs::ledger::add_bytes_in(reply.manifest.iter().map(|e| e.len).sum());
        let handle = BulkHandle(reply.bulk);
        // Vectored pull: the provider exposes one segment per
        // memory-resident record, so the "pull" is a segment-list clone
        // with no payload copy; a contiguous (forced-copy) region
        // arrives as a single segment and decodes identically.
        let region = self.fabric.bulk_get_vec(handle)?;
        // Decode (and integrity-check) every manifest entry across
        // the pool; the region is released exactly once below, on
        // success and error alike.
        let decoded: Vec<Result<(TensorKey, TensorData)>> = reply
            .manifest
            .par_iter()
            .map(|entry| {
                let (off, len) = (entry.offset as usize, entry.len as usize);
                let record = region.slice(off, len).ok_or_else(|| {
                    EvoError::Protocol(format!("read manifest entry {} out of bounds", entry.key))
                })?;
                let tensor = read_tensor(record).map_err(|_| EvoError::Corrupt {
                    key: entry.key.to_string(),
                })?;
                Ok((entry.key, tensor))
            })
            .collect();
        // One-sided completion: the reader withdraws the region.
        self.fabric.bulk_release(handle);
        decoded.into_iter().collect()
    }

    /// Fetch the tensors of an LCP prefix from the ancestor (the transfer
    /// step). Returns the ancestor's metadata and the fetched tensors,
    /// keyed by their owner-map keys.
    pub fn fetch_prefix(
        &self,
        best: &BestAncestor,
    ) -> Result<(ModelMetaReply, HashMap<TensorKey, TensorData>)> {
        let meta = self.get_meta(best.model)?;
        let mut keys = Vec::new();
        for &gv in &best.lcp.prefix {
            let av = best.lcp.match_in_ancestor[gv.0 as usize].ok_or_else(|| {
                EvoError::Protocol(format!("prefix vertex {gv} has no ancestor match"))
            })?;
            // A stale LCP (computed against a different architecture than
            // the one actually stored) must surface as an error, never a
            // panic.
            if av.0 as usize >= meta.owner_map.len() {
                return Err(EvoError::Protocol(format!(
                    "LCP match {av} out of bounds for ancestor {} ({} vertices) — stale query?",
                    best.model,
                    meta.owner_map.len()
                )));
            }
            keys.extend(meta.owner_map.vertex(av).tensor_keys());
        }
        let tensors = self.fetch_tensors(&keys)?;
        Ok((meta, tensors))
    }

    /// Load a complete model: metadata plus every tensor, resolved through
    /// its single owner map (no lineage walk, §4.1).
    pub fn load_model(&self, model: ModelId) -> Result<LoadedModel> {
        let meta = self.get_meta(model)?;
        let keys = meta.owner_map.all_tensor_keys();
        let tensors = self.fetch_tensors(&keys)?;
        Ok(LoadedModel {
            graph: meta.graph,
            owner_map: meta.owner_map,
            tensors,
            parent: meta.parent,
            quality: meta.quality,
        })
    }

    /// Read a contiguous element range of one stored tensor without
    /// transferring the rest of it (fine-grain partial access). Returns a
    /// 1-D tensor holding exactly the requested elements.
    pub fn fetch_tensor_slice(
        &self,
        key: TensorKey,
        elem_offset: u64,
        elem_count: u64,
    ) -> Result<TensorData> {
        let reply: ReadRangeReply = self.unary_failover(
            &self.replicas_of(key.owner),
            methods::READ_RANGE,
            &ReadRangeRequest {
                key,
                elem_offset,
                elem_count,
            },
        )?;
        let handle = BulkHandle(reply.bulk);
        let payload = self.fabric.bulk_get(handle)?;
        self.fabric.bulk_release(handle);
        let dtype = evostore_tensor::DType::from_tag(reply.dtype_tag)
            .ok_or_else(|| EvoError::Protocol(format!("bad dtype tag {}", reply.dtype_tag)))?;
        TensorData::from_bytes(dtype, vec![elem_count as usize], payload)
            .ok_or_else(|| EvoError::Protocol("range length mismatch".into()))
    }

    /// Find every stored model whose architecture matches `pattern`
    /// (broadcast + concatenating reduce across providers). Results are
    /// `(model, quality)`, sorted by descending quality.
    ///
    /// Same degraded-mode quorum semantics as
    /// [`EvoStoreClient::query_best_ancestor`]: unreachable providers'
    /// catalogs are simply absent from the result as long as quorum is
    /// met.
    pub fn find_matching(
        &self,
        pattern: &evostore_graph::ArchPattern,
    ) -> Result<Degraded<RankedMatches>> {
        let req = PatternQueryRequest {
            pattern: pattern.clone(),
        };
        self.with_root_op("query", "find_matching", &self.telemetry.query, || {
            let (replies, unreachable) =
                self.quorum_broadcast::<_, PatternQueryReply>(methods::MATCH_PATTERN, &req)?;
            for reply in &replies {
                self.telemetry.note_index_stats(reply.stats);
            }
            // Replicas answer for the same catalogs — dedup by model
            // before ranking (keeping the best-reported quality).
            let value = rank_matches(replies.into_iter().flat_map(|r| r.matches));
            Ok(Degraded { value, unreachable })
        })
    }

    /// Batched [`EvoStoreClient::find_matching`]: every pattern in one
    /// `MATCH_PATTERN_BATCH` envelope per provider, answered against a
    /// single pinned snapshot. Returns one ranked match list per input
    /// pattern, index-aligned, with the same dedup/ranking semantics as
    /// the single-pattern path.
    pub fn find_matching_batch(
        &self,
        patterns: &[evostore_graph::ArchPattern],
    ) -> Result<Degraded<Vec<RankedMatches>>> {
        if patterns.is_empty() {
            return Ok(Degraded {
                value: Vec::new(),
                unreachable: Vec::new(),
            });
        }
        let req = PatternBatchRequest {
            patterns: patterns.to_vec(),
        };
        self.with_root_op(
            "query",
            "find_matching_batch",
            &self.telemetry.query,
            || {
                let (replies, unreachable) = self
                    .quorum_broadcast::<_, PatternBatchReply>(methods::MATCH_PATTERN_BATCH, &req)?;
                self.telemetry.note_batch(patterns.len() as u64);
                for leg in &replies {
                    if leg.replies.len() != patterns.len() {
                        return Err(EvoError::Protocol(format!(
                            "batched pattern reply carries {} answers for {} queries",
                            leg.replies.len(),
                            patterns.len()
                        )));
                    }
                    for r in &leg.replies {
                        self.telemetry.note_index_stats(r.stats);
                    }
                }
                let value = (0..patterns.len())
                    .map(|i| {
                        rank_matches(
                            replies
                                .iter()
                                .flat_map(|leg| leg.replies[i].matches.iter().copied()),
                        )
                    })
                    .collect();
                Ok(Degraded { value, unreachable })
            },
        )
    }

    /// Attach optimizer state to an already-stored model (supports
    /// resuming the original training — the paper's stated extension).
    /// Tensors are keyed by their position in `moments`.
    pub fn store_optimizer_state(
        &self,
        model: ModelId,
        moments: &[TensorData],
    ) -> Result<StoreOutcome> {
        let mut buf = BytesMut::new();
        let mut manifest = Vec::with_capacity(moments.len());
        for (i, t) in moments.iter().enumerate() {
            let record = write_tensor(t);
            manifest.push(ManifestEntry {
                // The optimizer namespace: vertex = u32::MAX sentinel.
                key: TensorKey::new(model, VertexId(u32::MAX), i as u32),
                offset: buf.len() as u64,
                len: record.len() as u64,
            });
            buf.extend_from_slice(&record);
        }
        let tensors_written = manifest.len();
        let bulk = self.fabric.bulk_expose(buf.freeze());
        let req = StoreOptimizerRequest {
            model,
            manifest,
            bulk: bulk.0,
        };
        // Every replica keeps its own optimizer copy. One success is
        // required; transient mirror failures leave the attachment
        // under-replicated (healed by repair's optimizer-aware digest
        // comparison).
        let chain = self.replicas_of(model);
        let reply: Result<StoreModelReply> = {
            let legs = evostore_rpc::fan_out_traced::<StoreOptimizerRequest, StoreModelReply>(
                &self.fabric,
                &chain
                    .iter()
                    .map(|&ep| (ep, req.clone()))
                    .collect::<Vec<_>>(),
                methods::STORE_OPTIMIZER,
                &self.retry,
                Some(&self.telemetry.rpc),
                self.trace_handle().as_ref(),
            );
            let mut reply: Option<StoreModelReply> = None;
            let mut debt = 0u64;
            let mut first_err: Option<EvoError> = None;
            for (_, result) in legs {
                match result {
                    Ok(r) => {
                        if reply.is_none() {
                            reply = Some(r);
                        }
                    }
                    // A mirror that missed the model's store errors
                    // permanently here ("model not found") — with a
                    // successful sibling leg that is under-replication,
                    // not a caller error.
                    Err(e) if e.is_transient() => debt += 1,
                    Err(e) => {
                        debt += 1;
                        if first_err.is_none() {
                            first_err = Some(e.into());
                        }
                    }
                }
            }
            match (reply, first_err) {
                (Some(r), _) => {
                    if debt > 0 {
                        self.telemetry.note_under_replicated_stores(debt);
                    }
                    Ok(r)
                }
                (None, Some(e)) => Err(e),
                (None, None) => Err(EvoError::PartialFailure {
                    failed: chain.clone(),
                }),
            }
        };
        self.fabric.bulk_release(bulk);
        let reply = reply?;
        Ok(StoreOutcome {
            bytes_written: reply.bytes_stored,
            tensors_written,
            timestamp: reply.timestamp,
        })
    }

    /// Fetch a model's optimizer state, in the order it was stored.
    /// Empty when the model has none.
    pub fn load_optimizer_state(&self, model: ModelId) -> Result<Vec<TensorData>> {
        let reply: ReadTensorsReply = self.unary_failover(
            &self.replicas_of(model),
            methods::LOAD_OPTIMIZER,
            &LoadOptimizerRequest { model },
        )?;
        let handle = BulkHandle(reply.bulk);
        let region = self.fabric.bulk_get_vec(handle)?;
        let mut entries = reply.manifest;
        entries.sort_by_key(|e| e.key.slot);
        let mut out = Vec::with_capacity(entries.len());
        for entry in entries {
            let (off, len) = (entry.offset as usize, entry.len as usize);
            let Some(record) = region.slice(off, len) else {
                self.fabric.bulk_release(handle);
                return Err(EvoError::Protocol(
                    "optimizer manifest out of bounds".into(),
                ));
            };
            let tensor = read_tensor(record)
                .map_err(|e| EvoError::Protocol(format!("optimizer tensor: {e}")))?;
            out.push(tensor);
        }
        self.fabric.bulk_release(handle);
        Ok(out)
    }

    // ---- retirement ------------------------------------------------------

    /// Retire a model: drop its metadata, then decrement the reference
    /// count of every tensor its owner map references (fanned out to the
    /// hosting providers in parallel). Tensors still referenced by
    /// descendants survive.
    ///
    /// Decrement legs that fail *transiently* (provider down, timing
    /// out) do not fail the retirement: once the metadata drop
    /// succeeded, the model is gone, so the pending decrements are
    /// parked in a client-side queue and re-issued on the next
    /// retirement or an explicit
    /// [`EvoStoreClient::flush_pending_decrements`] — GC is eventually
    /// consistent under provider failures instead of leaking pins.
    /// Retrying a timed-out leg (whose first delivery may have applied)
    /// is safe: each decrement carries a [`RefsRequest::op_id`] the
    /// provider deduplicates on, so no tensor is ever decremented twice
    /// for one retirement. A *permanently* failing leg surfaces as an
    /// error — but only after every other leg has been settled (and
    /// parked if transient).
    pub fn retire_model(&self, model: ModelId) -> Result<RetireOutcome> {
        self.with_root_op("retire", "retire_model", &self.telemetry.retire, || {
            self.retire_model_inner(model)
        })
    }

    fn retire_model_inner(&self, model: ModelId) -> Result<RetireOutcome> {
        // Opportunistically drain decrements parked by earlier failures.
        let _ = self.flush_pending_decrements();
        // Drop the record on every replica. One success suffices: a
        // replica that is down keeps a stale record, which the tombstone
        // recorded by its reachable siblings removes during repair.
        let chain = self.replicas_of(model);
        let meta_legs = evostore_rpc::fan_out_traced::<RetireMetaRequest, RetireMetaReply>(
            &self.fabric,
            &chain
                .iter()
                .map(|&ep| (ep, RetireMetaRequest { model }))
                .collect::<Vec<_>>(),
            methods::RETIRE_META,
            &self.retry,
            Some(&self.telemetry.rpc),
            self.trace_handle().as_ref(),
        );
        let mut reply: Option<RetireMetaReply> = None;
        let mut first_err: Option<EvoError> = None;
        for (_, result) in meta_legs {
            match result {
                Ok(r) => {
                    if reply.is_none() {
                        reply = Some(r);
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e.into());
                    }
                }
            }
        }
        let Some(reply) = reply else {
            return Err(first_err.expect("replica chain is never empty"));
        };
        let keys = reply.owner_map.all_tensor_keys();
        let refs_dropped = keys.len();
        // Decrement on every replica of every referenced key. Each leg
        // carries a *deterministic* op id derived from (model, record
        // timestamp, target provider): if the leg parks and repair
        // settles the counts first, the eventual re-issue hits the fence
        // the repair pass seeded and no-ops instead of double-applying.
        let groups = self.group_by_replicas(keys);
        let reqs: Vec<(EndpointId, RefsRequest)> = groups
            .into_iter()
            .map(|(ep, keys)| {
                let idx = self
                    .providers
                    .iter()
                    .position(|&p| p == ep)
                    .expect("grouped endpoint is a provider");
                (
                    ep,
                    RefsRequest::with_op_id(
                        RefsRequest::retirement_op_id(model, reply.timestamp, idx),
                        keys,
                    ),
                )
            })
            .collect();
        let results = evostore_rpc::fan_out_traced::<RefsRequest, RefsReply>(
            &self.fabric,
            &reqs,
            methods::DECR_REFS,
            &self.retry,
            Some(&self.telemetry.rpc),
            self.trace_handle().as_ref(),
        );
        let mut tensors_reclaimed = 0;
        let mut refs_parked = 0;
        // Every leg is settled before the outcome is decided: returning
        // early on a permanent failure would discard later transient legs
        // without parking them, pinning those refcounts forever.
        let mut permanent: Option<EvoError> = None;
        for ((ep, req), (_, result)) in reqs.into_iter().zip(results) {
            match result {
                Ok(r) => tensors_reclaimed += r.reclaimed,
                Err(e) if e.is_transient() => {
                    refs_parked += req.keys.len();
                    self.pending_decrements.lock().push((ep, req));
                }
                Err(e) => {
                    if permanent.is_none() {
                        permanent = Some(e.into());
                    }
                }
            }
        }
        if refs_parked > 0 {
            self.telemetry.note_parked_decrements(refs_parked as u64);
        }
        if let Some(e) = permanent {
            return Err(e);
        }
        Ok(RetireOutcome {
            refs_dropped,
            tensors_reclaimed,
            refs_parked,
        })
    }

    /// Re-issue every parked refcount decrement. Legs that fail
    /// transiently again are re-parked; permanently failing legs are
    /// dropped (they can never succeed). Returns the number of tensor
    /// references successfully decremented.
    pub fn flush_pending_decrements(&self) -> Result<usize> {
        let pending: Vec<(EndpointId, RefsRequest)> =
            std::mem::take(&mut *self.pending_decrements.lock());
        if pending.is_empty() {
            return Ok(0);
        }
        let results = evostore_rpc::fan_out_traced::<RefsRequest, RefsReply>(
            &self.fabric,
            &pending,
            methods::DECR_REFS,
            &self.retry,
            Some(&self.telemetry.rpc),
            self.trace_handle().as_ref(),
        );
        let mut flushed = 0;
        let mut requeue = Vec::new();
        for ((ep, req), (_, result)) in pending.into_iter().zip(results) {
            match result {
                Ok(_) => flushed += req.keys.len(),
                Err(e) if e.is_transient() => requeue.push((ep, req)),
                Err(_) => {}
            }
        }
        self.pending_decrements.lock().extend(requeue);
        Ok(flushed)
    }

    /// Tensor references currently parked awaiting a successful
    /// decrement.
    pub fn pending_decrement_count(&self) -> usize {
        self.pending_decrements
            .lock()
            .iter()
            .map(|(_, r)| r.keys.len())
            .sum()
    }

    // ---- provenance --------------------------------------------------------

    /// The transfer-learning chain of `model`, oldest last:
    /// `[model, parent, grandparent, ...]`.
    pub fn lineage(&self, model: ModelId) -> Result<Vec<ModelId>> {
        let mut chain = vec![model];
        let mut cur = model;
        loop {
            let meta = self.get_meta(cur)?;
            match meta.parent {
                Some(p) => {
                    if chain.contains(&p) {
                        return Err(EvoError::Protocol(format!("lineage cycle at {p}")));
                    }
                    chain.push(p);
                    cur = p;
                }
                None => return Ok(chain),
            }
        }
    }

    /// Most recent common ancestor of two models (by lineage walk).
    /// Returns `None` when the lineages are disjoint.
    pub fn most_recent_common_ancestor(&self, a: ModelId, b: ModelId) -> Result<Option<ModelId>> {
        let la = self.lineage(a)?;
        let lb: std::collections::HashSet<ModelId> = self.lineage(b)?.into_iter().collect();
        Ok(la.into_iter().find(|m| lb.contains(m)))
    }

    /// Which ancestors contributed tensors to `model`, with vertex counts
    /// and global write-order stamps — a pure owner-map read, no lineage
    /// walk (§4.1, "Owner Maps as a Foundation for Provenance").
    pub fn contributors(&self, model: ModelId) -> Result<Vec<(ModelId, usize, u64)>> {
        let meta = self.get_meta(model)?;
        let mut out = Vec::new();
        for (owner, count) in meta.owner_map.contribution_counts() {
            let ts = if owner == model {
                meta.timestamp
            } else {
                self.get_meta(owner)?.timestamp
            };
            out.push((owner, count, ts));
        }
        // Chronological order of contribution (the transfer chain order).
        out.sort_by_key(|&(_, _, ts)| ts);
        Ok(out)
    }

    // ---- stats -------------------------------------------------------------

    /// Aggregate statistics across all providers. Unlike the query
    /// collectives, stats are only meaningful over the *complete*
    /// deployment, so any failed provider fails the call
    /// ([`EvoError::PartialFailure`] when transient).
    pub fn stats(&self) -> Result<ProviderStats> {
        let legs = evostore_rpc::broadcast_traced::<_, ProviderStats>(
            &self.fabric,
            &self.providers,
            methods::STATS,
            &StatsRequest {},
            &self.retry,
            Some(&self.telemetry.rpc),
            self.trace_handle().as_ref(),
        )
        .map_err(EvoError::from)?;
        let mut acc = ProviderStats::default();
        let mut failed = Vec::new();
        let mut permanent: Option<EvoError> = None;
        for (ep, reply) in legs {
            match reply {
                Ok(s) => acc = acc.merge(s),
                Err(e) if e.is_transient() => failed.push(ep),
                Err(e) => {
                    if permanent.is_none() {
                        permanent = Some(e.into());
                    }
                }
            }
        }
        if let Some(e) = permanent {
            return Err(e);
        }
        if !failed.is_empty() {
            return Err(EvoError::PartialFailure { failed });
        }
        Ok(acc)
    }
}

impl Drop for EvoStoreClient {
    /// Last-handle cleanup: when the final clone of a client goes away
    /// with refcount decrements still parked, flush them best-effort so
    /// a short-lived client doesn't leak pins it could still settle.
    /// Failures are ignored — the decrements are idempotent and repair
    /// recomputes authoritative counts regardless.
    fn drop(&mut self) {
        if Arc::strong_count(&self.pending_decrements) == 1
            && !self.pending_decrements.lock().is_empty()
        {
            let _ = self.flush_pending_decrements();
        }
    }
}

/// The better of two provider-reported LCP candidates: longest prefix;
/// higher quality, then lower model id, break ties — the one global
/// ordering shared by the single-query and batched reduce steps.
fn better_candidate(a: LcpCandidate, b: LcpCandidate) -> LcpCandidate {
    let better = b.lcp.len() > a.lcp.len()
        || (b.lcp.len() == a.lcp.len()
            && (b.quality > a.quality || (b.quality == a.quality && b.model < a.model)));
    if better {
        b
    } else {
        a
    }
}

/// Dedup pattern matches by model (replicas answer for the same
/// catalogs, keeping the best-reported quality) and rank by descending
/// quality, ascending model id.
fn rank_matches(matches: impl IntoIterator<Item = (ModelId, f64)>) -> Vec<(ModelId, f64)> {
    let mut best: HashMap<ModelId, f64> = HashMap::new();
    for (model, quality) in matches {
        let entry = best.entry(model).or_insert(quality);
        if quality > *entry {
            *entry = quality;
        }
    }
    let mut acc: Vec<(ModelId, f64)> = best.into_iter().collect();
    acc.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    acc
}

/// Materialize random parameters for every vertex of `graph`, keyed as a
/// fresh model owned by `model`.
pub fn random_tensors<R: Rng + ?Sized>(
    model: ModelId,
    graph: &CompactGraph,
    rng: &mut R,
) -> HashMap<TensorKey, TensorData> {
    let mut out = HashMap::new();
    for v in graph.vertex_ids() {
        for spec in graph.param_specs(v) {
            out.insert(
                TensorKey::new(model, VertexId(v.0), spec.slot),
                spec.random(rng),
            );
        }
    }
    out
}
