//! EvoStore: a distributed repository for evolving deep-learning models.
//!
//! Rust reproduction of *EvoStore: Towards Scalable Storage of Evolving
//! Learning Models* (HPDC'24). The repository stores models derived from
//! each other through transfer learning at leaf-layer tensor granularity:
//!
//! * **incremental storage** — a derived model uploads only the tensors it
//!   changed; frozen layers are shared with their owners
//!   ([`owner_map::OwnerMap`]);
//! * **fine-grained distributed I/O** — tensors are consolidated per write
//!   and placed by static hashing of the model id, moved through one-sided
//!   bulk transfers ([`provider`], [`client`]);
//! * **scalable LCP queries** — best-ancestor search runs provider-side as
//!   a broadcast + reduce over local parallel scans;
//! * **distributed garbage collection** — per-tensor reference counts let
//!   models retire without destroying tensors their descendants inherit;
//! * **provenance** — owner maps + global write ordering answer
//!   contributor, lineage and common-ancestor queries.
//!
//! Start with [`deployment::Deployment`] to spin up providers, then use
//! [`client::EvoStoreClient`].

pub mod cache;
pub mod client;
pub mod delivery;
pub mod deployment;
pub mod messages;
pub mod owner_map;
pub mod policy;
pub mod provider;
pub mod replication;
pub mod repository;
pub mod telemetry;
pub mod watch;

pub use cache::{CachingClient, TensorCache};
pub use client::{
    random_tensors, BestAncestor, Degraded, EvoError, EvoStoreClient, EvoStoreClientBuilder,
    LoadedModel, RetireOutcome, StoreOutcome, TelemetryLevel,
};
pub use delivery::{CatalogChange, DeliveryHub};
pub use deployment::{BackendKind, Deployment, DeploymentConfig, FABRIC_FLIGHT_EVENTS};
pub use messages::ProviderStats;
pub use owner_map::{OwnerMap, VertexOwner};
pub use policy::{ChunkingPolicy, DataPlanePolicy, DeltaPolicy, StorePolicy};
pub use provider::{CatalogSnapshot, ModelRecord, Provider, ProviderState};
pub use replication::ReplicationPolicy;
pub use repository::{
    trained_tensors, FetchOutcome, ModelRepository, RetireOutcomeStats, StoreOutcomeStats,
    TransferSource,
};
pub use telemetry::{ClientTelemetry, LatencyHistogram};
pub use watch::{AppliedEvent, ModelWatcher, WatchConfig, WatchStats};
