//! Owner maps — the paper's central metadata structure (§4.1).
//!
//! An owner map assigns each leaf-layer vertex of a model to its *owner*:
//! the most recent ancestor that modified the vertex's tensors. A model
//! obtained from scratch owns everything; a derived model inherits its
//! ancestor's owner map over the transferred (frozen) prefix and owns the
//! rest. Reconstructing a model therefore consults exactly *one* owner
//! map, regardless of how long the transfer-learning chain is — the
//! property that makes reads O(1) in lineage depth.
//!
//! Each entry is ~128 bits per leaf layer (owner model id + owner-side
//! vertex id + slot count), matching the paper's metadata budget.

use evostore_graph::{CompactGraph, LcpResult};
use evostore_tensor::{ModelId, TensorKey, VertexId};
use serde::{Deserialize, Serialize};

/// Ownership record of one leaf-layer vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexOwner {
    /// The most recent ancestor that modified this vertex's tensors.
    pub owner: ModelId,
    /// The vertex id *inside the owner's* compact graph (tensor keys are
    /// expressed in the owner's numbering).
    pub owner_vertex: VertexId,
    /// Number of parameter tensors (slots) of this vertex. Zero for
    /// parameter-free layers.
    pub slots: u32,
}

impl VertexOwner {
    /// Keys of every tensor of this vertex.
    pub fn tensor_keys(&self) -> impl Iterator<Item = TensorKey> + '_ {
        (0..self.slots).map(move |s| TensorKey::new(self.owner, self.owner_vertex, s))
    }
}

/// The owner map of one stored model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OwnerMap {
    /// The model this map describes.
    pub model: ModelId,
    /// One record per vertex of the model's compact graph, indexed by
    /// [`VertexId`].
    pub vertices: Vec<VertexOwner>,
}

impl OwnerMap {
    /// Owner map of a from-scratch model: it owns every vertex.
    pub fn fresh(model: ModelId, graph: &CompactGraph) -> OwnerMap {
        let vertices = graph
            .vertex_ids()
            .map(|v| VertexOwner {
                owner: model,
                owner_vertex: v,
                slots: graph.param_specs(v).len() as u32,
            })
            .collect();
        OwnerMap { model, vertices }
    }

    /// Owner map of a derived model: vertices inside the transferred
    /// prefix inherit the ancestor's ownership records (the ancestor's map
    /// already points at the *most recent* owner of each tensor, so no
    /// chain walk is ever needed); the rest are owned by `child`.
    ///
    /// `lcp` must be the LCP of `child_graph` against the ancestor whose
    /// map is given.
    pub fn derive(
        child: ModelId,
        child_graph: &CompactGraph,
        lcp: &LcpResult,
        ancestor_map: &OwnerMap,
    ) -> OwnerMap {
        assert_eq!(
            lcp.match_in_ancestor.len(),
            child_graph.len(),
            "LCP result does not belong to this child graph"
        );
        let vertices = child_graph
            .vertex_ids()
            .map(|v| match lcp.match_in_ancestor[v.0 as usize] {
                Some(av) => {
                    let inherited = ancestor_map.vertices[av.0 as usize];
                    debug_assert_eq!(
                        inherited.slots,
                        child_graph.param_specs(v).len() as u32,
                        "matched vertices must have identical slot counts"
                    );
                    inherited
                }
                None => VertexOwner {
                    owner: child,
                    owner_vertex: v,
                    slots: child_graph.param_specs(v).len() as u32,
                },
            })
            .collect();
        OwnerMap {
            model: child,
            vertices,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the map covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Ownership record of one vertex.
    pub fn vertex(&self, v: VertexId) -> &VertexOwner {
        &self.vertices[v.0 as usize]
    }

    /// Vertices owned by this model itself (the "new/modified" set whose
    /// tensors the store request must carry).
    pub fn self_owned(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .filter(move |(_, o)| o.owner == self.model)
            .map(|(i, _)| VertexId(i as u32))
    }

    /// Vertices inherited from ancestors.
    pub fn inherited(&self) -> impl Iterator<Item = (VertexId, &VertexOwner)> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .filter(move |(_, o)| o.owner != self.model)
            .map(|(i, o)| (VertexId(i as u32), o))
    }

    /// Every tensor key the model references (its full parameter set).
    pub fn all_tensor_keys(&self) -> Vec<TensorKey> {
        self.vertices
            .iter()
            .flat_map(|o| o.tensor_keys().collect::<Vec<_>>())
            .collect()
    }

    /// Distinct owners contributing to this model, i.e. the provenance
    /// set ("what ancestors contributed to the composition of a given DL
    /// model", §4.1).
    pub fn distinct_owners(&self) -> Vec<ModelId> {
        let mut owners: Vec<ModelId> = self.vertices.iter().map(|o| o.owner).collect();
        owners.sort_unstable();
        owners.dedup();
        owners
    }

    /// Per-owner vertex counts (for provenance reports).
    pub fn contribution_counts(&self) -> Vec<(ModelId, usize)> {
        let mut counts: std::collections::BTreeMap<ModelId, usize> = Default::default();
        for o in &self.vertices {
            *counts.entry(o.owner).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// Approximate serialized size in bytes (16 bytes ≈ 128 bits per
    /// vertex, as in the paper's metadata estimate).
    pub fn metadata_bytes(&self) -> usize {
        16 * self.vertices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evostore_graph::{flatten, lcp, Activation, Architecture, LayerConfig, LayerKind};

    fn seq(units: &[u32]) -> CompactGraph {
        let mut a = Architecture::new("seq");
        let mut prev = a.add_layer(LayerConfig::new(
            "in",
            LayerKind::Input {
                shape: vec![units[0]],
            },
        ));
        let mut inf = units[0];
        for (i, &u) in units.iter().enumerate().skip(1) {
            prev = a.chain(
                prev,
                LayerConfig::new(
                    format!("d{i}"),
                    LayerKind::Dense {
                        in_features: inf,
                        units: u,
                        activation: Activation::ReLU,
                    },
                ),
            );
            inf = u;
        }
        flatten(&a).unwrap()
    }

    #[test]
    fn fresh_model_owns_everything() {
        let g = seq(&[4, 8, 8, 2]);
        let m = OwnerMap::fresh(ModelId(1), &g);
        assert_eq!(m.len(), 4);
        assert_eq!(m.self_owned().count(), 4);
        assert_eq!(m.inherited().count(), 0);
        assert_eq!(m.distinct_owners(), vec![ModelId(1)]);
        // Input layer has no tensors, dense layers have 2 each.
        assert_eq!(m.all_tensor_keys().len(), 6);
    }

    #[test]
    fn derived_model_inherits_prefix() {
        let parent_g = seq(&[4, 8, 8, 2]);
        let child_g = seq(&[4, 8, 8, 3]); // differs in the last layer
        let parent_map = OwnerMap::fresh(ModelId(1), &parent_g);
        let r = lcp(&child_g, &parent_g);
        assert_eq!(r.len(), 3);

        let child_map = OwnerMap::derive(ModelId(2), &child_g, &r, &parent_map);
        assert_eq!(child_map.self_owned().count(), 1);
        assert_eq!(child_map.inherited().count(), 3);
        assert_eq!(child_map.distinct_owners(), vec![ModelId(1), ModelId(2)]);
    }

    /// Figure 2's grandparent/parent/child ownership: the child's map must
    /// point *directly* at the grandparent for the oldest layers — one map
    /// lookup, no chain walk.
    #[test]
    fn chained_derivation_points_at_original_owner() {
        let gp_g = seq(&[4, 10, 20, 30, 99, 98]);
        let p_g = seq(&[4, 10, 20, 30, 40, 50]);
        let c_g = seq(&[4, 10, 20, 30, 40, 50, 60]);

        let gp_map = OwnerMap::fresh(ModelId(1), &gp_g);
        let lcp_p = lcp(&p_g, &gp_g);
        assert_eq!(lcp_p.len(), 4); // input + {10,20,30}
        let p_map = OwnerMap::derive(ModelId(2), &p_g, &lcp_p, &gp_map);

        let lcp_c = lcp(&c_g, &p_g);
        assert_eq!(lcp_c.len(), 6); // input + {10,20,30,40,50}
        let c_map = OwnerMap::derive(ModelId(3), &c_g, &lcp_c, &p_map);

        // Layers {10,20,30} (vertices 1..=3): owned by grandparent.
        for v in 1..=3u32 {
            assert_eq!(c_map.vertex(VertexId(v)).owner, ModelId(1));
        }
        // Layers {40,50} (vertices 4..=5): owned by parent.
        for v in 4..=5u32 {
            assert_eq!(c_map.vertex(VertexId(v)).owner, ModelId(2));
        }
        // Layer {60} (vertex 6): owned by the child itself.
        assert_eq!(c_map.vertex(VertexId(6)).owner, ModelId(3));
        assert_eq!(
            c_map.distinct_owners(),
            vec![ModelId(1), ModelId(2), ModelId(3)]
        );
    }

    #[test]
    fn tensor_keys_use_owner_numbering() {
        let parent_g = seq(&[4, 8, 2]);
        let child_g = seq(&[4, 8, 3]);
        let parent_map = OwnerMap::fresh(ModelId(7), &parent_g);
        let r = lcp(&child_g, &parent_g);
        let child_map = OwnerMap::derive(ModelId(8), &child_g, &r, &parent_map);
        // Vertex 1 of the child is inherited: its keys must reference the
        // parent's model id and the parent's vertex id.
        let keys: Vec<TensorKey> = child_map.vertex(VertexId(1)).tensor_keys().collect();
        assert!(keys.iter().all(|k| k.owner == ModelId(7)));
    }

    #[test]
    fn contribution_counts_sum_to_len() {
        let g = seq(&[4, 8, 8, 2]);
        let m = OwnerMap::fresh(ModelId(1), &g);
        let total: usize = m.contribution_counts().iter().map(|(_, c)| c).sum();
        assert_eq!(total, m.len());
    }

    #[test]
    fn metadata_stays_small() {
        // "at most hundreds of KB (128 bits per leaf-layer)" — even a
        // 10k-layer model stays at 160 KB.
        let g = seq(&[4, 8, 8, 8, 8, 2]);
        let m = OwnerMap::fresh(ModelId(1), &g);
        assert_eq!(m.metadata_bytes(), 16 * g.len());
    }
}
