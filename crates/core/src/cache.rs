//! Client-side tensor cache with prefetching.
//!
//! The paper's conclusion proposes "aggressive pre-fetching of models to
//! workers given known access pattern". [`CachingClient`] wraps an
//! [`EvoStoreClient`] with a byte-bounded LRU of fetched tensors:
//! repeated transfers from the same popular ancestor (the common case in
//! NAS, where good models parent many children) skip the fabric
//! entirely. Tensors are immutable once stored, so the only invalidation
//! concern is retirement — handled by [`CachingClient::retire_model`].
//!
//! The cache is keyed by [`TensorKey`] alone and is therefore
//! replica-agnostic: under a replicated deployment the inner client may
//! satisfy a miss from any replica of the key's owner (read failover),
//! and the cached bytes are identical regardless of which replica served
//! them — replication never needs a cache flush. A hit also absorbs
//! provider loss entirely: a tensor already cached is served even while
//! every replica of its chain is down.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evostore_tensor::{ModelId, TensorData, TensorKey};
use parking_lot::Mutex;

use crate::client::{BestAncestor, EvoStoreClient, Result, RetireOutcome};
use crate::messages::ModelMetaReply;

struct CacheEntry {
    tensor: TensorData,
    /// LRU stamp.
    last_used: u64,
}

struct CacheInner {
    entries: HashMap<TensorKey, CacheEntry>,
    bytes: usize,
}

/// Byte-bounded LRU tensor cache.
pub struct TensorCache {
    inner: Mutex<CacheInner>,
    capacity_bytes: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TensorCache {
    /// Cache holding at most `capacity_bytes` of tensor payload.
    pub fn new(capacity_bytes: usize) -> TensorCache {
        TensorCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                bytes: 0,
            }),
            capacity_bytes,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn stamp(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up one tensor.
    pub fn get(&self, key: &TensorKey) -> Option<TensorData> {
        let mut inner = self.inner.lock();
        let stamp = self.stamp();
        match inner.entries.get_mut(key) {
            Some(e) => {
                e.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.tensor.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Look up many tensors under one lock acquisition, splitting them
    /// into hits and the keys that must be fetched. Equivalent to
    /// [`TensorCache::get`] per key (same LRU stamping and hit/miss
    /// accounting) without re-taking the lock for every key.
    pub fn get_batch(
        &self,
        keys: &[TensorKey],
    ) -> (HashMap<TensorKey, TensorData>, Vec<TensorKey>) {
        let mut hits = HashMap::with_capacity(keys.len());
        let mut missing = Vec::new();
        let mut inner = self.inner.lock();
        for key in keys {
            let stamp = self.stamp();
            match inner.entries.get_mut(key) {
                Some(e) => {
                    e.last_used = stamp;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    hits.insert(*key, e.tensor.clone());
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    missing.push(*key);
                }
            }
        }
        (hits, missing)
    }

    /// Insert a tensor, evicting least-recently-used entries if needed.
    /// Tensors larger than the whole cache are not cached.
    pub fn put(&self, key: TensorKey, tensor: TensorData) {
        let size = tensor.byte_len();
        if size > self.capacity_bytes {
            return;
        }
        let stamp = self.stamp();
        let mut inner = self.inner.lock();
        if let Some(old) = inner.entries.insert(
            key,
            CacheEntry {
                tensor,
                last_used: stamp,
            },
        ) {
            inner.bytes -= old.tensor.byte_len();
        }
        inner.bytes += size;
        while inner.bytes > self.capacity_bytes {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("cache over capacity implies entries");
            if let Some(e) = inner.entries.remove(&victim) {
                inner.bytes -= e.tensor.byte_len();
            }
        }
    }

    /// Drop every cached tensor owned by `model` (on retirement).
    pub fn invalidate_owner(&self, model: ModelId) {
        let mut inner = self.inner.lock();
        let victims: Vec<TensorKey> = inner
            .entries
            .keys()
            .filter(|k| k.owner == model)
            .copied()
            .collect();
        for k in victims {
            if let Some(e) = inner.entries.remove(&k) {
                inner.bytes -= e.tensor.byte_len();
            }
        }
    }

    /// Cached payload bytes.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Cached tensor count.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// An [`EvoStoreClient`] with a shared prefetch cache in front of the
/// tensor read path.
#[derive(Clone)]
pub struct CachingClient {
    client: EvoStoreClient,
    cache: Arc<TensorCache>,
}

impl CachingClient {
    /// Wrap a client with a cache of `capacity_bytes`.
    pub fn new(client: EvoStoreClient, capacity_bytes: usize) -> CachingClient {
        CachingClient {
            client,
            cache: Arc::new(TensorCache::new(capacity_bytes)),
        }
    }

    /// The underlying client (for operations the cache does not mediate).
    pub fn inner(&self) -> &EvoStoreClient {
        &self.client
    }

    /// The cache itself (stats, manual invalidation).
    pub fn cache(&self) -> &TensorCache {
        &self.cache
    }

    /// Cache-aware tensor fetch: cached keys are served locally, the rest
    /// go through one (grouped, parallel) repository read and populate
    /// the cache.
    pub fn fetch_tensors(&self, keys: &[TensorKey]) -> Result<HashMap<TensorKey, TensorData>> {
        let (mut out, missing) = self.cache.get_batch(keys);
        if !missing.is_empty() {
            let fetched = self.client.fetch_tensors(&missing)?;
            for (key, tensor) in fetched {
                self.cache.put(key, tensor.clone());
                out.insert(key, tensor);
            }
        }
        Ok(out)
    }

    /// Cache-aware prefix transfer (same contract as
    /// [`EvoStoreClient::fetch_prefix`]).
    pub fn fetch_prefix(
        &self,
        best: &BestAncestor,
    ) -> Result<(ModelMetaReply, HashMap<TensorKey, TensorData>)> {
        let meta = self.client.get_meta(best.model)?;
        let mut keys = Vec::new();
        for &gv in &best.lcp.prefix {
            let av = best.lcp.match_in_ancestor[gv.0 as usize].ok_or_else(|| {
                crate::client::EvoError::Protocol(format!("prefix vertex {gv} has no match"))
            })?;
            keys.extend(meta.owner_map.vertex(av).tensor_keys());
        }
        let tensors = self.fetch_tensors(&keys)?;
        Ok((meta, tensors))
    }

    /// Warm the cache with a model's full parameter set ahead of time.
    pub fn prefetch_model(&self, model: ModelId) -> Result<usize> {
        let meta = self.client.get_meta(model)?;
        let keys = meta.owner_map.all_tensor_keys();
        let fetched = self.fetch_tensors(&keys)?;
        Ok(fetched.len())
    }

    /// Retire through the cache: the model's own tensors are dropped from
    /// the cache before the repository-side retirement runs.
    pub fn retire_model(&self, model: ModelId) -> Result<RetireOutcome> {
        self.cache.invalidate_owner(model);
        self.client.retire_model(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use evostore_tensor::{DType, VertexId};

    fn tensor(bytes: usize, fill: u8) -> TensorData {
        TensorData::from_bytes(DType::U8, vec![bytes], Bytes::from(vec![fill; bytes])).unwrap()
    }

    fn key(owner: u64, v: u32) -> TensorKey {
        TensorKey::new(ModelId(owner), VertexId(v), 0)
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = TensorCache::new(100);
        cache.put(key(1, 0), tensor(40, 1));
        cache.put(key(1, 1), tensor(40, 2));
        // Touch the first so the second becomes LRU.
        assert!(cache.get(&key(1, 0)).is_some());
        cache.put(key(1, 2), tensor(40, 3)); // forces eviction
        assert!(cache.bytes() <= 100);
        assert!(cache.get(&key(1, 0)).is_some(), "recently used survives");
        assert!(cache.get(&key(1, 1)).is_none(), "LRU evicted");
    }

    #[test]
    fn oversized_tensor_not_cached() {
        let cache = TensorCache::new(10);
        cache.put(key(1, 0), tensor(100, 1));
        assert!(cache.is_empty());
    }

    #[test]
    fn invalidate_owner_drops_only_that_model() {
        let cache = TensorCache::new(1000);
        cache.put(key(1, 0), tensor(10, 1));
        cache.put(key(2, 0), tensor(10, 2));
        cache.invalidate_owner(ModelId(1));
        assert!(cache.get(&key(1, 0)).is_none());
        assert!(cache.get(&key(2, 0)).is_some());
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = TensorCache::new(100);
        cache.put(key(1, 0), tensor(10, 1));
        let _ = cache.get(&key(1, 0));
        let _ = cache.get(&key(9, 9));
        let (h, m) = cache.stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn batch_lookup_matches_per_key_gets() {
        let cache = TensorCache::new(100);
        cache.put(key(1, 0), tensor(40, 1));
        cache.put(key(1, 1), tensor(40, 2));
        let (hits, missing) = cache.get_batch(&[key(1, 0), key(9, 9)]);
        assert_eq!(hits.len(), 1);
        assert!(hits.contains_key(&key(1, 0)));
        assert_eq!(missing, vec![key(9, 9)]);
        assert_eq!(cache.stats(), (1, 1));
        // A batch hit refreshes the LRU stamp exactly like `get`: the
        // untouched key is the one evicted next.
        cache.put(key(1, 2), tensor(40, 3));
        assert!(cache.get(&key(1, 0)).is_some(), "batch-touched survives");
        assert!(cache.get(&key(1, 1)).is_none(), "LRU evicted");
    }

    #[test]
    fn replacing_same_key_updates_bytes() {
        let cache = TensorCache::new(100);
        cache.put(key(1, 0), tensor(60, 1));
        cache.put(key(1, 0), tensor(20, 2));
        assert_eq!(cache.bytes(), 20);
        assert_eq!(cache.len(), 1);
    }
}
