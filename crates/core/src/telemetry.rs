//! Client-side operation telemetry.
//!
//! Lock-free log-scaled latency histograms for every repository
//! operation class. The figure harnesses and production deployments use
//! these to report p50/p95/p99 without holding raw samples.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use evostore_obs::Exemplar;
use parking_lot::Mutex;

/// Number of log2 buckets: bucket `i` covers `[2^i, 2^(i+1))` microseconds,
/// with the last bucket catching everything slower (~2.3 hours).
const BUCKETS: usize = 43;

/// Exemplars retained per bucket (last-N wins).
const EXEMPLARS_PER_BUCKET: usize = 4;

/// A log2-scaled latency histogram over microseconds. When a sample is
/// recorded under an ambient trace context, the bucket keeps the last
/// few `(trace_id, span_id)` exemplars so a slow percentile joins
/// straight back to its span tree in the flight recorder.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    exemplars: [Mutex<Vec<Exemplar>>; BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    /// Fresh histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| Mutex::new(Vec::new())),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket_index(us: u64) -> usize {
        (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
    }

    /// Record one latency in microseconds. If a trace context is
    /// ambiently installed, it is kept as the bucket's exemplar.
    pub fn record_us(&self, us: u64) {
        let idx = Self::bucket_index(us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
        // The thread-local probe is cheap; the lock is only taken when
        // an op is actually traced.
        if let Some(ctx) = evostore_obs::current_trace() {
            let mut ring = self.exemplars[idx].lock();
            if ring.len() == EXEMPLARS_PER_BUCKET {
                ring.remove(0);
            }
            ring.push(Exemplar {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                value_us: us,
            });
        }
    }

    /// Record a duration.
    pub fn record(&self, d: std::time::Duration) {
        self.record_us(d.as_micros() as u64);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Maximum recorded latency in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Sum of all recorded latencies in microseconds.
    pub fn total_us(&self) -> u64 {
        self.total_us.load(Ordering::Relaxed)
    }

    /// Samples in bucket `i` (bucket `i` covers `[2^i, 2^(i+1))`
    /// microseconds; values below 1 are clamped into bucket 0).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Median upper bound ([`LatencyHistogram::quantile_us`] at 0.50).
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 95th-percentile upper bound.
    pub fn p95_us(&self) -> u64 {
        self.quantile_us(0.95)
    }

    /// 99th-percentile upper bound.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// The histogram digested for the metrics registry, carrying the
    /// exemplars of the slowest populated buckets.
    pub fn summary(&self) -> evostore_obs::HistogramSummary {
        let mut exemplars = Vec::new();
        for ring in self.exemplars.iter().rev() {
            let ring = ring.lock();
            for ex in ring.iter().rev() {
                if exemplars.len() < evostore_obs::registry::MAX_SUMMARY_EXEMPLARS {
                    exemplars.push(*ex);
                }
            }
            if exemplars.len() >= evostore_obs::registry::MAX_SUMMARY_EXEMPLARS {
                break;
            }
        }
        evostore_obs::HistogramSummary {
            count: self.count(),
            sum_us: self.total_us(),
            p50_us: self.p50_us(),
            p95_us: self.p95_us(),
            p99_us: self.p99_us(),
            max_us: self.max_us(),
            exemplars,
        }
    }

    /// Index of the bucket holding the `q` quantile, with the rank it
    /// lands at inside that bucket and the bucket's population.
    fn quantile_bucket(&self, q: f64) -> Option<(usize, u64, u64)> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = (((n as f64) * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 && seen + c >= target {
                return Some((i, target - seen, c));
            }
            seen += c;
        }
        None
    }

    /// Approximate quantile: rank-interpolated within the log2 bucket
    /// containing it (bucket `i` spans `[2^i, 2^(i+1))`), clamped to
    /// the largest recorded sample so a sparse top bucket cannot report
    /// a latency nothing ever reached.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let Some((i, rank, c)) = self.quantile_bucket(q) else {
            return if self.count() == 0 { 0 } else { self.max_us() };
        };
        let lo = 1u64 << i;
        let width = 1u64 << i; // hi - lo for a log2 bucket
        let est = lo + (width as f64 * (rank as f64 / c as f64)).round() as u64;
        est.min(self.max_us().max(lo))
    }

    /// The exemplars retained in the bucket holding the `q` quantile —
    /// the "show me a trace of a p99 fetch" join. Empty when the
    /// quantile bucket's samples were recorded without an ambient
    /// trace.
    pub fn exemplars_for_quantile(&self, q: f64) -> Vec<Exemplar> {
        match self.quantile_bucket(q) {
            Some((i, _, _)) => self.exemplars[i].lock().clone(),
            None => Vec::new(),
        }
    }

    /// One-line report: `n=..., mean=..us, p50<=..us, p95<=..us, max=..us`.
    pub fn report(&self) -> String {
        format!(
            "n={} mean={:.0}us p50<={}us p95<={}us p99<={}us max={}us",
            self.count(),
            self.mean_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.95),
            self.quantile_us(0.99),
            self.max_us()
        )
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-operation-class telemetry of one client (shared by clones):
/// latency histograms plus resilience counters — retries, timeouts,
/// degraded (partial-coverage) queries, and parked GC decrements.
#[derive(Debug, Default)]
pub struct ClientTelemetry {
    /// LCP best-ancestor queries.
    pub query: LatencyHistogram,
    /// Tensor fetches (grouped reads).
    pub fetch: LatencyHistogram,
    /// Model stores.
    pub store: LatencyHistogram,
    /// Retirements.
    pub retire: LatencyHistogram,
    /// RPC-layer resilience counters (retries, timeouts, exhausted
    /// calls), fed by every call this client issues.
    pub rpc: evostore_rpc::RpcMetrics,
    degraded_queries: AtomicU64,
    parked_decrements: AtomicU64,
    read_failovers: AtomicU64,
    under_replicated_stores: AtomicU64,
    // Segments this client handed to vectored bulk exposure (store
    // payloads published without a consolidation copy).
    bulk_segments_exposed: AtomicU64,
    // Provider-side ancestor-query index counters, accumulated from the
    // per-reply stats of every LCP/pattern broadcast this client ran.
    index_scanned: AtomicU64,
    index_memo_hits: AtomicU64,
    index_deduped: AtomicU64,
    index_pruned: AtomicU64,
    index_prefiltered: AtomicU64,
    index_answered: AtomicU64,
    // Batched-query counters: envelopes issued and individual queries
    // packed inside them.
    batch_envelopes: AtomicU64,
    batch_queries: AtomicU64,
}

impl ClientTelemetry {
    /// Fresh telemetry.
    pub fn new() -> ClientTelemetry {
        ClientTelemetry::default()
    }

    /// Time a closure into the given histogram.
    pub fn time<T>(hist: &LatencyHistogram, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        hist.record(t0.elapsed());
        out
    }

    /// Queries answered from fewer than all providers (quorum met, some
    /// unreachable).
    pub fn degraded_queries(&self) -> u64 {
        self.degraded_queries.load(Ordering::Relaxed)
    }

    /// Refcount decrements parked for later retry after transient
    /// failures.
    pub fn parked_decrements(&self) -> u64 {
        self.parked_decrements.load(Ordering::Relaxed)
    }

    /// Record one degraded (partial-coverage) query.
    pub fn note_degraded_query(&self) {
        self.degraded_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` decrements parked in the retry queue.
    pub fn note_parked_decrements(&self, n: u64) {
        self.parked_decrements.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads served by a later chain member after an earlier replica
    /// failed (down, timed out, or missing the data).
    pub fn read_failovers(&self) -> u64 {
        self.read_failovers.load(Ordering::Relaxed)
    }

    /// Store/attach mirror legs that failed, leaving a model with fewer
    /// than `factor` copies until the next repair pass.
    pub fn under_replicated_stores(&self) -> u64 {
        self.under_replicated_stores.load(Ordering::Relaxed)
    }

    /// Record one read answered by a non-primary replica.
    pub fn note_read_failover(&self) {
        self.read_failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` failed mirror legs (under-replication debt).
    pub fn note_under_replicated_stores(&self, n: u64) {
        self.under_replicated_stores.fetch_add(n, Ordering::Relaxed);
    }

    /// Segments published as vectored bulk regions instead of being
    /// consolidated into a contiguous copy.
    pub fn bulk_segments_exposed(&self) -> u64 {
        self.bulk_segments_exposed.load(Ordering::Relaxed)
    }

    /// Record `n` segments exposed without a consolidation copy.
    pub fn note_bulk_segments_exposed(&self, n: u64) {
        self.bulk_segments_exposed.fetch_add(n, Ordering::Relaxed);
    }

    /// Accumulate one provider reply's index statistics.
    pub fn note_index_stats(&self, stats: evostore_graph::IndexQueryStats) {
        self.index_scanned
            .fetch_add(stats.scanned, Ordering::Relaxed);
        self.index_memo_hits
            .fetch_add(stats.memo_hits, Ordering::Relaxed);
        self.index_deduped
            .fetch_add(stats.deduped, Ordering::Relaxed);
        self.index_pruned.fetch_add(stats.pruned, Ordering::Relaxed);
        self.index_prefiltered
            .fetch_add(stats.prefiltered, Ordering::Relaxed);
        self.index_answered
            .fetch_add(stats.answered, Ordering::Relaxed);
    }

    /// Record one batched-query envelope carrying `queries` queries.
    pub fn note_batch(&self, queries: u64) {
        self.batch_envelopes.fetch_add(1, Ordering::Relaxed);
        self.batch_queries.fetch_add(queries, Ordering::Relaxed);
    }

    /// Batched envelopes issued so far.
    pub fn batch_envelopes(&self) -> u64 {
        self.batch_envelopes.load(Ordering::Relaxed)
    }

    /// Individual queries shipped inside batched envelopes.
    pub fn batch_queries(&self) -> u64 {
        self.batch_queries.load(Ordering::Relaxed)
    }

    /// Total index counters accumulated so far, as one stats value.
    pub fn index_stats(&self) -> evostore_graph::IndexQueryStats {
        evostore_graph::IndexQueryStats {
            candidates: 0,
            scanned: self.index_scanned.load(Ordering::Relaxed),
            memo_hits: self.index_memo_hits.load(Ordering::Relaxed),
            deduped: self.index_deduped.load(Ordering::Relaxed),
            pruned: self.index_pruned.load(Ordering::Relaxed),
            prefiltered: self.index_prefiltered.load(Ordering::Relaxed),
            answered: self.index_answered.load(Ordering::Relaxed),
        }
    }

    /// Every counter and histogram as named registry metrics, labeled
    /// `client="<label>"` — the client's contribution to the unified
    /// [`MetricsRegistry`](evostore_obs::MetricsRegistry). Covers the
    /// full `report()`: four latency summaries, the rpc counters, the
    /// degraded/parked/replication counters, and the index counters.
    pub fn metrics(&self, label: &str) -> Vec<evostore_obs::Metric> {
        use evostore_obs::Metric;
        let ix = self.index_stats();
        let tag = |m: Metric| m.with_label("client", label);
        vec![
            tag(Metric::histogram(
                "evostore_client_query_latency_us",
                self.query.summary(),
            )),
            tag(Metric::histogram(
                "evostore_client_fetch_latency_us",
                self.fetch.summary(),
            )),
            tag(Metric::histogram(
                "evostore_client_store_latency_us",
                self.store.summary(),
            )),
            tag(Metric::histogram(
                "evostore_client_retire_latency_us",
                self.retire.summary(),
            )),
            tag(Metric::counter(
                "evostore_client_rpc_calls",
                self.rpc.calls(),
            )),
            tag(Metric::counter(
                "evostore_client_rpc_retries",
                self.rpc.retries(),
            )),
            tag(Metric::counter(
                "evostore_client_rpc_timeouts",
                self.rpc.timeouts(),
            )),
            tag(Metric::counter(
                "evostore_client_rpc_exhausted",
                self.rpc.exhausted(),
            )),
            tag(Metric::counter(
                "evostore_client_degraded_queries",
                self.degraded_queries(),
            )),
            tag(Metric::counter(
                "evostore_client_parked_decrements",
                self.parked_decrements(),
            )),
            tag(Metric::counter(
                "evostore_client_read_failovers",
                self.read_failovers(),
            )),
            tag(Metric::counter(
                "evostore_client_under_replicated_stores",
                self.under_replicated_stores(),
            )),
            tag(Metric::counter(
                "evostore_client_bulk_segments_exposed",
                self.bulk_segments_exposed(),
            )),
            tag(Metric::counter("evostore_client_index_scanned", ix.scanned)),
            tag(Metric::counter(
                "evostore_client_index_memo_hits",
                ix.memo_hits,
            )),
            tag(Metric::counter("evostore_client_index_deduped", ix.deduped)),
            tag(Metric::counter("evostore_client_index_pruned", ix.pruned)),
            tag(Metric::counter(
                "evostore_client_index_prefiltered",
                ix.prefiltered,
            )),
            tag(Metric::counter(
                "evostore_client_index_answered",
                ix.answered,
            )),
            tag(Metric::counter(
                "evostore_client_batch_envelopes",
                self.batch_envelopes(),
            )),
            tag(Metric::counter(
                "evostore_client_batch_queries",
                self.batch_queries(),
            )),
        ]
    }

    /// Multi-line report over all operation classes and resilience
    /// counters.
    pub fn report(&self) -> String {
        let ix = self.index_stats();
        format!(
            "query:  {}\nfetch:  {}\nstore:  {}\nretire: {}\nfaults: calls={} retries={} timeouts={} exhausted={} degraded_queries={} parked_decrements={}\nreplication: read_failovers={} under_replicated_stores={}\ndatapath: bulk_segments_exposed={}\nindex:  scanned={} memo_hits={} deduped={} pruned={} prefiltered={} answered={}\nbatch:  envelopes={} queries={}",
            self.query.report(),
            self.fetch.report(),
            self.store.report(),
            self.retire.report(),
            self.rpc.calls(),
            self.rpc.retries(),
            self.rpc.timeouts(),
            self.rpc.exhausted(),
            self.degraded_queries(),
            self.parked_decrements(),
            self.read_failovers(),
            self.under_replicated_stores(),
            self.bulk_segments_exposed(),
            ix.scanned,
            ix.memo_hits,
            ix.deduped,
            ix.pruned,
            ix.prefiltered,
            ix.answered,
            self.batch_envelopes(),
            self.batch_queries()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let h = LatencyHistogram::new();
        h.record_us(1);
        h.record_us(2);
        h.record_us(3);
        h.record_us(1000);
        assert_eq!(h.count(), 4);
        assert!(h.mean_us() > 200.0);
        assert_eq!(h.max_us(), 1000);
    }

    #[test]
    fn quantiles_are_monotone_upper_bounds() {
        let h = LatencyHistogram::new();
        for us in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 5120] {
            h.record_us(us);
        }
        let p50 = h.quantile_us(0.5);
        let p95 = h.quantile_us(0.95);
        assert!(p50 <= p95);
        assert!(p50 >= 160, "p50 bound {p50} too low");
        assert!(p95 >= 5120, "p95 bound {p95} too low");
    }

    #[test]
    fn quantiles_interpolate_within_the_bucket_with_exact_counts() {
        // Four samples of 100us all land in bucket 6 ([64, 128)).
        let h = LatencyHistogram::new();
        for _ in 0..4 {
            h.record_us(100);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.total_us(), 400);
        assert_eq!(h.mean_us(), 100.0, "mean is exact from sum/count");
        // p50 = rank 2 of 4 in [64, 128): 64 + 64 * 2/4 = 96.
        assert_eq!(h.quantile_us(0.50), 96);
        // p99 = rank 4 of 4: interpolates to the bucket top (128) but is
        // clamped to the observed max.
        assert_eq!(h.quantile_us(0.99), 100);

        // Mixed buckets: 3 fast (bucket 3) + 1 slow (bucket 10).
        let h = LatencyHistogram::new();
        for us in [10u64, 10, 10, 2000] {
            h.record_us(us);
        }
        // p50 = rank 2 of 3 in [8, 16): 8 + 8 * 2/3 ~ 13.
        assert_eq!(h.quantile_us(0.50), 13);
        // p99 lands on the slow sample's bucket [1024, 2048), rank 1 of
        // 1 interpolates to 2048, clamped to the 2000us max.
        assert_eq!(h.quantile_us(0.99), 2000);
    }

    #[test]
    fn exemplars_join_the_quantile_bucket_to_its_trace() {
        let h = LatencyHistogram::new();
        // Without an ambient trace: no exemplar retained.
        h.record_us(10);
        assert!(h.exemplars_for_quantile(0.5).is_empty());

        let ctx = evostore_obs::TraceContext::root();
        {
            let _g = evostore_obs::set_current_trace(Some(ctx));
            h.record_us(5_000); // the slow outlier, traced
        }
        let p99 = h.exemplars_for_quantile(0.99);
        assert_eq!(p99.len(), 1);
        assert_eq!(p99[0].trace_id, ctx.trace_id);
        assert_eq!(p99[0].span_id, ctx.span_id);
        assert_eq!(p99[0].value_us, 5_000);
        // The summary carries the slowest buckets' exemplars outward.
        assert!(h.summary().exemplars.contains(&p99[0]));
        // The ring keeps only the last N per bucket.
        {
            let _g = evostore_obs::set_current_trace(Some(ctx));
            for _ in 0..10 {
                h.record_us(5_000);
            }
        }
        assert_eq!(h.exemplars_for_quantile(0.99).len(), EXEMPLARS_PER_BUCKET);
    }

    #[test]
    fn zero_latency_is_clamped() {
        let h = LatencyHistogram::new();
        h.record_us(0);
        assert_eq!(h.count(), 1);
        assert!(h.quantile_us(1.0) >= 1);
    }

    #[test]
    fn bucket_zero_edge_cases_count_exactly() {
        // Bucket 0 covers [1, 2): both a 1us sample and a clamped 0us
        // sample land there, and nowhere else.
        let h = LatencyHistogram::new();
        h.record_us(1);
        h.record_us(0);
        assert_eq!(h.bucket_count(0), 2);
        for i in 1..BUCKETS {
            assert_eq!(h.bucket_count(i), 0, "bucket {i} should be empty");
        }
        // The next power of two starts bucket 1 exactly.
        h.record_us(2);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
    }

    #[test]
    fn percentile_helpers_match_quantiles() {
        let h = LatencyHistogram::new();
        for us in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 5120] {
            h.record_us(us);
        }
        assert_eq!(h.p50_us(), h.quantile_us(0.50));
        assert_eq!(h.p95_us(), h.quantile_us(0.95));
        assert_eq!(h.p99_us(), h.quantile_us(0.99));
        assert!(h.p50_us() <= h.p95_us() && h.p95_us() <= h.p99_us());
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum_us, h.total_us());
        assert_eq!(s.max_us, 5120);
    }

    #[test]
    fn metrics_cover_every_report_counter() {
        let t = ClientTelemetry::new();
        t.note_degraded_query();
        t.note_parked_decrements(2);
        let metrics = t.metrics("0");
        for name in [
            "evostore_client_query_latency_us",
            "evostore_client_fetch_latency_us",
            "evostore_client_store_latency_us",
            "evostore_client_retire_latency_us",
            "evostore_client_rpc_calls",
            "evostore_client_rpc_retries",
            "evostore_client_rpc_timeouts",
            "evostore_client_rpc_exhausted",
            "evostore_client_degraded_queries",
            "evostore_client_parked_decrements",
            "evostore_client_read_failovers",
            "evostore_client_under_replicated_stores",
            "evostore_client_bulk_segments_exposed",
            "evostore_client_index_scanned",
            "evostore_client_index_memo_hits",
            "evostore_client_index_deduped",
            "evostore_client_index_pruned",
            "evostore_client_index_prefiltered",
            "evostore_client_index_answered",
            "evostore_client_batch_envelopes",
            "evostore_client_batch_queries",
        ] {
            let m = metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing metric {name}"));
            assert_eq!(m.labels, vec![("client".to_string(), "0".to_string())]);
        }
    }

    #[test]
    fn report_formats() {
        let t = ClientTelemetry::new();
        ClientTelemetry::time(&t.query, || {
            std::thread::sleep(std::time::Duration::from_micros(50))
        });
        let r = t.report();
        assert!(r.contains("query:"));
        assert!(r.contains("n=1"));
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 1..=100u64 {
                        h.record_us(i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 800);
    }
}
