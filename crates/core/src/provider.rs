//! EvoStore providers.
//!
//! A provider is simultaneously a *data* node (reference-counted tensor
//! store) and a *metadata* node (catalog of model records: compact graph,
//! owner map, lineage link, quality, write timestamp) — §4.1's coupled
//! data/metadata design. Providers serve:
//!
//! * consolidated model stores (one bulk pull per store request);
//! * fine-grained tensor reads (one bulk expose per read request);
//! * reference-count adjustments (the distributed-GC primitive);
//! * provider-side LCP scans over the local catalog, executed in parallel
//!   (the map step of the broadcast/reduce metadata query).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use evostore_graph::{lcp, ArchIndex, ArchPattern, CompactGraph, IndexQueryStats, SnapshotCell};
use evostore_kv::{KvBackend, RefCountedStore, TensorStore};
use evostore_obs::ledger::install_costs;
use evostore_obs::{
    current_trace, FlightRecorder, Metric, MonotonicClock, ObsHub, OpCosts, OpLedger,
    RegistrySnapshot, Span, TimeSource, Tracer,
};
use evostore_rpc::{typed_handler, Endpoint, EndpointId, Fabric};
use evostore_tensor::{
    decode_delta, delta_header, delta_probe, encode_delta, is_delta, read_tensor, validate_record,
    ContentHash, DeltaHeader, ModelId, TensorKey, DELTA_PROBE_LEN,
};
use parking_lot::{Mutex, RwLock};
use rayon::prelude::*;

use evostore_deliver::wire::methods as deliver_methods;
use evostore_deliver::{SubscribeReply, SubscribeRequest, UnsubscribeReply, UnsubscribeRequest};

use crate::delivery::{CatalogChange, DeliveryHub};
use crate::messages::*;
use crate::owner_map::OwnerMap;
use crate::policy::DeltaPolicy;
use crate::replication::ReplicationPolicy;

/// How many applied refs-operation ids a provider remembers for duplicate
/// suppression. Must comfortably exceed (in-flight refs ops) ×
/// (retry attempts) so a retried leg always finds its first delivery in
/// the cache; beyond that window a duplicate would re-apply.
const REFS_OP_MEMORY: usize = 65_536;

/// Flight-recorder ring capacity per provider (recent events kept for a
/// postmortem dump; older ones are evicted and counted).
pub const PROVIDER_FLIGHT_EVENTS: usize = 1024;

/// Decode a wire-form content hash (always 16 bytes).
fn wire_hash(b: &[u8; 16]) -> ContentHash {
    ContentHash::from_bytes(b).expect("16-byte content hash")
}

/// Turn a probed delta header into the transfer manifest's linkage pair
/// (`delta_base`, `delta_depth`); raw records carry `(None, 0)`.
fn delta_linkage(
    key: TensorKey,
    head: Option<DeltaHeader>,
) -> Result<(Option<TensorKey>, u8), String> {
    match head {
        None => Ok((None, 0)),
        Some(h) => {
            let base = TensorKey::decode(&h.base_key)
                .ok_or_else(|| format!("record {key}: undecodable delta base key"))?;
            Ok((Some(base), h.depth))
        }
    }
}

/// Bounded memo of applied [`RefsRequest`]s: `op_id` → the reply the
/// first delivery produced. Evicts in insertion order at
/// [`REFS_OP_MEMORY`].
#[derive(Default)]
struct RefsOpCache {
    replies: HashMap<u64, RefsReply>,
    order: std::collections::VecDeque<u64>,
}

impl RefsOpCache {
    fn get(&self, op_id: u64) -> Option<RefsReply> {
        self.replies.get(&op_id).cloned()
    }

    fn record(&mut self, op_id: u64, reply: RefsReply) {
        if self.replies.insert(op_id, reply).is_none() {
            self.order.push_back(op_id);
            while self.order.len() > REFS_OP_MEMORY {
                if let Some(evicted) = self.order.pop_front() {
                    self.replies.remove(&evicted);
                }
            }
        }
    }
}

/// Catalog entry for one stored model.
#[derive(Clone)]
pub struct ModelRecord {
    /// Flattened architecture (shared, read-only).
    pub graph: Arc<CompactGraph>,
    /// Ownership of every vertex.
    pub owner_map: OwnerMap,
    /// Direct transfer-learning ancestor.
    pub parent: Option<ModelId>,
    /// Quality metric.
    pub quality: f64,
    /// Global write-order stamp.
    pub timestamp: u64,
    /// Keys of attached optimizer-state tensors (model-private).
    pub optimizer_keys: Vec<TensorKey>,
}

/// On-disk form of a [`ModelRecord`] (catalog persistence).
#[derive(serde::Serialize, serde::Deserialize)]
struct PersistedRecord {
    graph: CompactGraph,
    owner_map: OwnerMap,
    parent: Option<ModelId>,
    quality: f64,
    timestamp: u64,
    optimizer_keys: Vec<TensorKey>,
}

impl ModelRecord {
    fn to_persisted(&self) -> PersistedRecord {
        PersistedRecord {
            graph: (*self.graph).clone(),
            owner_map: self.owner_map.clone(),
            parent: self.parent,
            quality: self.quality,
            timestamp: self.timestamp,
            optimizer_keys: self.optimizer_keys.clone(),
        }
    }

    fn from_persisted(p: PersistedRecord) -> ModelRecord {
        ModelRecord {
            graph: Arc::new(p.graph),
            owner_map: p.owner_map,
            parent: p.parent,
            quality: p.quality,
            timestamp: p.timestamp,
            optimizer_keys: p.optimizer_keys,
        }
    }
}

/// The provider's model catalog: the record map plus the incrementally
/// maintained [`ArchIndex`] over it, always mutated together under one
/// lock so index membership exactly mirrors the records.
///
/// This is the *writer-side* authoritative state. Read handlers never
/// touch it: every mutation ends by publishing an immutable
/// [`CatalogSnapshot`] ([`ProviderState::mutate_catalog`]), and the read
/// path pins that snapshot with zero locks.
struct Catalog {
    records: HashMap<ModelId, Arc<ModelRecord>>,
    index: ArchIndex,
    /// Publication counter: bumped once per mutation, stamped on the
    /// snapshot it produces (strictly monotone across publications).
    version: u64,
    /// Change log of the in-progress mutation, drained at publication
    /// and handed to the delivery hub for subscription matching.
    changes: Vec<CatalogChange>,
}

impl Catalog {
    fn new() -> Catalog {
        Catalog {
            records: HashMap::new(),
            index: ArchIndex::new(),
            version: 0,
            changes: Vec::new(),
        }
    }

    fn insert(&mut self, model: ModelId, rec: ModelRecord) {
        self.index
            .insert(model, Arc::clone(&rec.graph), rec.quality);
        self.records.insert(model, Arc::new(rec));
        self.changes.push(CatalogChange::Stored { model });
    }

    fn remove(&mut self, model: ModelId) -> Option<Arc<ModelRecord>> {
        let rec = self.records.remove(&model)?;
        self.index.remove(model);
        self.changes.push(CatalogChange::Retired {
            model,
            parent: rec.parent,
            graph: Arc::clone(&rec.graph),
            quality: rec.quality,
            timestamp: rec.timestamp,
        });
        Some(rec)
    }

    /// Freeze the current state into an immutable snapshot. Cheap:
    /// records are shared `Arc`s and [`ArchIndex::clone`] is
    /// copy-on-write (per-bucket pointer bumps, shared memo).
    fn snapshot(&self) -> Arc<CatalogSnapshot> {
        Arc::new(CatalogSnapshot {
            records: self.records.clone(),
            index: self.index.clone(),
            version: self.version,
        })
    }
}

/// An immutable view of one provider's catalog, published atomically
/// after every mutation and pinned lock-free by every read handler. A
/// reader always observes records and index from the *same* publication
/// — never a half-applied store or retire.
pub struct CatalogSnapshot {
    records: HashMap<ModelId, Arc<ModelRecord>>,
    index: ArchIndex,
    version: u64,
}

impl CatalogSnapshot {
    fn empty() -> CatalogSnapshot {
        CatalogSnapshot {
            records: HashMap::new(),
            index: ArchIndex::new(),
            version: 0,
        }
    }

    /// Publication counter of the mutation that produced this snapshot.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Cataloged models in this snapshot.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// One model's record.
    pub fn get(&self, model: ModelId) -> Option<&Arc<ModelRecord>> {
        self.records.get(&model)
    }

    /// Every `(model, record)` in the snapshot.
    pub fn records(&self) -> impl Iterator<Item = (ModelId, &Arc<ModelRecord>)> {
        self.records.iter().map(|(&m, r)| (m, r))
    }

    /// The architecture index frozen with the records.
    pub fn index(&self) -> &ArchIndex {
        &self.index
    }

    /// Assert the snapshot is internally coherent: index membership
    /// mirrors the record map exactly. A violation means a reader
    /// observed a half-applied mutation — exactly what the atomic
    /// publication protocol forbids.
    pub fn verify_coherent(&self) -> Result<(), String> {
        if self.records.len() != self.index.len() {
            return Err(format!(
                "snapshot v{}: {} records but {} indexed models",
                self.version,
                self.records.len(),
                self.index.len()
            ));
        }
        for &model in self.records.keys() {
            if !self.index.contains(model) {
                return Err(format!(
                    "snapshot v{}: record {model} missing from the index",
                    self.version
                ));
            }
        }
        let distinct: std::collections::HashSet<_> = self
            .records
            .values()
            .map(|r| r.graph.arch_signature())
            .collect();
        if distinct.len() != self.index.distinct_architectures() {
            return Err(format!(
                "snapshot v{}: {} distinct archs in records, {} in index",
                self.version,
                distinct.len(),
                self.index.distinct_architectures()
            ));
        }
        Ok(())
    }
}

/// Lock-free cumulative index-query counters (one field per
/// [`IndexQueryStats`] member): handlers bump plain atomics instead of
/// taking a mutex just to add statistics.
#[derive(Default)]
struct AtomicQueryStats {
    candidates: AtomicU64,
    scanned: AtomicU64,
    memo_hits: AtomicU64,
    deduped: AtomicU64,
    pruned: AtomicU64,
    prefiltered: AtomicU64,
    answered: AtomicU64,
}

impl AtomicQueryStats {
    fn note(&self, s: IndexQueryStats) {
        self.candidates.fetch_add(s.candidates, Ordering::Relaxed);
        self.scanned.fetch_add(s.scanned, Ordering::Relaxed);
        self.memo_hits.fetch_add(s.memo_hits, Ordering::Relaxed);
        self.deduped.fetch_add(s.deduped, Ordering::Relaxed);
        self.pruned.fetch_add(s.pruned, Ordering::Relaxed);
        self.prefiltered.fetch_add(s.prefiltered, Ordering::Relaxed);
        self.answered.fetch_add(s.answered, Ordering::Relaxed);
    }

    fn load(&self) -> IndexQueryStats {
        IndexQueryStats {
            candidates: self.candidates.load(Ordering::Relaxed),
            scanned: self.scanned.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            prefiltered: self.prefiltered.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
        }
    }
}

/// Shards of the encoded `GET_META` reply cache. Hot fetches of
/// *different* models no longer serialize on one global mutex; the
/// model id picks the shard.
const META_REPLY_SHARDS: usize = 16;

/// Sharded cache of encoded `GET_META` replies, each entry stamped with
/// the record timestamp it was built from (a re-store or sync installs
/// a newer stamp and invalidates implicitly).
struct MetaReplyCache {
    shards: [Mutex<HashMap<ModelId, (u64, Bytes)>>; META_REPLY_SHARDS],
}

impl MetaReplyCache {
    fn new() -> MetaReplyCache {
        MetaReplyCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, model: ModelId) -> &Mutex<HashMap<ModelId, (u64, Bytes)>> {
        &self.shards[(model.0 as usize) % META_REPLY_SHARDS]
    }

    fn get(&self, model: ModelId, timestamp: u64) -> Option<Bytes> {
        let shard = self.shard(model).lock();
        match shard.get(&model) {
            Some((ts, blob)) if *ts == timestamp => Some(blob.clone()),
            _ => None,
        }
    }

    fn insert(&self, model: ModelId, timestamp: u64, blob: Bytes) {
        self.shard(model).lock().insert(model, (timestamp, blob));
    }

    fn remove(&self, model: ModelId) {
        self.shard(model).lock().remove(&model);
    }
}

/// Shared state of one provider.
pub struct ProviderState {
    fabric: Arc<Fabric>,
    /// This provider's index within the deployment.
    pub index: usize,
    /// Total providers in the deployment (placement function input).
    pub num_providers: usize,
    /// Replica placement rule (shared by every provider and client of
    /// the deployment).
    pub replication: ReplicationPolicy,
    tensors: RefCountedStore<Box<dyn KvBackend>>,
    catalog: RwLock<Catalog>,
    /// The published immutable catalog view. Writers rebuild and swap it
    /// (one atomic pointer store) while still holding the catalog write
    /// lock, so publication order equals mutation order; read handlers
    /// pin it with zero locks.
    snapshot: SnapshotCell<CatalogSnapshot>,
    /// Durable catalog records (separate namespace from tensors).
    meta_store: Box<dyn KvBackend>,
    /// Deployment-wide write-ordering clock.
    clock: Arc<AtomicU64>,
    /// Applied refs operations, for duplicate suppression under retries.
    refs_ops: Mutex<RefsOpCache>,
    /// Retirements witnessed here (anti-entropy): lets a digest exchange
    /// distinguish "this replica missed a store" from "the others missed
    /// a retirement" when catalogs diverge after a fault window.
    tombstones: Mutex<HashMap<ModelId, Tombstone>>,
    /// Serve ancestor/pattern queries through the [`ArchIndex`] (the
    /// default) or by the unindexed full-catalog scan (A/B measurement;
    /// the index stays maintained either way).
    index_enabled: AtomicBool,
    /// Serve indexed queries through the bitset/bloom prefilters (the
    /// default) or with plain bucket walks (A/B measurement lever;
    /// results are identical either way).
    prefilter_enabled: AtomicBool,
    /// Cumulative per-query index statistics (LCP and pattern scans),
    /// bumped lock-free by every query handler.
    query_stats: AtomicQueryStats,
    /// Lock-free snapshot pins taken by read handlers.
    snapshot_reads: AtomicU64,
    /// Batched query envelopes served, and queries delivered in them.
    batch_envelopes: AtomicU64,
    batch_queries: AtomicU64,
    /// Span factory for this provider; its flight recorder is the
    /// provider's postmortem ring.
    tracer: Tracer,
    /// This provider's fabric address (stamped on handler spans).
    endpoint_id: u32,
    /// Serve the data plane through consolidated contiguous copies
    /// instead of vectored zero-copy regions (A/B measurement lever;
    /// semantics are identical either way).
    force_copy: AtomicBool,
    /// Segments handed to `bulk_expose_vec` by read-side handlers.
    bulk_segments_exposed: AtomicU64,
    /// Tensor reads served as shared-buffer clones of memory-resident
    /// values (no payload copy on the provider).
    zero_copy_reads: AtomicU64,
    /// Tensor reads that fell back to a copying `get` (disk-resident
    /// record, or the forced-copy lever is on).
    copy_fallback_reads: AtomicU64,
    /// Store requests whose manifest validation fanned out across the
    /// rayon pool (decode-free `validate_record` path).
    validate_par_batches: AtomicU64,
    /// Encoded `GET_META` replies keyed by model, each stamped with the
    /// record timestamp it was built from. A hit serves the cached JSON
    /// bytes without re-cloning the compact graph; a timestamp mismatch
    /// (model re-stored or synced) rebuilds. Sharded by model id so hot
    /// fetches of different models never serialize.
    meta_replies: MetaReplyCache,
    /// Parent-delta encoding policy for derived-model stores.
    delta: DeltaPolicy,
    /// Delta dependency index: base record key → keys of the delta
    /// records encoded directly against it. No reference counts are
    /// taken on bases (that would break the exact-count GC audit);
    /// instead, every reclaim path re-bases dependents to raw bytes
    /// before the base dies. Rebuilt from record headers on recovery.
    delta_deps: Mutex<HashMap<Vec<u8>, Vec<Vec<u8>>>>,
    /// Records stored as parent deltas rather than raw bytes.
    delta_stored: AtomicU64,
    /// Delta decodes performed to serve reads (one per chain link).
    delta_reconstructs: AtomicU64,
    /// Delta records rewritten back to raw bytes (base reclaimed, or a
    /// maintenance re-base pass).
    delta_rebased: AtomicU64,
    /// Chunk hashes this provider was asked to probe for possession
    /// (negotiated transfers it served as a sync target or chunk-aware
    /// fetch source).
    transfer_chunks_offered: AtomicU64,
    /// Chunk payloads shipped for negotiated transfers.
    transfer_chunks_sent: AtomicU64,
    /// Offered chunks the negotiation elided (already held by the
    /// receiving side).
    transfer_chunks_skipped: AtomicU64,
    /// Delta-encoded records that crossed the wire verbatim during sync.
    transfer_deltas_shipped: AtomicU64,
    /// Payload bytes negotiation kept off the wire.
    transfer_bytes_saved: AtomicU64,
    /// Subscription matching and event delivery for this provider's
    /// catalog publications (the delivery plane).
    delivery: Arc<DeliveryHub>,
    /// Per-method resource attribution for traced handler invocations.
    ledger: Arc<OpLedger>,
    /// Spawned under an [`ObsHub`]: the hub emits this provider's
    /// flight-ring metrics, so [`ProviderState::obs_snapshot`] must not
    /// emit them a second time.
    hub_attached: bool,
}

impl ProviderState {
    /// Does `model`'s metadata (and its self-owned tensors) belong on
    /// this provider? True for the primary and every ring successor in
    /// the replica chain.
    fn places_here(&self, model: ModelId) -> bool {
        self.replication
            .is_replica(model, self.num_providers, self.index)
    }

    /// The logical tensor-storage facade — the only storage API request
    /// handlers touch. Physical layering (chunking, residency tiers)
    /// stays behind it.
    fn store(&self) -> &dyn TensorStore {
        &self.tensors
    }

    // ---- snapshot publication -------------------------------------------

    /// Run a catalog mutation and publish the resulting snapshot. The
    /// swap happens while the write lock is still held, so the
    /// publication order of snapshots is exactly the mutation order —
    /// two racing writers can never publish out of order.
    fn mutate_catalog<T>(&self, f: impl FnOnce(&mut Catalog) -> T) -> T {
        let mut catalog = self.catalog.write();
        let out = f(&mut catalog);
        catalog.version += 1;
        let snap = catalog.snapshot();
        self.snapshot.store(Arc::clone(&snap));
        // Hand the mutation's change log to the delivery hub while the
        // write lock is still held: subscribers observe events in
        // exactly the publication order. With no subscribers this is
        // one atomic load.
        let changes = std::mem::take(&mut catalog.changes);
        if !changes.is_empty() {
            self.delivery.on_publication(&snap, &changes);
        }
        out
    }

    /// Pin the current published catalog snapshot (lock-free; what every
    /// read handler serves from).
    pub fn catalog_snapshot(&self) -> Arc<CatalogSnapshot> {
        self.snapshot_reads.fetch_add(1, Ordering::Relaxed);
        self.snapshot.load()
    }

    // ---- parent-delta encoding ------------------------------------------

    /// Materialize the raw (EVST) bytes of a fetched record, decoding
    /// the delta chain under it when the record is delta-encoded.
    fn materialize(&self, record: Bytes) -> Result<Bytes, String> {
        if !is_delta(&record) {
            return Ok(record);
        }
        // Walk down to the raw base (chains are depth-bounded at store
        // time; the u8 depth field caps the walk regardless).
        let mut chain = vec![record];
        let mut raw = loop {
            let head = delta_header(chain.last().expect("chain non-empty"))
                .map_err(|e| format!("delta record: {e}"))?;
            let base = self
                .store()
                .get_record(&head.base_key)
                .map_err(|_| "delta base record missing".to_string())?;
            if chain.len() > u8::MAX as usize {
                return Err("delta chain exceeds the depth bound".into());
            }
            if is_delta(&base) {
                chain.push(base);
            } else {
                break base;
            }
        };
        evostore_obs::ledger::note_delta_chain_depth(chain.len() as u64);
        // Decode back up the chain.
        while let Some(delta) = chain.pop() {
            raw = decode_delta(&delta, &raw).map_err(|e| format!("delta decode: {e}"))?;
            self.delta_reconstructs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(raw)
    }

    /// Fetch a record and materialize it to raw bytes.
    fn resolve_record(&self, enc: &[u8]) -> Result<Bytes, String> {
        let record = self
            .store()
            .get_record(enc)
            .map_err(|_| "record not stored".to_string())?;
        self.materialize(record)
    }

    /// Try to delta-encode a self-owned tensor of a derived model
    /// against the parent's tensor at the same vertex/slot. Returns the
    /// delta blob and the base's record key, or `None` when the base is
    /// unavailable (not co-located here), the chain bound is reached, or
    /// the delta would not actually save space.
    fn try_delta_encode(
        &self,
        key: TensorKey,
        record: &Bytes,
        parent_map: &OwnerMap,
    ) -> Option<(Bytes, Vec<u8>)> {
        if (key.vertex.0 as usize) >= parent_map.vertices.len() {
            return None;
        }
        let owner = parent_map.vertex(key.vertex);
        if key.slot >= owner.slots {
            return None;
        }
        let base_key = TensorKey::new(owner.owner, owner.owner_vertex, key.slot);
        let base_enc = base_key.encode();
        if base_enc == key.encode() {
            return None;
        }
        // Delta applies only when the base is co-located: cross-provider
        // bases would turn every read into a remote fetch.
        let base_rec = self.store().get_record(&base_enc).ok()?;
        let depth = if is_delta(&base_rec) {
            delta_header(&base_rec).ok()?.depth
        } else {
            0
        };
        if depth >= self.delta.max_chain_depth {
            return None;
        }
        let base_raw = self.materialize(base_rec).ok()?;
        let blob = encode_delta(record, &base_raw, base_enc, depth + 1)?;
        Some((blob, base_enc.to_vec()))
    }

    /// Fence a record's physical removal: rewrite every delta directly
    /// based on it back to raw bytes (so their payloads survive the
    /// base's death), and unlink the record itself from its base's
    /// dependent list. Must run before any decrement/refs-install that
    /// can drop the record.
    fn before_reclaim(&self, enc: &[u8]) -> Result<(), String> {
        if !self.delta.enabled {
            return Ok(());
        }
        let deps = self.delta_deps.lock().remove(enc);
        for dep in deps.into_iter().flatten() {
            // A dependent may have been reclaimed (or already re-based)
            // since it was registered; skip it silently.
            let Ok(rec) = self.store().get_record(&dep) else {
                continue;
            };
            if !is_delta(&rec) {
                continue;
            }
            let raw = self.materialize(rec)?;
            self.store()
                .replace_record(&dep, raw)
                .map_err(|e| format!("re-base dependent record: {e}"))?;
            self.delta_rebased.fetch_add(1, Ordering::Relaxed);
        }
        // If the dying record is itself a delta, drop it from its base's
        // dependent list so the base never re-bases a reclaimed key.
        if let Ok(rec) = self.store().get_record(enc) {
            if is_delta(&rec) {
                if let Ok(head) = delta_header(&rec) {
                    let mut deps = self.delta_deps.lock();
                    if let Some(v) = deps.get_mut(head.base_key.as_slice()) {
                        v.retain(|k| k != enc);
                        if v.is_empty() {
                            deps.remove(head.base_key.as_slice());
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Maintenance re-base: rewrite every delta record whose chain depth
    /// exceeds `max_depth` back to raw bytes, bounding reconstruction
    /// cost after deep derivation chains accumulate. Returns how many
    /// records were rewritten.
    pub fn rebase_deltas(&self, max_depth: u8) -> Result<usize, String> {
        let mut keys = Vec::new();
        self.store()
            .for_each_record_key(&mut |k| keys.push(k.to_vec()));
        let mut rewritten = 0;
        for enc in keys {
            let Ok(rec) = self.store().get_record(&enc) else {
                continue;
            };
            if !is_delta(&rec) {
                continue;
            }
            let head = delta_header(&rec).map_err(|e| format!("delta record: {e}"))?;
            if head.depth <= max_depth {
                continue;
            }
            let base_enc = head.base_key.to_vec();
            let raw = self.materialize(rec)?;
            self.store()
                .replace_record(&enc, raw)
                .map_err(|e| format!("re-base record: {e}"))?;
            let mut deps = self.delta_deps.lock();
            if let Some(v) = deps.get_mut(&base_enc) {
                v.retain(|k| k != &enc);
                if v.is_empty() {
                    deps.remove(&base_enc);
                }
            }
            drop(deps);
            self.delta_rebased.fetch_add(1, Ordering::Relaxed);
            rewritten += 1;
        }
        Ok(rewritten)
    }

    /// Chunk-occupancy counters of the tensor store, when the physical
    /// layer is content-addressed.
    pub fn chunk_stats(&self) -> Option<evostore_kv::ChunkStats> {
        self.store().record_chunk_stats()
    }

    /// Run `f` under a handler span joined to the caller's trace. The
    /// service thread installs the RPC envelope's [`TraceContext`]
    /// ambiently before invoking the handler; when present, the handler
    /// hop becomes a child span in the caller's trace (recorded in this
    /// provider's flight ring) and is re-installed ambiently so kv-op
    /// spans opened inside `f` nest under it. Untraced calls run `f`
    /// bare.
    ///
    /// [`TraceContext`]: evostore_obs::TraceContext
    fn traced<T>(
        &self,
        method: &'static str,
        f: impl FnOnce() -> Result<T, String>,
    ) -> Result<T, String> {
        let Some(parent) = current_trace() else {
            return f();
        };
        let mut span = self
            .tracer
            .start_child(parent, method, Some(self.endpoint_id));
        // Handlers run on provider service threads, so a fresh ambient
        // cost cell never shadows a client op's; charges land in this
        // provider's per-method ledger.
        let costs = OpCosts::new();
        let out = {
            let _g = evostore_obs::set_current_trace(Some(span.ctx()));
            let _c = install_costs(Some(Arc::clone(&costs)));
            f()
        };
        self.ledger.finish_op(method, out.is_ok(), &costs);
        if let Err(e) = &out {
            span.fail(e.clone());
        }
        span.finish();
        out
    }

    /// Per-method handler resource attribution (tests, diagnostics).
    pub fn ledger(&self) -> &Arc<OpLedger> {
        &self.ledger
    }

    /// A child span for a kv-store operation inside a traced handler
    /// (`None` when the request carried no trace context).
    fn kv_span(&self, name: &'static str) -> Option<Span<'_>> {
        current_trace().map(|parent| self.tracer.start_child(parent, name, None))
    }

    fn meta_key(model: ModelId) -> Vec<u8> {
        let mut k = b"meta/".to_vec();
        k.extend_from_slice(&model.0.to_le_bytes());
        k
    }

    fn persist_record(&self, model: ModelId, rec: &ModelRecord) {
        let blob = serde_json::to_vec(&rec.to_persisted()).expect("record serializes");
        self.meta_store
            .put(&Self::meta_key(model), bytes::Bytes::from(blob))
            .expect("persist catalog record");
    }

    fn unpersist_record(&self, model: ModelId) {
        let _ = self.meta_store.delete(&Self::meta_key(model));
    }

    /// Restore the catalog from the durable meta store and register every
    /// hosted tensor with a zero reference count. The deployment then
    /// replays reference counts from *all* providers' owner maps
    /// ([`crate::deployment::Deployment::reopen`]); counts are correct
    /// only after that pass completes.
    pub fn recover_catalog(&self) -> usize {
        let mut recovered = Vec::new();
        for key in self.meta_store.keys() {
            let Ok(blob) = self.meta_store.get(&key) else {
                continue;
            };
            let Ok(p) = serde_json::from_slice::<PersistedRecord>(&blob) else {
                continue;
            };
            let model = p.owner_map.model;
            self.clock.fetch_max(p.timestamp + 1, Ordering::Relaxed);
            recovered.push((model, ModelRecord::from_persisted(p)));
        }
        let restored = recovered.len();
        // One batched mutation: the whole recovered catalog becomes one
        // snapshot publication instead of one per record.
        self.mutate_catalog(|catalog| {
            for (model, rec) in recovered {
                catalog.insert(model, rec);
            }
        });
        // Adopt hosted tensors with zero counts; the deployment replay
        // brings them up to their true values.
        let mut hosted = Vec::new();
        self.store()
            .for_each_record_key(&mut |k| hosted.push(k.to_vec()));
        for key in &hosted {
            self.store().adopt_record(key);
        }
        // Rebuild the delta dependency index from record headers, so
        // reclaim fencing works across restarts.
        if self.delta.enabled {
            let mut deps: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
            for key in hosted {
                let Ok(rec) = self.store().get_record(&key) else {
                    continue;
                };
                if is_delta(&rec) {
                    if let Ok(head) = delta_header(&rec) {
                        deps.entry(head.base_key.to_vec()).or_default().push(key);
                    }
                }
            }
            *self.delta_deps.lock() = deps;
        }
        restored
    }

    /// Directly bump a hosted tensor's reference count (recovery replay).
    pub fn replay_ref(&self, key: TensorKey) -> Result<(), String> {
        self.store()
            .incr_adopted_record(&key.encode())
            .map_err(|e| format!("replay ref {key}: {e}"))?;
        Ok(())
    }

    /// Drop tensors whose replayed reference count stayed at zero,
    /// re-basing any deltas that depend on them first.
    pub fn purge_orphan_tensors(&self) -> Result<usize, String> {
        let bases: Vec<Vec<u8>> = self.delta_deps.lock().keys().cloned().collect();
        for enc in bases {
            if self.store().record_refs(&enc) == 0 && self.store().contains_record(&enc) {
                self.before_reclaim(&enc)?;
            }
        }
        self.store()
            .purge_zero_ref_records()
            .map_err(|e| e.to_string())
    }

    /// Handle a store request.
    pub fn handle_store(&self, req: StoreModelRequest) -> Result<StoreModelReply, String> {
        if req.owner_map.model != req.model {
            return Err(format!(
                "owner map belongs to {} but stores {}",
                req.owner_map.model, req.model
            ));
        }
        if req.owner_map.len() != req.graph.len() {
            return Err(format!(
                "owner map covers {} vertices, graph has {}",
                req.owner_map.len(),
                req.graph.len()
            ));
        }
        if !self.places_here(req.model) {
            return Err(format!(
                "model {} does not place on provider {}",
                req.model, self.index
            ));
        }
        if let Some(existing_ts) = self
            .catalog
            .read()
            .records
            .get(&req.model)
            .map(|r| r.timestamp)
        {
            return match req.timestamp {
                // A retried mirror leg whose first delivery applied (its
                // reply was lost): answer idempotently — re-pulling the
                // payload would double-count the tensor references.
                Some(ts) if existing_ts >= ts => Ok(StoreModelReply {
                    timestamp: existing_ts,
                    bytes_stored: 0,
                }),
                _ => Err(format!("model {} already stored", req.model)),
            };
        }

        // The manifest must carry exactly the self-owned tensors.
        let expected: std::collections::HashSet<TensorKey> = req
            .owner_map
            .self_owned()
            .flat_map(|v| req.owner_map.vertex(v).tensor_keys().collect::<Vec<_>>())
            .collect();
        let got: std::collections::HashSet<TensorKey> =
            req.manifest.iter().map(|m| m.key).collect();
        if expected != got {
            return Err(format!(
                "manifest carries {} tensors, owner map declares {} self-owned",
                got.len(),
                expected.len()
            ));
        }

        // One consolidated one-sided pull for the whole request. The
        // region may be vectored (one segment per tensor record when the
        // client skipped consolidation); manifest offsets address the
        // logical concatenation either way.
        let region = self
            .fabric
            .bulk_get_vec(evostore_rpc::BulkHandle(req.bulk))
            .map_err(|e| format!("bulk pull failed: {e}"))?;
        evostore_obs::ledger::add_chunks_touched(req.manifest.len() as u64);
        evostore_obs::ledger::add_bytes_in(region.len() as u64);

        // Validate the ENTIRE manifest before persisting anything, so a
        // malformed request can never leave partially-stored tensors with
        // no catalog entry referencing them. Entries are independent, so
        // the integrity + spec checks fan out across the rayon pool; the
        // default path verifies framing, dims and checksum via
        // `validate_record` without materializing a `TensorData`.
        let force_copy = self.force_copy.load(Ordering::Relaxed);
        if !force_copy {
            self.validate_par_batches.fetch_add(1, Ordering::Relaxed);
        }
        let validated = req
            .manifest
            .par_iter()
            .map(|entry| {
                let (off, len) = (entry.offset as usize, entry.len as usize);
                let record = region.slice(off, len).ok_or_else(|| {
                    format!(
                        "manifest entry {} out of bulk bounds ({} + {} > {})",
                        entry.key,
                        off,
                        len,
                        region.len()
                    )
                })?;
                // Integrity + spec check before persisting.
                let (shape, dtype) = if force_copy {
                    let tensor = read_tensor(record.clone())
                        .map_err(|e| format!("tensor {}: {e}", entry.key))?;
                    (tensor.shape().to_vec(), tensor.dtype())
                } else {
                    validate_record(&record).map_err(|e| format!("tensor {}: {e}", entry.key))?
                };
                let specs = req
                    .graph
                    .param_specs(evostore_tensor::VertexId(entry.key.vertex.0));
                let spec = specs
                    .iter()
                    .find(|s| s.slot == entry.key.slot)
                    .ok_or_else(|| format!("tensor {} has no spec in the graph", entry.key))?;
                if spec.shape != shape || spec.dtype != dtype {
                    return Err(format!(
                        "tensor {} does not match its layer spec ({:?} {} vs {:?} {})",
                        entry.key, shape, dtype, spec.shape, spec.dtype
                    ));
                }
                Ok((entry.key, record))
            })
            .collect::<Result<Vec<_>, String>>()?;

        // When delta encoding is on and the parent is cataloged locally,
        // each self-owned tensor may be stored as a delta against the
        // parent's tensor at the same vertex/slot (only when the base is
        // co-located and the delta actually saves space).
        let parent_map = if self.delta.enabled {
            req.parent.and_then(|p| {
                self.catalog
                    .read()
                    .records
                    .get(&p)
                    .map(|r| r.owner_map.clone())
            })
        } else {
            None
        };

        let kv = self.kv_span("kv.put_tensors");
        let mut bytes_stored = 0u64;
        for (key, record) in validated {
            bytes_stored += record.len() as u64;
            let delta = parent_map
                .as_ref()
                .and_then(|map| self.try_delta_encode(key, &record, map));
            match delta {
                Some((blob, base_enc)) => {
                    self.store()
                        .put_record(&key.encode(), blob, 1)
                        .map_err(|e| format!("store tensor {key}: {e}"))?;
                    self.delta_deps
                        .lock()
                        .entry(base_enc)
                        .or_default()
                        .push(key.encode().to_vec());
                    self.delta_stored.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    self.store()
                        .put_record(&key.encode(), record, 1)
                        .map_err(|e| format!("store tensor {key}: {e}"))?;
                }
            }
        }
        drop(kv);

        let timestamp = match req.timestamp {
            // Mirror leg: adopt the stamp the first replica assigned and
            // keep the shared clock ahead of it, so every replica of the
            // model records the same write order.
            Some(ts) => {
                self.clock.fetch_max(ts + 1, Ordering::Relaxed);
                ts
            }
            None => self.clock.fetch_add(1, Ordering::Relaxed),
        };
        let record = ModelRecord {
            graph: Arc::new(req.graph),
            owner_map: req.owner_map,
            parent: req.parent,
            quality: req.quality,
            timestamp,
            optimizer_keys: Vec::new(),
        };
        self.persist_record(req.model, &record);
        self.mutate_catalog(|c| c.insert(req.model, record));
        Ok(StoreModelReply {
            timestamp,
            bytes_stored,
        })
    }

    /// Handle a metadata fetch — lock-free: served from the published
    /// catalog snapshot.
    pub fn handle_get_meta(&self, req: GetMetaRequest) -> Result<ModelMetaReply, String> {
        let snap = self.catalog_snapshot();
        let rec = snap
            .get(req.model)
            .ok_or_else(|| format!("model {} not found", req.model))?;
        Ok(ModelMetaReply {
            graph: (*rec.graph).clone(),
            owner_map: rec.owner_map.clone(),
            parent: rec.parent,
            quality: rec.quality,
            timestamp: rec.timestamp,
        })
    }

    /// The encoded-bytes fast path behind the `GET_META` handler: build
    /// (and deep-clone the compact graph) at most once per stored record
    /// incarnation, then serve the cached JSON encoding. The cache entry
    /// is keyed by record timestamp, so a re-store or anti-entropy sync
    /// that installs a newer record invalidates it implicitly.
    fn get_meta_encoded(&self, req: GetMetaRequest) -> Result<Bytes, String> {
        let snap = self.catalog_snapshot();
        let rec = snap
            .get(req.model)
            .ok_or_else(|| format!("model {} not found", req.model))?;
        if let Some(blob) = self.meta_replies.get(req.model, rec.timestamp) {
            return Ok(blob);
        }
        let reply = ModelMetaReply {
            graph: (*rec.graph).clone(),
            owner_map: rec.owner_map.clone(),
            parent: rec.parent,
            quality: rec.quality,
            timestamp: rec.timestamp,
        };
        let blob = Bytes::from(serde_json::to_vec(&reply).map_err(|e| format!("encode: {e}"))?);
        self.meta_replies
            .insert(req.model, reply.timestamp, blob.clone());
        Ok(blob)
    }

    /// Handle a tensor read: gather the requested tensors into one
    /// freshly exposed bulk region. Per-key kv lookups fan out across
    /// the rayon pool; memory-resident records are appended to the
    /// region as shared-buffer clones (`get_ref`, zero copy), anything
    /// else falls back to a copying `get`. The forced-copy lever
    /// restores the old behavior: one consolidation memcpy into a
    /// contiguous region.
    pub fn handle_read(&self, req: ReadTensorsRequest) -> Result<ReadTensorsReply, String> {
        let force_copy = self.force_copy.load(Ordering::Relaxed);
        let kv = self.kv_span("kv.read_tensors");
        let records = req
            .keys
            .par_iter()
            .map(|key| {
                if !self.places_here(key.owner) {
                    return Err(format!(
                        "tensor {key} is not hosted by provider {}",
                        self.index
                    ));
                }
                let enc = key.encode();
                // The delta-preserving sync driver reads *stored* record
                // bytes verbatim — a delta record crosses the wire as the
                // delta, never materialized.
                if req.raw_records {
                    if let Some(record) = self.store().get_record_ref(&enc) {
                        return Ok((record, true));
                    }
                    return self
                        .store()
                        .get_record(&enc)
                        .map(|record| (record, false))
                        .map_err(|_| format!("tensor {key} not stored"));
                }
                if !force_copy {
                    if let Some(record) = self.store().get_record_ref(&enc) {
                        // A delta record must be reconstructed before it
                        // leaves the provider; it counts as a fallback
                        // (the reply buffer is freshly built).
                        if !is_delta(&record) {
                            return Ok((record, true));
                        }
                        return self
                            .materialize(record)
                            .map(|r| (r, false))
                            .map_err(|e| format!("tensor {key}: {e}"));
                    }
                }
                let record = self
                    .store()
                    .get_record(&enc)
                    .map_err(|_| format!("tensor {key} not stored"))?;
                self.materialize(record)
                    .map(|r| (r, false))
                    .map_err(|e| format!("tensor {key}: {e}"))
            })
            .collect::<Result<Vec<(Bytes, bool)>, String>>()?;
        drop(kv);
        let manifest = self.logical_manifest(&req.keys, &records);
        evostore_obs::ledger::add_chunks_touched(manifest.len() as u64);
        evostore_obs::ledger::add_bytes_out(manifest.iter().map(|e| e.len).sum());
        let bulk = self.expose_records(records, force_copy);
        Ok(ReadTensorsReply {
            manifest,
            bulk: bulk.0,
        })
    }

    /// Manifest over the *logical* concatenation of `records` (offsets
    /// accumulate record lengths; no buffer is built), tallying the
    /// zero-copy/fallback read counters as it goes.
    fn logical_manifest(
        &self,
        keys: &[TensorKey],
        records: &[(Bytes, bool)],
    ) -> Vec<ManifestEntry> {
        let mut manifest = Vec::with_capacity(records.len());
        let mut offset = 0u64;
        let (mut zero_copy, mut fallback) = (0u64, 0u64);
        for (key, (record, shared)) in keys.iter().zip(records) {
            manifest.push(ManifestEntry {
                key: *key,
                offset,
                len: record.len() as u64,
            });
            offset += record.len() as u64;
            if *shared {
                zero_copy += 1;
            } else {
                fallback += 1;
            }
        }
        self.zero_copy_reads.fetch_add(zero_copy, Ordering::Relaxed);
        self.copy_fallback_reads
            .fetch_add(fallback, Ordering::Relaxed);
        manifest
    }

    /// Expose fetched records as a bulk region: vectored (each record
    /// becomes a segment, no copy) by default, or consolidated into one
    /// contiguous buffer under the forced-copy lever.
    fn expose_records(
        &self,
        records: Vec<(Bytes, bool)>,
        force_copy: bool,
    ) -> evostore_rpc::BulkHandle {
        if force_copy {
            let total: usize = records.iter().map(|(r, _)| r.len()).sum();
            let mut buf = BytesMut::with_capacity(total);
            for (record, _) in &records {
                buf.extend_from_slice(record);
            }
            self.fabric.bulk_expose(buf.freeze())
        } else {
            let segments: Vec<Bytes> = records.into_iter().map(|(r, _)| r).collect();
            self.bulk_segments_exposed
                .fetch_add(segments.len() as u64, Ordering::Relaxed);
            self.fabric.bulk_expose_vec(segments)
        }
    }

    /// Handle reference-count increments (pinning a new descendant's
    /// inherited tensors).
    ///
    /// Idempotent per [`RefsRequest::op_id`]: a retry of an operation that
    /// already applied (its reply was lost in flight) is answered from
    /// cache without touching the counts.
    pub fn handle_incr_refs(&self, req: RefsRequest) -> Result<RefsReply, String> {
        if let Some(reply) = self.refs_ops.lock().get(req.op_id) {
            return Ok(reply);
        }
        // Check-then-apply: a missing tensor indicates the ancestor was
        // retired between query and pin; the whole request fails and the
        // client re-queries.
        for key in &req.keys {
            if !self.store().contains_record(&key.encode()) {
                return Err(format!("tensor {key} no longer stored (ancestor retired?)"));
            }
        }
        for key in &req.keys {
            self.store()
                .incr_record(&key.encode())
                .map_err(|e| format!("incr {key}: {e}"))?;
        }
        let reply = RefsReply {
            applied: req.keys.len(),
            reclaimed: 0,
        };
        self.refs_ops.lock().record(req.op_id, reply.clone());
        Ok(reply)
    }

    /// Handle reference-count decrements (model retirement); tensors whose
    /// count reaches zero are reclaimed.
    ///
    /// Idempotent per [`RefsRequest::op_id`] (see
    /// [`ProviderState::handle_incr_refs`]) — essential here, because a
    /// duplicated decrement would drop a shared tensor's count to zero
    /// and delete data still referenced by live models.
    pub fn handle_decr_refs(&self, req: RefsRequest) -> Result<RefsReply, String> {
        if let Some(reply) = self.refs_ops.lock().get(req.op_id) {
            return Ok(reply);
        }
        // Check-then-apply so a malformed request fails whole: no keys
        // decremented when any key is unknown.
        for key in &req.keys {
            if !self.store().contains_record(&key.encode()) {
                return Err(format!("decr {key}: not stored"));
            }
        }
        let mut reclaimed = 0usize;
        for key in &req.keys {
            let enc = key.encode();
            if self.store().record_refs(&enc) == 1 {
                self.before_reclaim(&enc)
                    .map_err(|e| format!("decr {key}: {e}"))?;
            }
            match self.store().decr_record(&enc) {
                Ok(0) => reclaimed += 1,
                Ok(_) => {}
                Err(e) => return Err(format!("decr {key}: {e}")),
            }
        }
        let reply = RefsReply {
            applied: req.keys.len(),
            reclaimed,
        };
        self.refs_ops.lock().record(req.op_id, reply.clone());
        Ok(reply)
    }

    /// Handle a provider-side LCP scan and return the best match (longest
    /// prefix; quality breaks ties; lower model id breaks exact ties
    /// deterministically).
    ///
    /// The default path consults the [`ArchIndex`]: one `lcp()` per
    /// distinct non-memoized architecture whose root matches the query
    /// and whose vertex count can still beat the best length so far. The
    /// unindexed path (A/B measurement, [`ProviderState::set_index_enabled`])
    /// scans every stored model in parallel; both return identical
    /// candidates.
    pub fn handle_lcp(&self, req: LcpQueryRequest) -> Result<LcpQueryReply, String> {
        let snap = self.catalog_snapshot();
        let reply = self.lcp_reply_on(&snap, &req.graph);
        self.query_stats.note(reply.stats);
        Ok(reply)
    }

    /// Answer one LCP query against a pinned snapshot (shared by the
    /// single-query and batched handlers; the caller accumulates stats).
    fn lcp_reply_on(&self, snap: &CatalogSnapshot, g: &CompactGraph) -> LcpQueryReply {
        if self.index_enabled.load(Ordering::Relaxed) {
            let use_prefilter = self.prefilter_enabled.load(Ordering::Relaxed);
            let (best, stats) = snap.index.best_ancestor_with(g, use_prefilter);
            return LcpQueryReply {
                best: best.map(|c| LcpCandidate {
                    model: c.model,
                    quality: c.quality,
                    lcp: (*c.lcp).clone(),
                }),
                scanned: stats.scanned as usize,
                stats,
            };
        }

        let candidates: Vec<(ModelId, Arc<CompactGraph>, f64)> = snap
            .records()
            .map(|(id, rec)| (id, Arc::clone(&rec.graph), rec.quality))
            .collect();
        let scanned = candidates.len();
        let best = candidates
            .into_par_iter()
            .map(|(model, graph, quality)| {
                let r = lcp(g, &graph);
                (model, quality, r)
            })
            .filter(|(_, _, r)| !r.is_empty())
            .max_by(|(ma, qa, ra), (mb, qb, rb)| {
                ra.len()
                    .cmp(&rb.len())
                    .then(qa.partial_cmp(qb).unwrap_or(std::cmp::Ordering::Equal))
                    .then(mb.cmp(ma)) // lower id wins => treat lower as greater
            })
            .map(|(model, quality, lcp)| LcpCandidate {
                model,
                quality,
                lcp,
            });
        let stats = IndexQueryStats {
            candidates: scanned as u64,
            scanned: scanned as u64,
            ..IndexQueryStats::default()
        };
        LcpQueryReply {
            best,
            scanned,
            stats,
        }
    }

    /// Handle a batched LCP scan: every query in the envelope is answered
    /// against *one* pinned snapshot (coherent across the batch), fanned
    /// across the rayon pool. Dispatch, tracing, and snapshot acquisition
    /// are paid once per envelope instead of once per query.
    pub fn handle_lcp_batch(&self, req: LcpBatchRequest) -> Result<LcpBatchReply, String> {
        let snap = self.catalog_snapshot();
        let replies: Vec<LcpQueryReply> = req
            .graphs
            .par_iter()
            .map(|g| self.lcp_reply_on(&snap, g))
            .collect();
        let agg = replies
            .iter()
            .fold(IndexQueryStats::default(), |acc, r| acc.merge(r.stats));
        self.query_stats.note(agg);
        self.batch_envelopes.fetch_add(1, Ordering::Relaxed);
        self.batch_queries
            .fetch_add(req.graphs.len() as u64, Ordering::Relaxed);
        Ok(LcpBatchReply { replies })
    }

    /// Handle metadata retirement. The caller receives the owner map and
    /// is responsible for the decrement fan-out.
    pub fn handle_retire_meta(&self, req: RetireMetaRequest) -> Result<RetireMetaReply, String> {
        let rec = self
            .mutate_catalog(|c| c.remove(req.model))
            .ok_or_else(|| format!("model {} not found", req.model))?;
        self.unpersist_record(req.model);
        self.meta_replies.remove(req.model);
        // Tombstone the retirement so anti-entropy can tell a replica
        // that missed this retirement from one that missed a newer
        // store of the same id.
        let retired_at = self.clock.fetch_add(1, Ordering::Relaxed);
        self.record_tombstone(Tombstone {
            model: req.model,
            record_timestamp: rec.timestamp,
            retired_at,
        });
        // Optimizer state is model-private and replica-local: each
        // replica reclaims its own copy on its retire leg.
        for key in &rec.optimizer_keys {
            let enc = key.encode();
            if self.store().record_refs(&enc) == 1 {
                let _ = self.before_reclaim(&enc);
            }
            let _ = self.store().decr_record(&enc);
        }
        Ok(RetireMetaReply {
            owner_map: rec.owner_map.clone(),
            timestamp: rec.timestamp,
        })
    }

    /// Record a retirement, keeping the newest incarnation per model.
    fn record_tombstone(&self, t: Tombstone) {
        let mut tombs = self.tombstones.lock();
        let entry = tombs.entry(t.model).or_insert(t);
        if (t.record_timestamp, t.retired_at) > (entry.record_timestamp, entry.retired_at) {
            *entry = t;
        }
    }

    /// Handle a partial (element-range) tensor read.
    pub fn handle_read_range(&self, req: ReadRangeRequest) -> Result<ReadRangeReply, String> {
        if !self.places_here(req.key.owner) {
            return Err(format!(
                "tensor {} is not hosted by provider {}",
                req.key, self.index
            ));
        }
        let record = self
            .resolve_record(&req.key.encode())
            .map_err(|e| format!("tensor {}: {e}", req.key))?;
        let (range, dtype) = evostore_tensor::payload_range(&record)
            .map_err(|e| format!("tensor {}: {e}", req.key))?;
        let esz = dtype.size_of() as u64;
        let start = range.start as u64 + req.elem_offset * esz;
        let end = start + req.elem_count * esz;
        if end > range.end as u64 {
            return Err(format!(
                "range {}+{} elements out of bounds for tensor {}",
                req.elem_offset, req.elem_count, req.key
            ));
        }
        let slice = record.slice(start as usize..end as usize);
        let bulk = self.fabric.bulk_expose(slice);
        Ok(ReadRangeReply {
            dtype_tag: dtype.tag(),
            bulk: bulk.0,
        })
    }

    /// Handle a catalog pattern scan. Patterns are architecture-only
    /// predicates, so the indexed path evaluates each *distinct*
    /// architecture once and fans the verdict out to every model in its
    /// bucket; the unindexed path tests every record in parallel.
    pub fn handle_match_pattern(
        &self,
        req: PatternQueryRequest,
    ) -> Result<PatternQueryReply, String> {
        let snap = self.catalog_snapshot();
        let reply = self.pattern_reply_on(&snap, &req.pattern);
        self.query_stats.note(reply.stats);
        Ok(reply)
    }

    /// Answer one pattern query against a pinned snapshot (shared by the
    /// single-query and batched handlers; the caller accumulates stats).
    fn pattern_reply_on(&self, snap: &CatalogSnapshot, pattern: &ArchPattern) -> PatternQueryReply {
        if self.index_enabled.load(Ordering::Relaxed) {
            let use_prefilter = self.prefilter_enabled.load(Ordering::Relaxed);
            let (matches, stats) = snap.index.match_pattern_with(pattern, use_prefilter);
            return PatternQueryReply {
                matches,
                scanned: stats.scanned as usize,
                stats,
            };
        }

        let candidates: Vec<(ModelId, Arc<CompactGraph>, f64)> = snap
            .records()
            .map(|(id, rec)| (id, Arc::clone(&rec.graph), rec.quality))
            .collect();
        let scanned = candidates.len();
        let mut matches: Vec<(ModelId, f64)> = candidates
            .into_par_iter()
            .filter(|(_, g, _)| pattern.matches(g))
            .map(|(id, _, q)| (id, q))
            .collect();
        matches.sort_by_key(|a| a.0);
        let stats = IndexQueryStats {
            candidates: scanned as u64,
            scanned: scanned as u64,
            ..IndexQueryStats::default()
        };
        PatternQueryReply {
            matches,
            scanned,
            stats,
        }
    }

    /// Handle a batched pattern scan against one pinned snapshot (see
    /// [`ProviderState::handle_lcp_batch`]).
    pub fn handle_match_pattern_batch(
        &self,
        req: PatternBatchRequest,
    ) -> Result<PatternBatchReply, String> {
        let snap = self.catalog_snapshot();
        let replies: Vec<PatternQueryReply> = req
            .patterns
            .par_iter()
            .map(|p| self.pattern_reply_on(&snap, p))
            .collect();
        let agg = replies
            .iter()
            .fold(IndexQueryStats::default(), |acc, r| acc.merge(r.stats));
        self.query_stats.note(agg);
        self.batch_envelopes.fetch_add(1, Ordering::Relaxed);
        self.batch_queries
            .fetch_add(req.patterns.len() as u64, Ordering::Relaxed);
        Ok(PatternBatchReply { replies })
    }

    /// Handle attaching optimizer state to a stored model.
    pub fn handle_store_optimizer(
        &self,
        req: StoreOptimizerRequest,
    ) -> Result<StoreModelReply, String> {
        let region = self
            .fabric
            .bulk_get(evostore_rpc::BulkHandle(req.bulk))
            .map_err(|e| format!("bulk pull failed: {e}"))?;

        // Validate everything first (see handle_store): no partial state
        // on malformed requests.
        let mut validated = Vec::with_capacity(req.manifest.len());
        for entry in &req.manifest {
            if entry.key.owner != req.model || entry.key.vertex.0 != u32::MAX {
                return Err(format!(
                    "optimizer tensor {} must use the owner's optimizer namespace",
                    entry.key
                ));
            }
            let (off, len) = (entry.offset as usize, entry.len as usize);
            if off
                .checked_add(len)
                .map(|end| end > region.len())
                .unwrap_or(true)
            {
                return Err(format!(
                    "optimizer manifest entry {} out of bounds",
                    entry.key
                ));
            }
            let record = region.slice(off..off + len);
            evostore_tensor::read_tensor(record.clone())
                .map_err(|e| format!("optimizer tensor {}: {e}", entry.key))?;
            validated.push((entry.key, record));
        }
        // Attach under the write lock (check-then-act vs concurrent
        // attaches stays atomic); the records are shared `Arc`s, so the
        // mutation copies-on-write and the published snapshot picks up
        // the new incarnation without disturbing pinned readers.
        let (rec_clone, timestamp, bytes_stored) = self.mutate_catalog(|catalog| {
            let rec = catalog
                .records
                .get_mut(&req.model)
                .ok_or_else(|| format!("model {} not found", req.model))?;
            if !rec.optimizer_keys.is_empty() {
                return Err(format!("model {} already has optimizer state", req.model));
            }
            let mut bytes_stored = 0u64;
            let mut keys = Vec::with_capacity(validated.len());
            for (key, record) in validated {
                bytes_stored += record.len() as u64;
                self.store()
                    .put_record(&key.encode(), record, 1)
                    .map_err(|e| format!("store optimizer tensor {key}: {e}"))?;
                keys.push(key);
            }
            let rec = Arc::make_mut(rec);
            rec.optimizer_keys = keys;
            Ok::<_, String>((rec.clone(), rec.timestamp, bytes_stored))
        })?;
        self.persist_record(req.model, &rec_clone);
        Ok(StoreModelReply {
            timestamp,
            bytes_stored,
        })
    }

    /// Handle fetching a model's optimizer state.
    pub fn handle_load_optimizer(
        &self,
        req: LoadOptimizerRequest,
    ) -> Result<ReadTensorsReply, String> {
        let keys = {
            let snap = self.catalog_snapshot();
            let rec = snap
                .get(req.model)
                .ok_or_else(|| format!("model {} not found", req.model))?;
            rec.optimizer_keys.clone()
        };
        // Same zero-copy gather as `handle_read`: memory-resident
        // optimizer tensors become shared segments, disk-resident ones
        // fall back to a copying `get`.
        let force_copy = self.force_copy.load(Ordering::Relaxed);
        let records = keys
            .par_iter()
            .map(|key| {
                let enc = key.encode();
                if !force_copy {
                    if let Some(record) = self.store().get_record_ref(&enc) {
                        return Ok((record, true));
                    }
                }
                self.store()
                    .get_record(&enc)
                    .map(|record| (record, false))
                    .map_err(|_| format!("optimizer tensor {key} not stored"))
            })
            .collect::<Result<Vec<(Bytes, bool)>, String>>()?;
        let manifest = self.logical_manifest(&keys, &records);
        let bulk = self.expose_records(records, force_copy);
        Ok(ReadTensorsReply {
            manifest,
            bulk: bulk.0,
        })
    }

    // ---- anti-entropy repair --------------------------------------------

    /// Handle a digest request: summarize every cataloged model (id,
    /// timestamp, referenced tensor keys) and every witnessed
    /// retirement. The repair pass unions these across providers to
    /// find stale or under-replicated replicas.
    pub fn handle_digest(&self, _req: DigestRequest) -> Result<DigestReply, String> {
        let models = {
            let snap = self.catalog_snapshot();
            snap.records()
                .map(|(model, rec)| ModelDigest {
                    model,
                    timestamp: rec.timestamp,
                    ref_keys: rec.owner_map.all_tensor_keys(),
                    optimizer_keys: rec.optimizer_keys.clone(),
                })
                .collect()
        };
        let tombstones = self.tombstones.lock().values().copied().collect();
        Ok(DigestReply {
            provider_index: self.index,
            models,
            tombstones,
        })
    }

    /// Handle a model sync: install the record and its tensor payloads
    /// unless the local copy is already at least as new. Payloads come
    /// from a peer replica that validated them at original store time,
    /// so only framing integrity is re-checked here.
    pub fn handle_sync_model(&self, req: SyncModelRequest) -> Result<SyncModelReply, String> {
        if !self.places_here(req.model) {
            return Err(format!(
                "model {} does not place on provider {}",
                req.model, self.index
            ));
        }
        if let Some((ts, opt_len)) = self
            .catalog
            .read()
            .records
            .get(&req.model)
            .map(|r| (r.timestamp, r.optimizer_keys.len()))
        {
            // Equal-timestamp records can still differ: attaching
            // optimizer state does not bump the write stamp, so a
            // replica that missed only the attachment is stale despite
            // matching timestamps.
            let req_opt = req
                .manifest
                .iter()
                .filter(|e| e.key.vertex.0 == u32::MAX)
                .count();
            if ts > req.timestamp || (ts == req.timestamp && opt_len >= req_opt) {
                return Ok(SyncModelReply {
                    applied: false,
                    tensors_stored: 0,
                });
            }
        }
        let region = self
            .fabric
            .bulk_get(evostore_rpc::BulkHandle(req.bulk))
            .map_err(|e| format!("bulk pull failed: {e}"))?;
        evostore_obs::ledger::add_bytes_in(region.len() as u64);
        let mut validated = Vec::with_capacity(req.manifest.len());
        for entry in &req.manifest {
            let (off, len) = (entry.offset as usize, entry.len as usize);
            if off
                .checked_add(len)
                .map(|end| end > region.len())
                .unwrap_or(true)
            {
                return Err(format!("sync manifest entry {} out of bounds", entry.key));
            }
            let record = region.slice(off..off + len);
            if req.raw_records && is_delta(&record) {
                // Delta-preserving leg: the payload is the source's
                // stored EVDL record shipped verbatim. Validate the
                // delta framing and require the base to be resolvable
                // here (already stored, or part of this same sync) —
                // otherwise the driver must fall back to a
                // materialized sync.
                let head =
                    delta_header(&record).map_err(|e| format!("tensor {}: {e}", entry.key))?;
                if !self.delta.enabled {
                    return Err(format!(
                        "tensor {}: delta record shipped to a delta-disabled provider",
                        entry.key
                    ));
                }
                let base_local = self.store().contains_record(&head.base_key);
                let base_inbound = req.manifest.iter().any(|m| m.key.encode() == head.base_key);
                if !base_local && !base_inbound {
                    return Err(format!(
                        "tensor {}: delta base not present on the target",
                        entry.key
                    ));
                }
            } else {
                read_tensor(record.clone()).map_err(|e| format!("tensor {}: {e}", entry.key))?;
            }
            validated.push((entry.key, record));
        }
        // Replace a stale record (an older incarnation under the same
        // id); its private optimizer copies go with it.
        if let Some(old) = self.mutate_catalog(|c| c.remove(req.model)) {
            for key in &old.optimizer_keys {
                let enc = key.encode();
                if self.store().record_refs(&enc) == 1 {
                    let _ = self.before_reclaim(&enc);
                }
                let _ = self.store().decr_record(&enc);
            }
        }
        let mut tensors_stored = 0usize;
        for (key, record) in validated {
            // Already-present payloads keep their count: the refs sync
            // that follows installs the authoritative values. On the
            // default (materialized) leg payloads arrive raw; under
            // `raw_records` a delta record is installed verbatim and
            // its reclaim fencing registered on arrival.
            let enc = key.encode();
            if !self.store().contains_record(&enc) {
                let delta_head = if req.raw_records && is_delta(&record) {
                    Some(delta_header(&record).map_err(|e| format!("tensor {key}: {e}"))?)
                } else {
                    None
                };
                let record_len = record.len() as u64;
                self.store()
                    .put_record(&enc, record, 1)
                    .map_err(|e| format!("sync tensor {key}: {e}"))?;
                if let Some(head) = delta_head {
                    self.delta_deps
                        .lock()
                        .entry(head.base_key.to_vec())
                        .or_default()
                        .push(enc.to_vec());
                    self.delta_stored.fetch_add(1, Ordering::Relaxed);
                    self.transfer_deltas_shipped.fetch_add(1, Ordering::Relaxed);
                    self.transfer_bytes_saved.fetch_add(
                        (head.raw_len as u64).saturating_sub(record_len),
                        Ordering::Relaxed,
                    );
                }
                tensors_stored += 1;
            }
        }
        self.clock.fetch_max(req.timestamp + 1, Ordering::Relaxed);
        let mut optimizer_keys: Vec<TensorKey> = req
            .manifest
            .iter()
            .map(|e| e.key)
            .filter(|k| k.vertex.0 == u32::MAX)
            .collect();
        optimizer_keys.sort_by_key(|k| k.slot);
        let record = ModelRecord {
            graph: Arc::new(req.graph),
            owner_map: req.owner_map,
            parent: req.parent,
            quality: req.quality,
            timestamp: req.timestamp,
            optimizer_keys,
        };
        self.persist_record(req.model, &record);
        self.mutate_catalog(|c| c.insert(req.model, record));
        Ok(SyncModelReply {
            applied: true,
            tensors_stored,
        })
    }

    // ---- derivative-aware transfer plane --------------------------------

    /// Assemble at most [`DELTA_PROBE_LEN`] head bytes of a chunked
    /// record from its leading chunks — `provided` payloads first, the
    /// local chunk store second — and return the record's delta header
    /// (`None` for raw records). Framing is validated without ever
    /// assembling the record.
    fn probe_chunked_framing(
        &self,
        key: TensorKey,
        total: u64,
        hashes: &[[u8; 16]],
        provided: &HashMap<u128, Bytes>,
    ) -> Result<Option<DeltaHeader>, String> {
        let mut prefix = BytesMut::new();
        for hb in hashes {
            if prefix.len() >= DELTA_PROBE_LEN || prefix.len() as u64 >= total {
                break;
            }
            let h = wire_hash(hb);
            let chunk = match provided.get(&h.0) {
                Some(c) => c.clone(),
                None => match self.store().record_chunk_fetch(h) {
                    Some(Ok(c)) => c,
                    Some(Err(_)) | None => {
                        return Err(format!(
                            "record {key}: head chunk {:032x} unavailable for framing validation",
                            h.0
                        ))
                    }
                },
            };
            prefix.extend_from_slice(&chunk);
        }
        if !is_delta(&prefix) {
            return Ok(None);
        }
        delta_probe(&prefix, total as usize)
            .map(Some)
            .map_err(|e| format!("record {key}: {e}"))
    }

    /// Handle a transfer-manifest request (sync source side): describe
    /// how each record's *stored* bytes decompose into content-addressed
    /// chunks and delta linkage, without materializing anything — the
    /// opening move of a chunk-negotiated sync.
    pub fn handle_transfer_manifest(
        &self,
        req: TransferManifestRequest,
    ) -> Result<TransferManifestReply, String> {
        let chunk = self.store().record_chunk_stats();
        let (chunked, chunk_size) = match &chunk {
            Some(s) => (true, s.chunk_size),
            None => (false, 0),
        };
        let no_push = HashMap::new();
        let mut records = Vec::with_capacity(req.keys.len());
        for key in &req.keys {
            let enc = key.encode();
            let rec = match self.store().record_chunk_listing(&enc) {
                Some(Ok((total, hashes))) => {
                    let wire: Vec<[u8; 16]> = hashes.iter().map(|h| h.to_bytes()).collect();
                    let head = self.probe_chunked_framing(*key, total as u64, &wire, &no_push)?;
                    let (delta_base, delta_depth) = delta_linkage(*key, head)?;
                    TransferRecord {
                        key: *key,
                        total: total as u64,
                        hashes: wire,
                        delta_base,
                        delta_depth,
                    }
                }
                Some(Err(_)) => return Err(format!("tensor {key} not stored")),
                None => {
                    // Whole layout: no chunk negotiation, but the delta
                    // linkage still drives the delta-preserving leg.
                    let stored = self
                        .store()
                        .get_record(&enc)
                        .map_err(|_| format!("tensor {key} not stored"))?;
                    let head = if is_delta(&stored) {
                        Some(delta_header(&stored).map_err(|e| format!("tensor {key}: {e}"))?)
                    } else {
                        None
                    };
                    let (delta_base, delta_depth) = delta_linkage(*key, head)?;
                    TransferRecord {
                        key: *key,
                        total: stored.len() as u64,
                        hashes: Vec::new(),
                        delta_base,
                        delta_depth,
                    }
                }
            };
            records.push(rec);
        }
        Ok(TransferManifestReply {
            chunked,
            chunk_size,
            records,
        })
    }

    /// Handle a possession probe (sync target side): which of the
    /// offered chunks — and record keys, for delta-base fencing — are
    /// already held here.
    pub fn handle_have_chunks(&self, req: HaveChunksRequest) -> Result<HaveChunksReply, String> {
        let chunk = self.store().record_chunk_stats();
        let (chunked, chunk_size) = match &chunk {
            Some(s) => (true, s.chunk_size),
            None => (false, 0),
        };
        let hashes: Vec<ContentHash> = req.hashes.iter().map(wire_hash).collect();
        let have_chunks = self
            .store()
            .record_chunk_probe(&hashes)
            .unwrap_or_else(|| vec![false; hashes.len()]);
        let have_records = req
            .keys
            .iter()
            .map(|k| self.store().contains_record(&k.encode()))
            .collect();
        self.transfer_chunks_offered
            .fetch_add(req.hashes.len() as u64, Ordering::Relaxed);
        self.transfer_chunks_skipped.fetch_add(
            have_chunks.iter().filter(|b| **b).count() as u64,
            Ordering::Relaxed,
        );
        Ok(HaveChunksReply {
            chunked,
            chunk_size,
            have_chunks,
            have_records,
        })
    }

    /// Handle a chunk read (sync source side): the requested chunk
    /// payloads, by content hash, as one vectored bulk region of shared
    /// buffers (the caller releases it).
    pub fn handle_read_chunks(&self, req: ReadChunksRequest) -> Result<ReadChunksReply, String> {
        let mut lens = Vec::with_capacity(req.hashes.len());
        let mut segments = Vec::with_capacity(req.hashes.len());
        for hb in &req.hashes {
            let h = wire_hash(hb);
            let chunk = match self.store().record_chunk_fetch(h) {
                Some(Ok(c)) => c,
                Some(Err(e)) => return Err(format!("chunk {:032x}: {e}", h.0)),
                None => return Err("store is not content-addressed".into()),
            };
            lens.push(chunk.len() as u64);
            segments.push(chunk);
        }
        evostore_obs::ledger::add_bytes_out(lens.iter().sum());
        evostore_obs::ledger::add_chunks_touched(segments.len() as u64);
        self.transfer_chunks_sent
            .fetch_add(segments.len() as u64, Ordering::Relaxed);
        self.bulk_segments_exposed
            .fetch_add(segments.len() as u64, Ordering::Relaxed);
        let bulk = self.fabric.bulk_expose_vec(segments);
        Ok(ReadChunksReply { lens, bulk: bulk.0 })
    }

    /// Handle a chunk-negotiated, delta-preserving model sync: install
    /// the record from transfer manifests plus only the pushed
    /// (receiver-missing) chunks. Tensors are never materialized on
    /// either side; delta-encoded records arrive verbatim with their
    /// reclaim fencing registered. Staleness rules match
    /// [`ProviderState::handle_sync_model`]; any validation failure
    /// leaves the driver to fall back to a materialized sync.
    pub fn handle_sync_chunks(&self, req: SyncChunksRequest) -> Result<SyncChunksReply, String> {
        if !self.places_here(req.model) {
            return Err(format!(
                "model {} does not place on provider {}",
                req.model, self.index
            ));
        }
        if req.pushed.len() != req.lens.len() {
            return Err("pushed/lens length mismatch".into());
        }
        if let Some((ts, opt_len)) = self
            .catalog
            .read()
            .records
            .get(&req.model)
            .map(|r| (r.timestamp, r.optimizer_keys.len()))
        {
            let req_opt = req
                .records
                .iter()
                .filter(|e| e.key.vertex.0 == u32::MAX)
                .count();
            if ts > req.timestamp || (ts == req.timestamp && opt_len >= req_opt) {
                return Ok(SyncChunksReply {
                    applied: false,
                    records_stored: 0,
                    bytes_saved: 0,
                });
            }
        }
        let region = self
            .fabric
            .bulk_get_vec(evostore_rpc::BulkHandle(req.bulk))
            .map_err(|e| format!("bulk pull failed: {e}"))?;
        evostore_obs::ledger::add_bytes_in(region.len() as u64);
        evostore_obs::ledger::add_chunks_touched(req.pushed.len() as u64);
        // Frame and content-verify every pushed chunk before touching
        // any state: a malformed push can never leave partially-stored
        // records.
        let mut provided: HashMap<u128, Bytes> = HashMap::with_capacity(req.pushed.len());
        let mut off = 0usize;
        for (hb, len) in req.pushed.iter().zip(&req.lens) {
            let len = *len as usize;
            let chunk = region.slice(off, len).ok_or_else(|| {
                format!(
                    "pushed chunk out of bulk bounds ({off} + {len} > {})",
                    region.len()
                )
            })?;
            off += len;
            let h = wire_hash(hb);
            if ContentHash::of_bytes(&chunk) != h {
                return Err(format!("pushed chunk {:032x} fails its content hash", h.0));
            }
            provided.insert(h.0, chunk);
        }
        // Validate every record's claimed delta linkage from its head
        // chunk — available pre-insert from the push or the local chunk
        // store — so a lying manifest can never install a delta record
        // without its reclaim fencing.
        let incoming: std::collections::HashSet<TensorKey> =
            req.records.iter().map(|r| r.key).collect();
        let mut delta_raw_len: HashMap<TensorKey, u64> = HashMap::new();
        for rec in &req.records {
            let head = self.probe_chunked_framing(rec.key, rec.total, &rec.hashes, &provided)?;
            if let Some(h) = &head {
                delta_raw_len.insert(rec.key, h.raw_len as u64);
            }
            match (head, rec.delta_base) {
                (None, None) => {}
                (None, Some(_)) => {
                    return Err(format!(
                        "record {}: manifest claims a delta base for a raw record",
                        rec.key
                    ))
                }
                (Some(_), None) => {
                    return Err(format!(
                        "record {}: manifest omits the stored delta's base",
                        rec.key
                    ))
                }
                (Some(h), Some(base)) => {
                    if !self.delta.enabled {
                        return Err(format!(
                            "record {}: delta record shipped to a delta-disabled provider",
                            rec.key
                        ));
                    }
                    if h.base_key != base.encode() || h.depth != rec.delta_depth {
                        return Err(format!(
                            "record {}: manifest disagrees with the stored delta header",
                            rec.key
                        ));
                    }
                    if !self.store().contains_record(&h.base_key) && !incoming.contains(&base) {
                        return Err(format!(
                            "record {}: delta base {base} not present on the target",
                            rec.key
                        ));
                    }
                }
            }
        }
        // Replace a stale record (an older incarnation under the same
        // id); its private optimizer copies go with it.
        if let Some(old) = self.mutate_catalog(|c| c.remove(req.model)) {
            for key in &old.optimizer_keys {
                let enc = key.encode();
                if self.store().record_refs(&enc) == 1 {
                    let _ = self.before_reclaim(&enc);
                }
                let _ = self.store().decr_record(&enc);
            }
        }
        let kv = self.kv_span("kv.sync_chunks");
        let mut records_stored = 0usize;
        let mut bytes_needed = 0u64;
        for rec in &req.records {
            let enc = rec.key.encode();
            // Already-present records keep their count: the refs sync
            // that follows installs the authoritative values.
            if self.store().contains_record(&enc) {
                continue;
            }
            let hashes: Vec<ContentHash> = rec.hashes.iter().map(wire_hash).collect();
            match self
                .store()
                .put_record_chunked(&enc, rec.total as usize, &hashes, &provided, 1)
            {
                Some(Ok(())) => {}
                Some(Err(e)) => return Err(format!("sync record {}: {e}", rec.key)),
                None => return Err("target store is not content-addressed".into()),
            }
            if let Some(base) = rec.delta_base {
                self.delta_deps
                    .lock()
                    .entry(base.encode().to_vec())
                    .or_default()
                    .push(enc.to_vec());
                self.delta_stored.fetch_add(1, Ordering::Relaxed);
                self.transfer_deltas_shipped.fetch_add(1, Ordering::Relaxed);
            }
            // What a materialized sync would have moved for this record:
            // the reconstructed length for deltas, the record itself
            // otherwise. The pushed region is what actually moved.
            bytes_needed += delta_raw_len.get(&rec.key).copied().unwrap_or(rec.total);
            records_stored += 1;
        }
        drop(kv);
        let bytes_saved = bytes_needed.saturating_sub(region.len() as u64);
        self.transfer_bytes_saved
            .fetch_add(bytes_saved, Ordering::Relaxed);
        self.clock.fetch_max(req.timestamp + 1, Ordering::Relaxed);
        let mut optimizer_keys: Vec<TensorKey> = req
            .records
            .iter()
            .map(|e| e.key)
            .filter(|k| k.vertex.0 == u32::MAX)
            .collect();
        optimizer_keys.sort_by_key(|k| k.slot);
        let record = ModelRecord {
            graph: Arc::new(req.graph),
            owner_map: req.owner_map,
            parent: req.parent,
            quality: req.quality,
            timestamp: req.timestamp,
            optimizer_keys,
        };
        self.persist_record(req.model, &record);
        self.mutate_catalog(|c| c.insert(req.model, record));
        Ok(SyncChunksReply {
            applied: true,
            records_stored,
            bytes_saved,
        })
    }

    /// Handle a chunk-negotiated tensor fetch (delivery-plane peer
    /// exchange): materialize each record, frame it at the caller's
    /// granularity, and push only the chunks the caller does not already
    /// hold — the chunking here is transient wire framing, so it works
    /// over any storage layout.
    pub fn handle_fetch_chunks(&self, req: FetchChunksRequest) -> Result<FetchChunksReply, String> {
        if req.chunk_size == 0 {
            return Err("chunk size must be positive".into());
        }
        let csize = req.chunk_size as usize;
        let have: std::collections::HashSet<u128> =
            req.have.iter().map(|b| wire_hash(b).0).collect();
        let mut records = Vec::with_capacity(req.keys.len());
        let mut pushed = Vec::new();
        let mut lens = Vec::new();
        let mut segments = Vec::new();
        let mut pushed_set = std::collections::HashSet::new();
        let (mut offered, mut skipped) = (0u64, 0u64);
        for key in &req.keys {
            if !self.places_here(key.owner) {
                return Err(format!(
                    "tensor {key} is not hosted by provider {}",
                    self.index
                ));
            }
            let raw = self
                .resolve_record(&key.encode())
                .map_err(|e| format!("tensor {key}: {e}"))?;
            let mut hashes = Vec::with_capacity(raw.len().div_ceil(csize));
            let mut at = 0usize;
            while at < raw.len() {
                let end = (at + csize).min(raw.len());
                let chunk = raw.slice(at..end);
                at = end;
                let h = ContentHash::of_bytes(&chunk);
                hashes.push(h.to_bytes());
                offered += 1;
                // Skip chunks the caller holds, and dedupe within the
                // reply (identical chunks ship once).
                if have.contains(&h.0) || !pushed_set.insert(h.0) {
                    skipped += 1;
                    continue;
                }
                pushed.push(h.to_bytes());
                lens.push(chunk.len() as u64);
                segments.push(chunk);
            }
            records.push(TransferRecord {
                key: *key,
                total: raw.len() as u64,
                hashes,
                delta_base: None,
                delta_depth: 0,
            });
        }
        evostore_obs::ledger::add_bytes_out(lens.iter().sum());
        evostore_obs::ledger::add_chunks_touched(offered);
        self.transfer_chunks_offered
            .fetch_add(offered, Ordering::Relaxed);
        self.transfer_chunks_skipped
            .fetch_add(skipped, Ordering::Relaxed);
        self.transfer_chunks_sent
            .fetch_add(segments.len() as u64, Ordering::Relaxed);
        self.bulk_segments_exposed
            .fetch_add(segments.len() as u64, Ordering::Relaxed);
        let bulk = self.fabric.bulk_expose_vec(segments);
        Ok(FetchChunksReply {
            records,
            pushed,
            lens,
            bulk: bulk.0,
        })
    }

    /// Handle a retirement sync: record each tombstone, drop any stale
    /// record it covers, and fence the retirement's decrement leg so a
    /// parked client decrement re-issued later deduplicates against the
    /// absolute counts the refs sync installs.
    pub fn handle_sync_retire(&self, req: SyncRetireRequest) -> Result<SyncRetireReply, String> {
        let mut removed = 0usize;
        for t in &req.tombstones {
            self.record_tombstone(*t);
            let covered = self
                .catalog
                .read()
                .records
                .get(&t.model)
                .map(|r| r.timestamp <= t.record_timestamp)
                .unwrap_or(false);
            if covered {
                if let Some(rec) = self.mutate_catalog(|c| c.remove(t.model)) {
                    self.unpersist_record(t.model);
                    self.meta_replies.remove(t.model);
                    for key in &rec.optimizer_keys {
                        let enc = key.encode();
                        if self.store().record_refs(&enc) == 1 {
                            let _ = self.before_reclaim(&enc);
                        }
                        let _ = self.store().decr_record(&enc);
                    }
                    removed += 1;
                }
            }
            let fence = RefsRequest::retirement_op_id(t.model, t.record_timestamp, self.index);
            self.refs_ops.lock().record(
                fence,
                RefsReply {
                    applied: 0,
                    reclaimed: 0,
                },
            );
        }
        Ok(SyncRetireReply { removed })
    }

    /// Handle a refs sync: set every listed hosted key to its
    /// authoritative count; optionally delete unlisted tensors (only
    /// when the repair pass saw every provider's digest).
    pub fn handle_sync_refs(&self, req: SyncRefsRequest) -> Result<SyncRefsReply, String> {
        let mut adjusted = 0usize;
        let mut missing = 0usize;
        let mut listed = std::collections::HashSet::with_capacity(req.entries.len());
        for (key, want) in &req.entries {
            listed.insert(*key);
            let enc = key.encode();
            if *want == 0 {
                let _ = self.before_reclaim(&enc);
            }
            match self.store().set_record_refs(&enc, *want) {
                Ok(prev) => {
                    if prev != *want {
                        adjusted += 1;
                    }
                }
                Err(_) => missing += 1,
            }
        }
        let mut removed = 0usize;
        if req.prune_unlisted {
            for key in self.hosted_tensor_keys() {
                if listed.contains(&key) {
                    continue;
                }
                let enc = key.encode();
                let _ = self.before_reclaim(&enc);
                if self.store().set_record_refs(&enc, 0).is_ok() {
                    removed += 1;
                }
            }
        }
        Ok(SyncRefsReply {
            adjusted,
            removed,
            missing,
        })
    }

    /// Switch ancestor/pattern queries between the indexed walk (default)
    /// and the unindexed full-catalog scan. The index keeps being
    /// maintained while disabled, so re-enabling is instant.
    pub fn set_index_enabled(&self, enabled: bool) {
        self.index_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether queries are currently served through the index.
    pub fn index_enabled(&self) -> bool {
        self.index_enabled.load(Ordering::Relaxed)
    }

    /// Switch the indexed query path between prefiltered bucket walks
    /// (bitset/bloom rejection, the default) and plain walks. Results
    /// are identical either way; this is the A/B measurement lever.
    pub fn set_prefilter_enabled(&self, enabled: bool) {
        self.prefilter_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the bitset/bloom prefilters are active.
    pub fn prefilter_enabled(&self) -> bool {
        self.prefilter_enabled.load(Ordering::Relaxed)
    }

    /// Switch the data plane between zero-copy scatter-gather (default)
    /// and forced contiguous consolidation: reads memcpy every record
    /// into one buffer before exposure, and store validation decodes
    /// full `TensorData`s serially-equivalent to the pre-vectored path.
    /// A/B measurement lever; results are byte-identical either way.
    pub fn set_force_copy(&self, force: bool) {
        self.force_copy.store(force, Ordering::Relaxed);
    }

    /// Whether the forced-copy data-plane lever is on.
    pub fn force_copy(&self) -> bool {
        self.force_copy.load(Ordering::Relaxed)
    }

    /// Live entries in the index's LCP memo (diagnostics/tests). The
    /// memo is shared copy-on-write across snapshots, so the published
    /// snapshot's count is the authoritative one.
    pub fn index_memo_len(&self) -> usize {
        self.snapshot.load().index.memo_len()
    }

    /// Current statistics.
    pub fn stats(&self) -> ProviderStats {
        let chunk = self.store().record_chunk_stats().unwrap_or_default();
        let snap = self.catalog_snapshot();
        ProviderStats {
            models: snap.len(),
            distinct_archs: snap.index.distinct_architectures(),
            tensors: self.store().record_count(),
            tensor_bytes: self.store().record_bytes() as u64,
            metadata_bytes: snap
                .records()
                .map(|(_, r)| r.owner_map.metadata_bytes() as u64)
                .sum(),
            query_stats: self.query_stats.load(),
            tensor_kv: self.store().record_metrics().unwrap_or_default(),
            meta_kv: self.meta_store.metrics_snapshot().unwrap_or_default(),
            bulk_segments_exposed: self.bulk_segments_exposed.load(Ordering::Relaxed),
            zero_copy_reads: self.zero_copy_reads.load(Ordering::Relaxed),
            copy_fallback_reads: self.copy_fallback_reads.load(Ordering::Relaxed),
            validate_par_batches: self.validate_par_batches.load(Ordering::Relaxed),
            delta_stored: self.delta_stored.load(Ordering::Relaxed),
            delta_reconstructs: self.delta_reconstructs.load(Ordering::Relaxed),
            delta_rebased: self.delta_rebased.load(Ordering::Relaxed),
            chunks: chunk.chunks,
            chunk_dedup_hits: chunk.dedup_hits,
            chunk_logical_bytes: chunk.logical_bytes,
            chunk_physical_bytes: chunk.physical_bytes,
            snapshot_publications: self.snapshot.swaps(),
            snapshot_reads: self.snapshot_reads.load(Ordering::Relaxed),
            snapshot_retired: self.snapshot.retired_len() as u64,
            batch_envelopes: self.batch_envelopes.load(Ordering::Relaxed),
            batch_queries: self.batch_queries.load(Ordering::Relaxed),
            deliver: self.delivery.stats(),
            transfer_chunks_offered: self.transfer_chunks_offered.load(Ordering::Relaxed),
            transfer_chunks_sent: self.transfer_chunks_sent.load(Ordering::Relaxed),
            transfer_chunks_skipped: self.transfer_chunks_skipped.load(Ordering::Relaxed),
            transfer_deltas_shipped: self.transfer_deltas_shipped.load(Ordering::Relaxed),
            transfer_bytes_saved: self.transfer_bytes_saved.load(Ordering::Relaxed),
        }
    }

    /// This provider's observability registry snapshot, built on demand
    /// (the `OBS_SNAPSHOT` reply): catalog gauges, kv backend counters
    /// per store, index query counters, and flight-ring occupancy.
    pub fn obs_snapshot(&self) -> RegistrySnapshot {
        let stats = self.stats();
        let p = self.index;
        let mut metrics = vec![
            Metric::gauge("evostore_provider_models", stats.models as f64)
                .with_label("provider", p),
            Metric::gauge(
                "evostore_provider_distinct_archs",
                stats.distinct_archs as f64,
            )
            .with_label("provider", p),
            Metric::gauge("evostore_provider_tensors", stats.tensors as f64)
                .with_label("provider", p),
            Metric::gauge("evostore_provider_tensor_bytes", stats.tensor_bytes as f64)
                .with_label("provider", p),
            Metric::gauge(
                "evostore_provider_metadata_bytes",
                stats.metadata_bytes as f64,
            )
            .with_label("provider", p),
            Metric::counter("evostore_index_candidates", stats.query_stats.candidates)
                .with_label("provider", p),
            Metric::counter("evostore_index_scanned", stats.query_stats.scanned)
                .with_label("provider", p),
            Metric::counter("evostore_index_memo_hits", stats.query_stats.memo_hits)
                .with_label("provider", p),
            Metric::counter("evostore_index_deduped", stats.query_stats.deduped)
                .with_label("provider", p),
            Metric::counter("evostore_index_pruned", stats.query_stats.pruned)
                .with_label("provider", p),
            Metric::counter(
                "evostore_index_prefilter_rejected",
                stats.query_stats.prefiltered,
            )
            .with_label("provider", p),
            Metric::counter("evostore_index_answered", stats.query_stats.answered)
                .with_label("provider", p),
            Metric::counter(
                "evostore_index_snapshot_publications",
                stats.snapshot_publications,
            )
            .with_label("provider", p),
            Metric::counter("evostore_index_snapshot_reads", stats.snapshot_reads)
                .with_label("provider", p),
            Metric::gauge(
                "evostore_index_snapshot_retired",
                stats.snapshot_retired as f64,
            )
            .with_label("provider", p),
            Metric::counter("evostore_index_batch_envelopes", stats.batch_envelopes)
                .with_label("provider", p),
            Metric::counter("evostore_index_batch_queries", stats.batch_queries)
                .with_label("provider", p),
            Metric::counter(
                "evostore_datapath_bulk_segments_exposed",
                stats.bulk_segments_exposed,
            )
            .with_label("provider", p),
            Metric::counter("evostore_datapath_zero_copy_reads", stats.zero_copy_reads)
                .with_label("provider", p),
            Metric::counter(
                "evostore_datapath_copy_fallback_reads",
                stats.copy_fallback_reads,
            )
            .with_label("provider", p),
            Metric::counter(
                "evostore_datapath_validate_par_batches",
                stats.validate_par_batches,
            )
            .with_label("provider", p),
            Metric::counter("evostore_delta_stored", stats.delta_stored).with_label("provider", p),
            Metric::counter("evostore_delta_reconstructs", stats.delta_reconstructs)
                .with_label("provider", p),
            Metric::counter("evostore_delta_rebased", stats.delta_rebased)
                .with_label("provider", p),
            Metric::gauge("evostore_chunk_count", stats.chunks as f64).with_label("provider", p),
            Metric::counter("evostore_chunk_dedup_hits", stats.chunk_dedup_hits)
                .with_label("provider", p),
            Metric::gauge(
                "evostore_chunk_logical_bytes",
                stats.chunk_logical_bytes as f64,
            )
            .with_label("provider", p),
            Metric::gauge(
                "evostore_chunk_physical_bytes",
                stats.chunk_physical_bytes as f64,
            )
            .with_label("provider", p),
            Metric::counter(
                "evostore_transfer_chunks_offered",
                stats.transfer_chunks_offered,
            )
            .with_label("provider", p),
            Metric::counter("evostore_transfer_chunks_sent", stats.transfer_chunks_sent)
                .with_label("provider", p),
            Metric::counter(
                "evostore_transfer_chunks_skipped",
                stats.transfer_chunks_skipped,
            )
            .with_label("provider", p),
            Metric::counter(
                "evostore_transfer_deltas_shipped",
                stats.transfer_deltas_shipped,
            )
            .with_label("provider", p),
            Metric::counter("evostore_transfer_bytes_saved", stats.transfer_bytes_saved)
                .with_label("provider", p),
        ];
        for (store, snap) in [("tensors", stats.tensor_kv), ("meta", stats.meta_kv)] {
            for (name, v) in [
                ("evostore_kv_puts", snap.puts),
                ("evostore_kv_gets", snap.gets),
                ("evostore_kv_misses", snap.misses),
                ("evostore_kv_deletes", snap.deletes),
                ("evostore_kv_bytes_written", snap.bytes_written),
                ("evostore_kv_bytes_read", snap.bytes_read),
            ] {
                metrics.push(
                    Metric::counter(name, v)
                        .with_label("provider", p)
                        .with_label("store", store),
                );
            }
        }
        metrics.extend(stats.deliver.metrics(p));
        metrics.extend(self.ledger.metrics(&format!("provider{p}")));
        // Under an ObsHub the hub's own source emits this ring's
        // counters; emitting them here too would double-count in the
        // merged snapshot.
        if !self.hub_attached {
            let rec = self.tracer.recorder();
            metrics.push(
                Metric::counter("evostore_obs_flight_events", rec.recorded())
                    .with_label("node", rec.node()),
            );
            metrics.push(
                Metric::counter("evostore_obs_flight_dropped", rec.dropped())
                    .with_label("node", rec.node()),
            );
        }
        RegistrySnapshot::from_metrics(metrics)
    }

    /// The provider's span factory (tests, diagnostics).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The provider's flight-recorder ring.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        self.tracer.recorder()
    }

    /// Models cataloged here (diagnostics/tests).
    pub fn cataloged_models(&self) -> Vec<ModelId> {
        let mut v: Vec<ModelId> = self.catalog_snapshot().records().map(|(m, _)| m).collect();
        v.sort();
        v
    }

    /// Reference count of a hosted tensor (tests/GC audits).
    pub fn tensor_refs(&self, key: TensorKey) -> u64 {
        self.store().record_refs(&key.encode())
    }

    /// Every cataloged record as `(model, timestamp, owner_map,
    /// optimizer_keys)` — the union-catalog input of replication-aware
    /// audits and recovery replays.
    pub fn catalog_entries(&self) -> Vec<(ModelId, u64, OwnerMap, Vec<TensorKey>)> {
        self.catalog_snapshot()
            .records()
            .map(|(m, r)| {
                (
                    m,
                    r.timestamp,
                    r.owner_map.clone(),
                    r.optimizer_keys.clone(),
                )
            })
            .collect()
    }

    /// Is the tensor payload stored here? (replication audits)
    pub fn hosts_tensor(&self, key: TensorKey) -> bool {
        self.store().contains_record(&key.encode())
    }

    /// Owner maps of all cataloged models (GC audits).
    pub fn owner_maps(&self) -> Vec<OwnerMap> {
        self.catalog_snapshot()
            .records()
            .map(|(_, r)| r.owner_map.clone())
            .collect()
    }

    /// Consistency check between the refcount wrapper and the backend.
    pub fn audit_tensors(&self) -> Result<(), String> {
        self.store().audit_records()
    }

    /// Insert a metadata-only catalog entry (no tensors) — the tensor-less
    /// catalog population path of the Fig 5 micro-benchmark, where "the
    /// actual DL model tensors are not stored" (§5.5).
    pub fn insert_meta_only(&self, model: ModelId, graph: CompactGraph, quality: f64) {
        assert!(
            self.places_here(model),
            "model {model} does not hash to provider {}",
            self.index
        );
        let owner_map = OwnerMap::fresh(model, &graph);
        let timestamp = self.clock.fetch_add(1, Ordering::Relaxed);
        self.mutate_catalog(|c| {
            c.insert(
                model,
                ModelRecord {
                    graph: Arc::new(graph),
                    owner_map,
                    parent: None,
                    quality,
                    timestamp,
                    optimizer_keys: Vec::new(),
                },
            )
        });
    }

    /// Optimizer keys referenced by local catalog records (GC audits).
    pub fn optimizer_key_refs(&self) -> Vec<TensorKey> {
        self.catalog_snapshot()
            .records()
            .flat_map(|(_, r)| r.optimizer_keys.clone())
            .collect()
    }

    /// Keys of every tensor hosted here (GC audits). Iterates the
    /// backend in place ([`KvBackend::for_each_key`]) instead of
    /// materializing one `Vec<u8>` per stored key.
    pub fn hosted_tensor_keys(&self) -> Vec<TensorKey> {
        let mut keys = Vec::new();
        self.store().for_each_record_key(&mut |k| {
            if let Some(key) = TensorKey::decode(k) {
                keys.push(key);
            }
        });
        keys
    }

    // ---- delivery plane --------------------------------------------------

    /// This provider's delivery hub (tests, diagnostics).
    pub fn delivery(&self) -> &Arc<DeliveryHub> {
        &self.delivery
    }

    fn handle_subscribe(&self, req: SubscribeRequest) -> Result<SubscribeReply, String> {
        // Hold the catalog read lock across the replay scan and the
        // registration: publications run `on_publication` under the
        // write lock, so no store can slip between the snapshot this
        // replay sees and the moment the subscription starts matching
        // (such a store would otherwise be neither replayed nor pushed).
        let _catalog = self.catalog.read();
        let snap = self.snapshot.load();
        Ok(self.delivery.subscribe(req, &snap))
    }

    fn handle_unsubscribe(&self, req: UnsubscribeRequest) -> Result<UnsubscribeReply, String> {
        Ok(self.delivery.unsubscribe(req))
    }
}

/// A running provider: shared state + its fabric endpoint.
pub struct Provider {
    /// Shared state (handlers hold clones of this Arc).
    pub state: Arc<ProviderState>,
    endpoint: Endpoint,
}

impl Drop for Provider {
    fn drop(&mut self) {
        // Stop the delivery pump before the endpoint goes away; a pump
        // push racing teardown would otherwise spin on dead endpoints
        // until its subscriber reap kicks in.
        self.state.delivery.shutdown();
    }
}

impl Provider {
    /// Spawn a provider on `fabric` as provider `index` of
    /// `num_providers`, with the given replica placement rule, tensor
    /// backend and RPC service thread count. When an [`ObsHub`] is
    /// given, the provider's flight recorder registers with it (and
    /// stamps time from the hub clock — the simulator's virtual clock in
    /// simulated runs); otherwise the provider keeps a private
    /// wall-clock ring.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        fabric: Arc<Fabric>,
        index: usize,
        num_providers: usize,
        replication: ReplicationPolicy,
        clock: Arc<AtomicU64>,
        backend: Box<dyn KvBackend>,
        meta_store: Box<dyn KvBackend>,
        service_threads: usize,
        obs: Option<&ObsHub>,
        delta: DeltaPolicy,
        deliver_fanout: usize,
    ) -> Provider {
        let endpoint = fabric.create_endpoint(service_threads);
        let node = format!("provider{index}");
        let tracer = match obs {
            Some(hub) => Tracer::new(
                &node,
                Arc::clone(hub.clock()),
                hub.new_recorder(&node, PROVIDER_FLIGHT_EVENTS),
            ),
            None => {
                let wall: Arc<dyn TimeSource> = Arc::new(MonotonicClock::default());
                let ring = Arc::new(FlightRecorder::new(
                    &node,
                    PROVIDER_FLIGHT_EVENTS,
                    Arc::clone(&wall),
                ));
                Tracer::new(&node, wall, ring)
            }
        };
        // The pump pushes from its own thread, outside any handler
        // span, so it gets its own span factory (`deliver.push` roots
        // land in a dedicated flight ring under observation).
        let deliver_tracer = obs.map(|hub| {
            let dnode = format!("deliver{index}");
            Tracer::new(
                &dnode,
                Arc::clone(hub.clock()),
                hub.new_recorder(&dnode, PROVIDER_FLIGHT_EVENTS),
            )
        });
        let delivery = Arc::new(DeliveryHub::new(
            Arc::clone(&fabric),
            endpoint.id().0,
            deliver_fanout,
            deliver_tracer,
        ));
        let state = Arc::new(ProviderState {
            fabric: Arc::clone(&fabric),
            index,
            num_providers,
            replication,
            tensors: RefCountedStore::new(backend),
            catalog: RwLock::new(Catalog::new()),
            snapshot: SnapshotCell::new(Arc::new(CatalogSnapshot::empty())),
            meta_store,
            clock,
            refs_ops: Mutex::new(RefsOpCache::default()),
            tombstones: Mutex::new(HashMap::new()),
            index_enabled: AtomicBool::new(true),
            prefilter_enabled: AtomicBool::new(true),
            query_stats: AtomicQueryStats::default(),
            snapshot_reads: AtomicU64::new(0),
            batch_envelopes: AtomicU64::new(0),
            batch_queries: AtomicU64::new(0),
            tracer,
            endpoint_id: endpoint.id().0,
            force_copy: AtomicBool::new(false),
            bulk_segments_exposed: AtomicU64::new(0),
            zero_copy_reads: AtomicU64::new(0),
            copy_fallback_reads: AtomicU64::new(0),
            validate_par_batches: AtomicU64::new(0),
            meta_replies: MetaReplyCache::new(),
            delta,
            delta_deps: Mutex::new(HashMap::new()),
            delta_stored: AtomicU64::new(0),
            delta_reconstructs: AtomicU64::new(0),
            delta_rebased: AtomicU64::new(0),
            transfer_chunks_offered: AtomicU64::new(0),
            transfer_chunks_sent: AtomicU64::new(0),
            transfer_chunks_skipped: AtomicU64::new(0),
            transfer_deltas_shipped: AtomicU64::new(0),
            transfer_bytes_saved: AtomicU64::new(0),
            delivery,
            ledger: Arc::new(OpLedger::new()),
            hub_attached: obs.is_some(),
        });

        // Every handler runs under `traced`: when the RPC envelope
        // carried a trace context, the hop becomes a child span in the
        // caller's trace, recorded in this provider's flight ring.
        let s = Arc::clone(&state);
        endpoint.register(
            methods::STORE,
            typed_handler(move |r| s.traced(methods::STORE, || s.handle_store(r))),
        );
        // GET_META bypasses `typed_handler` on the reply side: the
        // handler returns pre-encoded bytes cached per record
        // incarnation, so a hot model's compact graph is deep-cloned and
        // JSON-encoded once, not once per fetch.
        let s = Arc::clone(&state);
        endpoint.register(methods::GET_META, move |body: Bytes| {
            let req: GetMetaRequest =
                serde_json::from_slice(&body).map_err(|e| format!("decode: {e}"))?;
            s.traced(methods::GET_META, || s.get_meta_encoded(req))
        });
        let s = Arc::clone(&state);
        endpoint.register(
            methods::READ,
            typed_handler(move |r| s.traced(methods::READ, || s.handle_read(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::INCR_REFS,
            typed_handler(move |r| s.traced(methods::INCR_REFS, || s.handle_incr_refs(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::DECR_REFS,
            typed_handler(move |r| s.traced(methods::DECR_REFS, || s.handle_decr_refs(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::LCP,
            typed_handler(move |r| s.traced(methods::LCP, || s.handle_lcp(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::LCP_BATCH,
            typed_handler(move |r| s.traced(methods::LCP_BATCH, || s.handle_lcp_batch(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::MATCH_PATTERN_BATCH,
            typed_handler(move |r| {
                s.traced(methods::MATCH_PATTERN_BATCH, || {
                    s.handle_match_pattern_batch(r)
                })
            }),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::RETIRE_META,
            typed_handler(move |r| s.traced(methods::RETIRE_META, || s.handle_retire_meta(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::READ_RANGE,
            typed_handler(move |r| s.traced(methods::READ_RANGE, || s.handle_read_range(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::MATCH_PATTERN,
            typed_handler(move |r| s.traced(methods::MATCH_PATTERN, || s.handle_match_pattern(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::STORE_OPTIMIZER,
            typed_handler(move |r| {
                s.traced(methods::STORE_OPTIMIZER, || s.handle_store_optimizer(r))
            }),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::LOAD_OPTIMIZER,
            typed_handler(move |r| {
                s.traced(methods::LOAD_OPTIMIZER, || s.handle_load_optimizer(r))
            }),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::STATS,
            typed_handler(move |_: StatsRequest| s.traced(methods::STATS, || Ok(s.stats()))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::DIGEST,
            typed_handler(move |r| s.traced(methods::DIGEST, || s.handle_digest(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::SYNC_MODEL,
            typed_handler(move |r| s.traced(methods::SYNC_MODEL, || s.handle_sync_model(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::TRANSFER_MANIFEST,
            typed_handler(move |r| {
                s.traced(methods::TRANSFER_MANIFEST, || s.handle_transfer_manifest(r))
            }),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::HAVE_CHUNKS,
            typed_handler(move |r| s.traced(methods::HAVE_CHUNKS, || s.handle_have_chunks(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::READ_CHUNKS,
            typed_handler(move |r| s.traced(methods::READ_CHUNKS, || s.handle_read_chunks(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::SYNC_CHUNKS,
            typed_handler(move |r| s.traced(methods::SYNC_CHUNKS, || s.handle_sync_chunks(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::FETCH_CHUNKS,
            typed_handler(move |r| s.traced(methods::FETCH_CHUNKS, || s.handle_fetch_chunks(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::SYNC_RETIRE,
            typed_handler(move |r| s.traced(methods::SYNC_RETIRE, || s.handle_sync_retire(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::SYNC_REFS,
            typed_handler(move |r| s.traced(methods::SYNC_REFS, || s.handle_sync_refs(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            methods::OBS_SNAPSHOT,
            typed_handler(move |_: ObsSnapshotRequest| {
                s.traced(methods::OBS_SNAPSHOT, || Ok(s.obs_snapshot()))
            }),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            deliver_methods::SUBSCRIBE,
            typed_handler(move |r| s.traced(deliver_methods::SUBSCRIBE, || s.handle_subscribe(r))),
        );
        let s = Arc::clone(&state);
        endpoint.register(
            deliver_methods::UNSUBSCRIBE,
            typed_handler(move |r| {
                s.traced(deliver_methods::UNSUBSCRIBE, || s.handle_unsubscribe(r))
            }),
        );

        Provider { state, endpoint }
    }

    /// The provider's fabric address.
    pub fn endpoint_id(&self) -> EndpointId {
        self.endpoint.id()
    }
}
