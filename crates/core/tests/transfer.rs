//! End-to-end tests of the derivative-aware transfer plane: repair of
//! derived-model churn ships chunk-negotiated deltas instead of
//! materialized payloads, the materialized fallback converges to an
//! identical catalog, shipped chains survive provider reopen with their
//! reclaim fencing intact, the post-repair compaction hook is
//! idempotent, and watcher peer exchange pulls only changed chunks.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Duration;

use bytes::Bytes;
use evostore_core::{
    random_tensors, BackendKind, CachingClient, Deployment, DeploymentConfig, ModelWatcher,
    OwnerMap, ReplicationPolicy, StorePolicy, WatchConfig,
};
use evostore_deliver::SubscriptionFilter;
use evostore_graph::{flatten, Activation, Architecture, CompactGraph, LayerConfig, LayerKind};
use evostore_rpc::FaultPlan;
use evostore_tensor::{write_tensor, ModelId, TensorData, TensorKey};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const WAIT: Duration = Duration::from_secs(10);

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

/// Model ids (ascending from 1) whose primary is provider `want` of `n`
/// — keeps a whole lineage on one replica chain.
fn models_on(want: usize, n: usize) -> impl Iterator<Item = ModelId> {
    (1u64..)
        .map(ModelId)
        .filter(move |m| m.provider_for(n) == want)
}

/// Parent tensors indexed by (vertex, slot) — the coordinates delta
/// encoding matches bases on.
fn by_vertex_slot(tensors: &HashMap<TensorKey, TensorData>) -> HashMap<(u32, u32), TensorData> {
    tensors
        .iter()
        .map(|(k, t)| ((k.vertex.0, k.slot), t.clone()))
        .collect()
}

/// A fine-tuned generation: every tensor of `map` (a fresh owner map,
/// so the store pins nothing and survives a down mirror) is a sparse
/// perturbation of the parent's tensor at the same vertex/slot, so the
/// provider delta-encodes it against the co-located base.
fn finetuned(
    map: &OwnerMap,
    parent_tensors: &HashMap<TensorKey, TensorData>,
    rng: &mut ChaCha8Rng,
) -> HashMap<TensorKey, TensorData> {
    let prev = by_vertex_slot(parent_tensors);
    map.all_tensor_keys()
        .into_iter()
        .map(|k| {
            let t = prev[&(k.vertex.0, k.slot)].perturbed_sparse(rng, 0.05);
            (k, t)
        })
        .collect()
}

/// The acceptance scenario on one plane: a parent model plus four
/// fine-tuned children on the same replica chain `[1, 2]`, all children
/// stored while the mirror is down, then repair. Returns the converged
/// deployment, the parent id and every child's expected tensors.
#[allow(clippy::type_complexity)]
fn churn_plane(
    negotiated: bool,
) -> (
    Deployment,
    ModelId,
    Vec<(ModelId, HashMap<TensorKey, TensorData>)>,
) {
    let dep = Deployment::new(DeploymentConfig {
        providers: 4,
        replication: ReplicationPolicy::new(2),
        store_policy: StorePolicy::chunked_with_delta(),
        ..Default::default()
    });
    dep.set_negotiated_transfer(negotiated);
    let client = dep.client();
    let g = seq(&[8, 32, 32, 8]);
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    let mut ids = models_on(1, 4);
    let parent = ids.next().unwrap();
    let parent_tensors = random_tensors(parent, &g, &mut rng);
    client
        .store_model(
            g.clone(),
            OwnerMap::fresh(parent, &g),
            None,
            0.5,
            &parent_tensors,
        )
        .unwrap();

    // The mirror misses every derived generation.
    let mirror = dep.provider_ids()[2];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(mirror);

    let mut children = Vec::new();
    for child in ids.take(4) {
        let map = OwnerMap::fresh(child, &g);
        let new = finetuned(&map, &parent_tensors, &mut rng);
        client
            .store_model(g.clone(), map, Some(parent), 0.6, &new)
            .unwrap();
        children.push((child, new));
    }
    assert!(
        client.telemetry().under_replicated_stores() > 0,
        "missed mirror legs must be recorded as debt"
    );
    plan.set_up(mirror);
    assert!(
        client.stats().unwrap().delta_stored > 0,
        "fine-tuned children must delta-encode against the parent"
    );
    let report = dep.repair().unwrap();
    assert!(
        report.models_synced >= children.len(),
        "every child re-replicates: {report:?}"
    );
    assert_eq!(report.missing_payloads, 0, "{report:?}");
    dep.gc_audit().unwrap();
    (dep, parent, children)
}

/// Per-provider catalog fingerprint: which models each provider holds
/// and which tensor keys each record references.
fn catalog_fingerprint(dep: &Deployment) -> Vec<BTreeMap<ModelId, BTreeSet<TensorKey>>> {
    dep.provider_states()
        .iter()
        .map(|p| {
            p.catalog_entries()
                .into_iter()
                .map(|(model, _ts, _map, keys)| (model, keys.into_iter().collect()))
                .collect()
        })
        .collect()
}

#[test]
fn negotiated_repair_ships_deltas_not_materialized_payloads() {
    let (neg, _parent, children) = churn_plane(true);
    let (mat, _, mat_children) = churn_plane(false);

    // The negotiated plane shipped stored delta records and negotiated
    // possession before moving a byte; the materialized plane moved
    // whole payloads and never touched the negotiation RPCs.
    let neg_sum = neg.stats().into_iter().fold((0u64, 0u64, 0u64), |a, s| {
        (
            a.0 + s.transfer_deltas_shipped,
            a.1 + s.transfer_chunks_offered,
            a.2 + s.transfer_bytes_saved,
        )
    });
    assert!(neg_sum.0 > 0, "repair must ship stored deltas verbatim");
    assert!(neg_sum.1 > 0, "possession sets must be negotiated");
    assert!(
        neg_sum.2 > 0,
        "negotiation must save bytes over materializing"
    );
    let mat_deltas: u64 = mat.stats().iter().map(|s| s.transfer_deltas_shipped).sum();
    assert_eq!(mat_deltas, 0, "materialized plane negotiates nothing");

    // Both planes charged their legs to the `transfer` op class; the
    // negotiated plane moved a fraction of the materialized bytes.
    let nt = neg.ledger().entry("transfer").unwrap();
    let mt = mat.ledger().entry("transfer").unwrap();
    assert!(nt.ops >= children.len() as u64, "{nt:?}");
    assert!(mt.ops >= children.len() as u64, "{mt:?}");
    assert_eq!(nt.errors, 0, "{nt:?}");
    assert!(
        nt.bytes_out * 2 < mt.bytes_out,
        "negotiated repair must move far fewer bytes: {} vs {}",
        nt.bytes_out,
        mt.bytes_out
    );
    // The repair op itself absorbed the transfer legs' traffic.
    let nr = neg.ledger().entry("repair").unwrap();
    assert!(nr.ops >= 1 && nr.bytes_out >= nt.bytes_out, "{nr:?}");

    // Identical catalogs on every provider, either way the bytes moved.
    assert_eq!(catalog_fingerprint(&neg), catalog_fingerprint(&mat));

    // The repaired mirror actually serves byte-identical reads: down
    // the primary and load every child from the mirror, on both planes.
    for (dep, expected) in [(&neg, &children), (&mat, &mat_children)] {
        let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
        plan.set_down(dep.provider_ids()[1]);
        let client = dep.client();
        for (child, tensors) in expected.iter() {
            let loaded = client.load_model(*child).unwrap();
            for (key, tensor) in tensors {
                assert_eq!(&loaded.tensors[key], tensor, "{child} {key} differs");
            }
        }
    }
}

#[test]
fn post_repair_compaction_is_idempotent() {
    // Depth-7 policy, a four-generation fine-tuning chain stored while
    // the mirror is down: repair re-installs the chained delta records
    // at their stored depth (bases arrive first — sync is in id order).
    let dep = Deployment::new(DeploymentConfig {
        providers: 2,
        replication: ReplicationPolicy::new(2),
        store_policy: StorePolicy::chunked_with_delta().with_max_chain_depth(7),
        ..Default::default()
    });
    let client = dep.client();
    let g = seq(&[8, 16, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let mut ids = models_on(0, 2);

    let base = ids.next().unwrap();
    let base_tensors = random_tensors(base, &g, &mut rng);
    client
        .store_model(
            g.clone(),
            OwnerMap::fresh(base, &g),
            None,
            0.5,
            &base_tensors,
        )
        .unwrap();

    let mirror = dep.provider_ids()[1];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(mirror);

    let mut parent = base;
    let mut prev = base_tensors;
    let mut generations = Vec::new();
    for child in ids.take(4) {
        let map = OwnerMap::fresh(child, &g);
        let new = finetuned(&map, &prev, &mut rng);
        client
            .store_model(g.clone(), map, Some(parent), 0.6, &new)
            .unwrap();
        generations.push((child, new.clone()));
        parent = child;
        prev = new;
    }
    plan.set_up(mirror);
    assert!(client.stats().unwrap().delta_stored > 0);
    let report = dep.repair().unwrap();
    assert!(report.models_synced >= generations.len(), "{report:?}");
    dep.gc_audit().unwrap();

    // The post-repair hook is bounded by the policy depth: every stored
    // chain already satisfies it, so nothing is left to rewrite.
    assert_eq!(dep.compact_deltas(7).unwrap(), 0);

    // An explicit tighter compaction rewrites once, then reaches a
    // fixpoint; a further repair pass finds a fully healthy deployment.
    assert!(dep.compact_deltas(1).unwrap() > 0);
    assert_eq!(dep.compact_deltas(1).unwrap(), 0);
    let second = dep.repair().unwrap();
    assert_eq!(second.models_synced, 0, "{second:?}");
    assert_eq!(second.refs_adjusted, 0, "{second:?}");
    assert_eq!(second.orphans_removed, 0, "{second:?}");
    assert_eq!(second.retirements_applied, 0, "{second:?}");
    dep.gc_audit().unwrap();

    // Every generation still reconstructs byte-identically.
    for (child, tensors) in &generations {
        let loaded = client.load_model(*child).unwrap();
        for (key, tensor) in tensors {
            assert_eq!(&loaded.tensors[key], tensor, "{child} {key} differs");
        }
    }
}

#[test]
fn repaired_delta_chain_survives_reopen_with_recovered_fencing() {
    let dir = std::env::temp_dir().join(format!("evostore-transfer-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DeploymentConfig {
        providers: 2,
        replication: ReplicationPolicy::new(2),
        backend: BackendKind::Log { dir: dir.clone() },
        store_policy: StorePolicy::chunked_with_delta(),
        ..Default::default()
    };
    let g = seq(&[8, 16, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(53);
    let mut ids = models_on(0, 2);
    let parent = ids.next().unwrap();
    let child = ids.next().unwrap();
    let parent_tensors = random_tensors(parent, &g, &mut rng);
    let child_map = OwnerMap::fresh(child, &g);
    let child_tensors = finetuned(&child_map, &parent_tensors, &mut rng);

    // Session 1: the mirror misses the delta-encoded child; repair
    // ships the stored delta verbatim (the mirror holds the base).
    {
        let dep = Deployment::new(cfg.clone());
        let client = dep.client();
        client
            .store_model(
                g.clone(),
                OwnerMap::fresh(parent, &g),
                None,
                0.5,
                &parent_tensors,
            )
            .unwrap();
        let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
        plan.set_down(dep.provider_ids()[1]);
        client
            .store_model(g.clone(), child_map, Some(parent), 0.6, &child_tensors)
            .unwrap();
        plan.set_up(dep.provider_ids()[1]);
        assert!(client.stats().unwrap().delta_stored > 0);
        let report = dep.repair().unwrap();
        assert!(report.models_synced >= 1, "{report:?}");
        let deltas: u64 = dep.stats().iter().map(|s| s.transfer_deltas_shipped).sum();
        assert!(deltas > 0, "repair must preserve the delta encoding");
        dep.gc_audit().unwrap();
    } // dropped: "process restart"

    // Session 2: the mirror's replayed log must have recorded the
    // delta dependency the transfer installed — retiring the base on
    // the recovered deployment re-bases the child before reclaiming.
    let dep = Deployment::reopen(cfg).expect("recovery succeeds");
    let client = dep.client();
    client.retire_model(parent).unwrap();
    dep.gc_audit().unwrap();
    assert!(
        dep.stats().iter().map(|s| s.delta_rebased).sum::<u64>() > 0,
        "recovered fencing must re-base the dependent before reclaim"
    );

    // The child survives its base's retirement bytewise — from either
    // replica.
    for down in [0usize, 1usize] {
        let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
        plan.set_down(dep.provider_ids()[down]);
        let loaded = client.load_model(child).unwrap();
        for (key, tensor) in &child_tensors {
            assert_eq!(&loaded.tensors[key], tensor, "replica {down} {key} differs");
        }
        plan.set_up(dep.provider_ids()[down]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// One interpreted churn step for the convergence proptest.
#[derive(Debug, Clone, Copy)]
enum Step {
    Fresh,
    Derive,
    Retire,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Fresh),
        Just(Step::Derive),
        Just(Step::Derive),
        Just(Step::Retire),
    ]
}

/// Drive one plane through `steps` with the chain-`[1, 2]` mirror down,
/// then repair and return the deployment plus the live models' expected
/// tensors. Stores and retires replay deterministically from `seed`, so
/// both planes see byte-identical inputs.
#[allow(clippy::type_complexity)]
fn interleaved_plane(
    negotiated: bool,
    steps: &[Step],
    seed: u64,
) -> Result<(Deployment, Vec<(ModelId, HashMap<TensorKey, TensorData>)>), TestCaseError> {
    let dep = Deployment::new(DeploymentConfig {
        providers: 4,
        replication: ReplicationPolicy::new(2),
        store_policy: StorePolicy::chunked_with_delta(),
        ..Default::default()
    });
    dep.set_negotiated_transfer(negotiated);
    let client = dep.client();
    let g = seq(&[8, 16, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ids = models_on(1, 4);

    // A base stored while both replicas are up: derivations during the
    // outage can negotiate against its mirrored records.
    let base = ids.next().unwrap();
    let base_tensors = random_tensors(base, &g, &mut rng);
    client
        .store_model(
            g.clone(),
            OwnerMap::fresh(base, &g),
            None,
            0.5,
            &base_tensors,
        )
        .unwrap();
    let mut live: Vec<(ModelId, HashMap<TensorKey, TensorData>)> = vec![(base, base_tensors)];

    let mirror = dep.provider_ids()[2];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(mirror);

    for step in steps {
        match step {
            Step::Fresh => {
                let m = ids.next().unwrap();
                let tensors = random_tensors(m, &g, &mut rng);
                client
                    .store_model(g.clone(), OwnerMap::fresh(m, &g), None, 0.5, &tensors)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                live.push((m, tensors));
            }
            Step::Derive => {
                let (parent, parent_tensors) = live.last().cloned().unwrap();
                let child = ids.next().unwrap();
                let map = OwnerMap::fresh(child, &g);
                let new = finetuned(&map, &parent_tensors, &mut rng);
                client
                    .store_model(g.clone(), map, Some(parent), 0.6, &new)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                live.push((child, new));
            }
            Step::Retire => {
                if live.len() > 1 {
                    let (victim, _) = live.remove(0);
                    client
                        .retire_model(victim)
                        .map_err(|e| TestCaseError::fail(e.to_string()))?;
                }
            }
        }
    }

    plan.set_up(mirror);
    dep.repair().map_err(TestCaseError::fail)?;
    client
        .flush_pending_decrements()
        .map_err(|e| TestCaseError::fail(e.to_string()))?;
    dep.gc_audit().map_err(TestCaseError::fail)?;
    Ok((dep, live))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant: chunk-negotiated sync and materialized
    /// sync converge to byte-identical catalogs (and a clean GC audit)
    /// under arbitrary store/retire interleavings around an outage.
    #[test]
    fn negotiated_and_materialized_sync_converge_identically(
        steps in prop::collection::vec(step_strategy(), 1..7),
        seed in 0u64..1 << 32,
    ) {
        let (neg, expected) = interleaved_plane(true, &steps, seed)?;
        let (mat, mat_expected) = interleaved_plane(false, &steps, seed)?;

        prop_assert_eq!(catalog_fingerprint(&neg), catalog_fingerprint(&mat));
        prop_assert_eq!(expected.len(), mat_expected.len());

        // Every surviving model reads back bytewise on both planes.
        for (dep, exp) in [(&neg, &expected), (&mat, &mat_expected)] {
            let client = dep.client();
            for (model, tensors) in exp.iter() {
                let loaded = client
                    .load_model(*model)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                for (key, tensor) in tensors {
                    prop_assert_eq!(&loaded.tensors[key], tensor, "{} {} differs", model, key);
                }
            }
        }
    }
}

/// Fine-tune only the tail quarter of each tensor's bytes, so most
/// exchange-granularity chunks stay byte-identical to the parent's.
fn tail_tuned(
    map: &OwnerMap,
    parent_tensors: &HashMap<TensorKey, TensorData>,
    rng: &mut ChaCha8Rng,
) -> HashMap<TensorKey, TensorData> {
    let prev = by_vertex_slot(parent_tensors);
    map.all_tensor_keys()
        .into_iter()
        .map(|k| {
            let old = &prev[&(k.vertex.0, k.slot)];
            let fresh = TensorData::random(rng, old.dtype(), old.shape().to_vec());
            let mut data = fresh.bytes().to_vec();
            let keep = data.len() * 3 / 4;
            data[..keep].copy_from_slice(&old.bytes()[..keep]);
            let t = TensorData::from_bytes(old.dtype(), old.shape().to_vec(), Bytes::from(data))
                .unwrap();
            (k, t)
        })
        .collect()
}

#[test]
fn watcher_chunk_exchange_pulls_only_changed_chunks() {
    let dep = Deployment::new(DeploymentConfig {
        providers: 1,
        store_policy: StorePolicy::chunked_with_delta(),
        ..Default::default()
    });
    let g = seq(&[8, 64, 64, 8]);
    let mut rng = ChaCha8Rng::seed_from_u64(91);
    let parent = ModelId(1);

    // Two watchers on the same lineage: one chunk-negotiating, one on
    // the materialized baseline (provider-direct so peers don't serve
    // it the payload first).
    let negotiated = ModelWatcher::attach(
        CachingClient::new(dep.client(), 64 << 20),
        SubscriptionFilter::NewVersionOf(parent),
        WatchConfig {
            exchange_chunk_size: 512,
            ..WatchConfig::default()
        },
        Some(dep.obs()),
    )
    .unwrap();
    let baseline = ModelWatcher::attach(
        CachingClient::new(dep.client(), 64 << 20),
        SubscriptionFilter::NewVersionOf(parent),
        WatchConfig {
            chunk_exchange: false,
            use_fetch_chain: false,
            ..WatchConfig::default()
        },
        None,
    )
    .unwrap();

    let writer = dep.client();
    let parent_map = OwnerMap::fresh(parent, &g);
    let parent_tensors = random_tensors(parent, &g, &mut rng);
    writer
        .store_model(g.clone(), parent_map.clone(), None, 0.5, &parent_tensors)
        .unwrap();
    let parent_keys = parent_map.all_tensor_keys();
    for w in [&negotiated, &baseline] {
        assert!(
            w.wait_until(WAIT, || w
                .client()
                .cache()
                .get_batch(&parent_keys)
                .1
                .is_empty()),
            "superseded version cached first"
        );
    }
    // Wire bytes the initial (materialized) parent prefetch cost each
    // watcher — subtracted out so the comparison isolates the update.
    let neg_parent_bytes = negotiated.stats().provider_bytes_fetched;
    let base_parent_bytes = baseline.stats().provider_bytes_fetched;

    // The new version changes only the tail quarter of each tensor.
    let child = ModelId(2);
    let child_map = OwnerMap::fresh(child, &g);
    let child_tensors = tail_tuned(&child_map, &parent_tensors, &mut rng);
    writer
        .store_model(
            g.clone(),
            child_map.clone(),
            Some(parent),
            0.6,
            &child_tensors,
        )
        .unwrap();

    let child_keys = child_map.all_tensor_keys();
    for (name, w) in [("negotiated", &negotiated), ("baseline", &baseline)] {
        assert!(
            w.wait_until(WAIT, || w
                .client()
                .cache()
                .get_batch(&child_keys)
                .1
                .is_empty()),
            "{name} watcher caches the new version"
        );
        // Byte-identical weights either way the bytes moved.
        let (hits, _) = w.client().cache().get_batch(&child_keys);
        for (key, tensor) in hits {
            assert_eq!(&tensor, &child_tensors[&key], "{name} {key} differs");
        }
    }

    // The negotiated watcher reassembled the release from its cached
    // superseded version, pulling only the changed chunks; the baseline
    // pulled every byte materialized.
    let shipped: usize = child_tensors.values().map(|t| write_tensor(t).len()).sum();
    let neg_stats = negotiated.stats();
    let base_stats = baseline.stats();
    let neg_update = neg_stats.provider_bytes_fetched - neg_parent_bytes;
    let base_update = base_stats.provider_bytes_fetched - base_parent_bytes;
    assert!(neg_stats.chunk_fetches >= 1, "{neg_stats:?}");
    assert!(neg_stats.chunk_bytes_reused > 0, "{neg_stats:?}");
    assert_eq!(base_stats.chunk_fetches, 0, "{base_stats:?}");
    assert!(
        base_update * 10 >= shipped as u64 * 9,
        "baseline moves the materialized payload: {base_update} < ~{shipped}"
    );
    assert!(
        neg_update * 2 < base_update,
        "chunk exchange must move far fewer bytes: {neg_update} vs {base_update}"
    );

    // The provider counted the negotiation.
    let stats = writer.stats().unwrap();
    assert!(stats.transfer_chunks_offered > 0);
    assert!(
        stats.transfer_chunks_skipped > 0,
        "unchanged chunks skipped"
    );
}
