//! End-to-end tests of the replication subsystem: deterministic replica
//! placement, R-way writes, read failover, replicated retirement with a
//! replica down, and anti-entropy repair converging `gc_audit` to clean
//! after fault recovery.

use std::collections::HashMap;

use evostore_core::{
    trained_tensors, Deployment, EvoError, EvoStoreClient, OwnerMap, ReplicationPolicy,
};
use evostore_graph::{
    flatten, Activation, ArchPattern, Architecture, CompactGraph, LayerConfig, LayerKind,
    LayerPattern,
};
use evostore_rpc::FaultPlan;
use evostore_tensor::ModelId;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

/// The first model id (from 1) whose primary is provider `want` of `n`.
fn model_on(want: usize, n: usize) -> ModelId {
    (1..)
        .map(ModelId)
        .find(|m| m.provider_for(n) == want)
        .unwrap()
}

/// Store a parent (primary on provider 1) and a derived child (primary
/// on provider 3), so at factor 2 over 4 providers their replica chains
/// `[1, 2]` and `[3, 0]` are disjoint. Returns `(parent, child)`.
fn store_parent_and_child(client: &EvoStoreClient, seed: u64) -> (ModelId, ModelId) {
    let n = 4;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let parent = model_on(1, n);
    let child = model_on(3, n);
    let parent_g = seq(&[8, 16, 16, 4]);
    let child_g = seq(&[8, 16, 16, 5]);
    client
        .store_fresh(parent, &parent_g, 0.8, &mut rng)
        .unwrap();
    let best = client
        .query_best_ancestor(&child_g)
        .unwrap()
        .into_inner()
        .unwrap();
    let parent_meta = client.get_meta(parent).unwrap();
    let owner_map = OwnerMap::derive(child, &child_g, &best.lcp, &parent_meta.owner_map);
    let tensors: HashMap<_, _> = trained_tensors(&child_g, &owner_map, 42);
    client
        .store_model(child_g, owner_map, Some(parent), 0.9, &tensors)
        .unwrap();
    (parent, child)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replica_sets_are_deterministic_distinct_and_clamped(
        model in any::<u64>(),
        n in 1usize..9,
        factor in 0usize..12,
    ) {
        let policy = ReplicationPolicy::new(factor);
        let model = ModelId(model);
        let set = policy.replicas(model, n);
        // Exactly min(R, n) distinct providers — graceful at n < R.
        prop_assert_eq!(set.len(), factor.max(1).min(n));
        let mut dedup = set.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), set.len(), "replicas must be distinct");
        prop_assert!(set.iter().all(|&i| i < n));
        // Primary first, then the successor chain on the ring.
        prop_assert_eq!(set[0], model.provider_for(n));
        for (pos, &idx) in set.iter().enumerate() {
            prop_assert_eq!(idx, (set[0] + pos) % n);
        }
        // Deterministic: a second derivation is identical.
        prop_assert_eq!(set, policy.replicas(model, n));
    }
}

#[test]
fn reads_fail_over_to_a_replica_when_the_primary_is_down() {
    let dep = Deployment::in_memory_replicated(4, 2);
    let client = dep.client();
    let (parent, _child) = store_parent_and_child(&client, 11);

    let primary = dep.provider_ids()[parent.provider_for(4)];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(primary);

    // Metadata and every tensor come back from the surviving replica.
    let loaded = client.load_model(parent).unwrap();
    assert_eq!(
        loaded.tensors.len(),
        loaded.owner_map.all_tensor_keys().len()
    );
    assert!(
        client.telemetry().read_failovers() > 0,
        "failovers must be recorded"
    );

    plan.set_up(primary);
    client.load_model(parent).unwrap();
}

/// The acceptance scenario: with factor 2 and one provider held down,
/// fetches, LCP queries, pattern queries and retirement all succeed
/// without `Degraded`/`PartialFailure`; after recovery plus `repair()`
/// (and draining the parked decrement queue) the GC audit is clean.
#[test]
fn replicated_deployment_stays_available_and_repairs_clean() {
    let dep = Deployment::in_memory_replicated(4, 2);
    let client = dep.client();
    let (parent, child) = store_parent_and_child(&client, 12);

    let down_ep = dep.provider_ids()[parent.provider_for(4)];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(down_ep);

    // fetch_model: both models load completely through failover.
    client.load_model(parent).unwrap();
    let loaded_child = client.load_model(child).unwrap();
    assert_eq!(
        loaded_child.tensors.len(),
        loaded_child.owner_map.all_tensor_keys().len()
    );

    // query_lcp: full coverage through the surviving replicas — the
    // answer is NOT degraded, unlike the unreplicated deployment.
    let probe = seq(&[8, 16, 16, 6]);
    let got = client.query_best_ancestor(&probe).unwrap();
    assert!(!got.is_partial(), "chains still covered: not degraded");
    assert_eq!(got.into_inner().unwrap().model, child);
    assert_eq!(client.telemetry().degraded_queries(), 0);

    // Pattern queries dedup replica answers: the child appears once.
    // (The 5-unit head exists only in the child's graph.)
    let pat = ArchPattern::any().with_layer(LayerPattern::DenseUnits { min: 5, max: 5 });
    let found = client.find_matching(&pat).unwrap();
    assert!(!found.is_partial());
    let matches = found.into_inner();
    assert_eq!(matches.iter().filter(|(m, _)| *m == child).count(), 1);

    // retire_model succeeds; legs to the down replica park.
    let outcome = client.retire_model(child).unwrap();
    assert!(
        outcome.refs_parked > 0,
        "decrements for the down replica must park"
    );
    assert!(client.get_meta(child).is_err(), "child is gone");

    // Recovery: the provider returns with stale state (missed the
    // retirement and the pin decrements). Repair converges it.
    plan.set_up(down_ep);
    let report = dep.repair().unwrap();
    assert!(report.unreachable.is_empty());
    assert_eq!(report.missing_payloads, 0);

    // The parked decrements re-issue against the repaired provider and
    // hit the retirement fence repair seeded — no double-free.
    let flushed = client.flush_pending_decrements().unwrap();
    assert_eq!(flushed, outcome.refs_parked);
    dep.gc_audit().unwrap();

    // Parent survives the churn fully loadable from either replica.
    client.load_model(parent).unwrap();
}

#[test]
fn repair_rereplicates_stores_missed_by_a_down_mirror() {
    let dep = Deployment::in_memory_replicated(4, 2);
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(13);

    // Chain of the model: [1, 2]. Hold the mirror (2) down during the
    // store — the write succeeds on the primary, leaving debt.
    let model = model_on(1, 4);
    let mirror = dep.provider_ids()[2];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(mirror);

    client
        .store_fresh(model, &seq(&[8, 16, 4]), 0.7, &mut rng)
        .unwrap();
    assert!(
        client.telemetry().under_replicated_stores() > 0,
        "missed mirror leg must be recorded as debt"
    );

    plan.set_up(mirror);
    assert!(
        dep.gc_audit().is_err(),
        "audit must flag the under-replicated model"
    );

    let report = dep.repair().unwrap();
    assert!(
        report.models_synced >= 1,
        "mirror re-replicated: {report:?}"
    );
    assert_eq!(report.missing_payloads, 0);
    dep.gc_audit().unwrap();

    // The re-replicated copy actually serves reads: take the primary
    // down and load everything from the repaired mirror.
    plan.set_down(dep.provider_ids()[1]);
    let loaded = client.load_model(model).unwrap();
    assert_eq!(
        loaded.tensors.len(),
        loaded.owner_map.all_tensor_keys().len()
    );
}

#[test]
fn repair_is_idempotent_on_a_healthy_deployment() {
    let dep = Deployment::in_memory_replicated(4, 2);
    let client = dep.client();
    store_parent_and_child(&client, 14);

    let first = dep.repair().unwrap();
    assert_eq!(first.models_synced, 0, "{first:?}");
    assert_eq!(first.refs_adjusted, 0, "{first:?}");
    assert_eq!(first.orphans_removed, 0, "{first:?}");
    assert_eq!(first.retirements_applied, 0, "{first:?}");
    assert_eq!(first.missing_payloads, 0, "{first:?}");

    let second = dep.repair().unwrap();
    assert_eq!(second.models_synced, 0, "{second:?}");
    assert_eq!(second.refs_adjusted, 0, "{second:?}");
    dep.gc_audit().unwrap();
}

#[test]
fn queries_fail_typed_when_a_whole_chain_is_down() {
    let dep = Deployment::in_memory_replicated(4, 2);
    let client = dep.client();
    store_parent_and_child(&client, 15);

    // Providers 1 and 2 are one full chain at factor 2: models primary
    // on 1 lose both replicas, so coverage is genuinely gone.
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(dep.provider_ids()[1]);
    plan.set_down(dep.provider_ids()[2]);

    let err = client
        .query_best_ancestor(&seq(&[8, 16, 16, 6]))
        .unwrap_err();
    assert!(
        matches!(err, EvoError::PartialFailure { .. }),
        "lost chain must surface as quorum failure, got {err}"
    );
    assert!(err.is_transient());
}

#[test]
fn dropping_the_last_client_flushes_parked_decrements() {
    let dep = Deployment::in_memory_replicated(4, 2);
    let client = dep.client();
    let (parent, child) = store_parent_and_child(&client, 16);

    let down_ep = dep.provider_ids()[parent.provider_for(4)];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(down_ep);
    let outcome = client.retire_model(child).unwrap();
    assert!(outcome.refs_parked > 0);

    // The provider comes back while the decrements are still parked;
    // the client exits without an explicit flush.
    plan.set_up(down_ep);
    drop(client);

    // Drop drained the queue: counts converged without repair.
    dep.gc_audit().unwrap();
}
