//! Tests of the extended repository features: partial tensor reads,
//! architecture pattern queries, optimizer state, and crash recovery.

use evostore_core::{random_tensors, trained_tensors, Deployment, OwnerMap};
use evostore_graph::{
    flatten, Activation, ArchPattern, Architecture, CompactGraph, LayerConfig, LayerKind,
    LayerPattern,
};
use evostore_tensor::{DType, ModelId, TensorData, TensorKey, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

#[test]
fn partial_tensor_reads_match_full_reads() {
    let dep = Deployment::in_memory(3);
    let client = dep.client();
    let g = seq(&[16, 32, 8]);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let tensors = random_tensors(ModelId(1), &g, &mut rng);
    client
        .store_model(
            g.clone(),
            OwnerMap::fresh(ModelId(1), &g),
            None,
            0.5,
            &tensors,
        )
        .unwrap();

    // Slice the first dense kernel (16x32 f32 = 512 elements).
    let key = TensorKey::new(ModelId(1), VertexId(1), 0);
    let full = &tensors[&key];
    for (off, count) in [(0u64, 512u64), (100, 64), (511, 1), (0, 1)] {
        let slice = client.fetch_tensor_slice(key, off, count).unwrap();
        assert_eq!(slice.dtype(), DType::F32);
        assert_eq!(slice.num_elements(), count as usize);
        let esz = 4;
        assert_eq!(
            slice.bytes().as_ref(),
            &full.bytes()[off as usize * esz..(off + count) as usize * esz]
        );
    }

    // Out-of-bounds rejected.
    assert!(client.fetch_tensor_slice(key, 500, 64).is_err());
    // Unknown tensor rejected.
    let ghost = TensorKey::new(ModelId(99), VertexId(0), 0);
    assert!(client.fetch_tensor_slice(ghost, 0, 1).is_err());
    // No bulk leaks.
    assert_eq!(dep.fabric().bulk_regions(), 0);
}

#[test]
fn pattern_queries_span_providers() {
    let dep = Deployment::in_memory(4);
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(2);

    // Three models with distinctive widths, spread by placement hashing.
    client
        .store_fresh(ModelId(1), &seq(&[8, 100, 4]), 0.5, &mut rng)
        .unwrap();
    client
        .store_fresh(ModelId(2), &seq(&[8, 200, 4]), 0.9, &mut rng)
        .unwrap();
    client
        .store_fresh(ModelId(3), &seq(&[8, 300, 4]), 0.7, &mut rng)
        .unwrap();

    // Everything matches the empty pattern, best quality first.
    let all = client
        .find_matching(&ArchPattern::any())
        .unwrap()
        .into_inner();
    assert_eq!(all.len(), 3);
    assert_eq!(all[0].0, ModelId(2));

    // Range query.
    let wide = client
        .find_matching(
            &ArchPattern::any().with_layer(LayerPattern::DenseUnits { min: 150, max: 250 }),
        )
        .unwrap()
        .into_inner();
    assert_eq!(wide.len(), 1);
    assert_eq!(wide[0].0, ModelId(2));

    // Sequence query: dense(300) feeding dense(4).
    let seq_q = client
        .find_matching(&ArchPattern::any().with_sequence(vec![
            LayerPattern::DenseUnits { min: 300, max: 300 },
            LayerPattern::DenseUnits { min: 4, max: 4 },
        ]))
        .unwrap()
        .into_inner();
    assert_eq!(seq_q.len(), 1);
    assert_eq!(seq_q[0].0, ModelId(3));

    // No match.
    let none = client
        .find_matching(&ArchPattern::any().with_layer(LayerPattern::Kind("attention".into())))
        .unwrap()
        .into_inner();
    assert!(none.is_empty());
}

#[test]
fn optimizer_state_lifecycle() {
    let dep = Deployment::in_memory(2);
    let client = dep.client();
    let g = seq(&[8, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    client.store_fresh(ModelId(1), &g, 0.5, &mut rng).unwrap();

    // No state initially.
    assert!(client.load_optimizer_state(ModelId(1)).unwrap().is_empty());

    // Attach Adam-style moments: two per parameter tensor.
    let moments: Vec<TensorData> = (0..4)
        .map(|_| TensorData::random(&mut rng, DType::F32, vec![16]))
        .collect();
    let outcome = client.store_optimizer_state(ModelId(1), &moments).unwrap();
    assert_eq!(outcome.tensors_written, 4);
    dep.gc_audit().unwrap();

    // Roundtrip, order preserved.
    let back = client.load_optimizer_state(ModelId(1)).unwrap();
    assert_eq!(back, moments);

    // Double-attach rejected.
    assert!(client.store_optimizer_state(ModelId(1), &moments).is_err());

    // Unknown model rejected.
    assert!(client.store_optimizer_state(ModelId(9), &moments).is_err());

    // Optimizer tensors do not leak into model loads.
    let loaded = client.load_model(ModelId(1)).unwrap();
    assert_eq!(loaded.tensors.len(), 4); // 2 dense layers x (W, b)

    // Retirement reclaims the state with the model.
    let before = client.stats().unwrap();
    client.retire_model(ModelId(1)).unwrap();
    let after = client.stats().unwrap();
    assert_eq!(after.tensors, 0);
    assert!(after.tensor_bytes < before.tensor_bytes);
    dep.gc_audit().unwrap();
    assert!(client.load_optimizer_state(ModelId(1)).is_err());
}

#[test]
fn reopen_recovers_catalog_and_refcounts() {
    let dir = std::env::temp_dir().join(format!("evostore-reopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = evostore_core::DeploymentConfig {
        providers: 3,
        service_threads: 2,
        backend: evostore_core::BackendKind::Log { dir: dir.clone() },
        replication: evostore_core::ReplicationPolicy::default(),
        ..Default::default()
    };

    let parent_g = seq(&[8, 16, 16, 4]);
    let child_g = seq(&[8, 16, 16, 5]);
    let parent_tensors;

    // Session 1: a parent, a derived child, and optimizer state.
    {
        let dep = Deployment::new(cfg.clone());
        let client = dep.client();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let tensors = random_tensors(ModelId(1), &parent_g, &mut rng);
        client
            .store_model(
                parent_g.clone(),
                OwnerMap::fresh(ModelId(1), &parent_g),
                None,
                0.8,
                &tensors,
            )
            .unwrap();
        parent_tensors = Some(tensors);
        let _ = &parent_tensors;

        let best = client
            .query_best_ancestor(&child_g)
            .unwrap()
            .into_inner()
            .unwrap();
        let (meta, _) = client.fetch_prefix(&best).unwrap();
        let map = OwnerMap::derive(ModelId(2), &child_g, &best.lcp, &meta.owner_map);
        let new = trained_tensors(&child_g, &map, 7);
        client
            .store_model(child_g.clone(), map, Some(ModelId(1)), 0.9, &new)
            .unwrap();

        let moments = vec![TensorData::zeros(DType::F32, vec![8])];
        client.store_optimizer_state(ModelId(2), &moments).unwrap();
        dep.gc_audit().unwrap();
    } // deployment dropped: "process restart"

    // Session 2: reopen and verify everything.
    let dep = Deployment::reopen(cfg).expect("recovery succeeds");
    let client = dep.client();

    // Both models load; the child's inherited tensors are byte-identical
    // to what the parent stored before the restart.
    let loaded_child = client.load_model(ModelId(2)).unwrap();
    let parent_tensors = parent_tensors.unwrap();
    for (key, tensor) in &loaded_child.tensors {
        if key.owner == ModelId(1) {
            assert_eq!(tensor, &parent_tensors[key]);
        }
    }
    assert_eq!(loaded_child.parent, Some(ModelId(1)));

    // Optimizer state survived.
    let moments = client.load_optimizer_state(ModelId(2)).unwrap();
    assert_eq!(moments.len(), 1);

    // LCP queries see the recovered catalog.
    let best = client
        .query_best_ancestor(&child_g)
        .unwrap()
        .into_inner()
        .unwrap();
    assert_eq!(best.model, ModelId(2));

    // GC still works across the restart: retiring the parent keeps the
    // child loadable, retiring everything drains the store.
    client.retire_model(ModelId(1)).unwrap();
    dep.gc_audit().unwrap();
    assert!(client.load_model(ModelId(2)).is_ok());
    client.retire_model(ModelId(2)).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.models, 0);
    assert_eq!(stats.tensors, 0);
    dep.gc_audit().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopen_purges_orphaned_tensors() {
    // Simulate a crash between metadata retirement and the decrement
    // fan-out: the tensor store still holds payloads no catalog entry
    // references. Recovery must reclaim them.
    let dir = std::env::temp_dir().join(format!("evostore-orphan-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = evostore_core::DeploymentConfig {
        providers: 2,
        service_threads: 1,
        backend: evostore_core::BackendKind::Log { dir: dir.clone() },
        replication: evostore_core::ReplicationPolicy::default(),
        ..Default::default()
    };
    let g = seq(&[8, 16, 4]);
    {
        let dep = Deployment::new(cfg.clone());
        let client = dep.client();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        client.store_fresh(ModelId(1), &g, 0.5, &mut rng).unwrap();
        // Crash mid-retirement: drop the metadata directly, leaving the
        // tensors stranded on disk.
        let states = dep.provider_states();
        let host = ModelId(1).provider_for(2);
        states[host]
            .handle_retire_meta(evostore_core::messages::RetireMetaRequest { model: ModelId(1) })
            .unwrap();
        // (no decrement fan-out — the "crash")
    }
    let dep = Deployment::reopen(cfg).expect("recovery succeeds");
    let stats = dep.client().stats().unwrap();
    assert_eq!(stats.models, 0);
    assert_eq!(stats.tensors, 0, "orphans must be purged");
    dep.gc_audit().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn caching_client_serves_repeated_transfers_locally() {
    use evostore_core::CachingClient;

    let dep = Deployment::in_memory(3);
    let client = dep.client();
    let caching = CachingClient::new(dep.client(), 64 << 20);
    let base_g = seq(&[8, 16, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    client
        .store_fresh(ModelId(1), &base_g, 0.9, &mut rng)
        .unwrap();

    // Two children transfer the same prefix from the same popular parent.
    let child_g = seq(&[8, 16, 16, 9]);
    let best = client
        .query_best_ancestor(&child_g)
        .unwrap()
        .into_inner()
        .unwrap();

    let (_, first) = caching.fetch_prefix(&best).unwrap();
    let (h0, m0) = caching.cache().stats();
    assert_eq!(h0, 0);
    assert_eq!(m0 as usize, first.len());

    let (_, second) = caching.fetch_prefix(&best).unwrap();
    let (h1, _m1) = caching.cache().stats();
    assert_eq!(h1 as usize, second.len(), "second transfer fully cached");
    for (k, t) in &second {
        assert_eq!(t, &first[k]);
    }

    // Full-model prefetch warms the remaining tensors.
    let n = caching.prefetch_model(ModelId(1)).unwrap();
    assert_eq!(n, 6);

    // Retiring through the caching client invalidates its tensors.
    caching.retire_model(ModelId(1)).unwrap();
    assert!(caching.cache().is_empty());
    dep.gc_audit().unwrap();
}

#[test]
fn tiered_backend_deployment_roundtrip_and_reopen() {
    let dir = std::env::temp_dir().join(format!("evostore-tiered-dep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = evostore_core::DeploymentConfig {
        providers: 2,
        service_threads: 1,
        backend: evostore_core::BackendKind::Tiered {
            dir: dir.clone(),
            memory_budget: 1 << 20,
        },
        replication: evostore_core::ReplicationPolicy::default(),
        ..Default::default()
    };
    let g = seq(&[8, 16, 4]);
    let tensors;
    {
        let dep = Deployment::new(cfg.clone());
        let client = dep.client();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        tensors = random_tensors(ModelId(1), &g, &mut rng);
        client
            .store_model(
                g.clone(),
                OwnerMap::fresh(ModelId(1), &g),
                None,
                0.5,
                &tensors,
            )
            .unwrap();
        // Served from the memory tier.
        let loaded = client.load_model(ModelId(1)).unwrap();
        assert_eq!(loaded.tensors.len(), tensors.len());
        dep.gc_audit().unwrap();
    }
    // The durable tier survives a restart.
    let dep = Deployment::reopen(cfg).unwrap();
    let loaded = dep.client().load_model(ModelId(1)).unwrap();
    for (k, t) in &tensors {
        assert_eq!(&loaded.tensors[k], t);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
