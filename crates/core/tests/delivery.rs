//! Delivery-plane integration tests: subscriptions, event exactly-once
//! semantics, bounded-queue loss surfacing, replay after restart, cache
//! invalidation on supersession, and broadcast-tree failover.

use std::collections::HashSet;
use std::time::Duration;

use evostore_core::{
    random_tensors, CachingClient, Deployment, EvoError, ModelWatcher, OwnerMap, WatchConfig,
};
use evostore_deliver::{EventKind, SubscriptionFilter};
use evostore_graph::{flatten, Activation, Architecture, CompactGraph, LayerConfig, LayerKind};
use evostore_rpc::{FaultAction, FaultPlan, FaultRule};
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const WAIT: Duration = Duration::from_secs(10);

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

/// The family graph all tests release under, and the prefix filter that
/// matches every model sharing its first two layers.
fn family_graph() -> CompactGraph {
    seq(&[8, 16, 16, 4])
}

fn family_filter() -> SubscriptionFilter {
    SubscriptionFilter::ArchPrefix(seq(&[8, 16]))
}

fn store_family_model(client: &evostore_core::EvoStoreClient, model: ModelId, seed: u64) {
    let g = family_graph();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tensors = random_tensors(model, &g, &mut rng);
    client
        .store_model(g.clone(), OwnerMap::fresh(model, &g), None, 0.5, &tensors)
        .unwrap();
}

#[test]
fn subscribe_store_receive_exactly_once() {
    let dep = Deployment::in_memory(2);
    let watcher = ModelWatcher::attach(
        CachingClient::new(dep.client(), 64 << 20),
        family_filter(),
        WatchConfig::default(),
        Some(dep.obs()),
    )
    .unwrap();
    let writer = dep.client();

    for m in 1..=4u64 {
        store_family_model(&writer, ModelId(m), m);
    }
    assert!(
        watcher.wait_until(WAIT, || watcher.applied().len() >= 4),
        "4 store events arrive; got {:?}",
        watcher.applied()
    );

    // Exactly once: every (provider, seq) pair applied a single time,
    // and each released model appears exactly once.
    let applied = watcher.applied();
    let seqs: HashSet<(u32, u64)> = applied.iter().map(|e| (e.provider, e.seq)).collect();
    assert_eq!(seqs.len(), applied.len(), "no (provider, seq) re-applied");
    let models: HashSet<ModelId> = applied.iter().map(|e| e.model).collect();
    assert_eq!(models.len(), 4);

    // Prefetch pulled every released tensor into the cache.
    let g = family_graph();
    for m in 1..=4u64 {
        let keys = OwnerMap::fresh(ModelId(m), &g).all_tensor_keys();
        let (hits, missing) = watcher.client().cache().get_batch(&keys);
        assert!(missing.is_empty(), "model {m} fully cached");
        assert_eq!(hits.len(), keys.len());
    }
    assert!(watcher.take_errors().is_empty());

    // The provider side agrees on the ledger: published == delivered,
    // nothing dropped.
    let stats = writer.stats().unwrap();
    assert_eq!(stats.deliver.events_published, 4);
    assert_eq!(stats.deliver.events_delivered, 4);
    assert_eq!(stats.deliver.events_dropped, 0);
    assert!(stats.deliver.releases >= 4);
}

#[test]
fn dropped_acks_cause_duplicates_that_are_not_reapplied() {
    let dep = Deployment::in_memory(1);
    let watcher = ModelWatcher::attach(
        CachingClient::new(dep.client(), 64 << 20),
        family_filter(),
        WatchConfig::default(),
        None,
    )
    .unwrap();
    // Drop the reply of the first event push: the watcher applies the
    // events but the provider never sees the ack, so the pump re-pushes
    // the same sequence numbers.
    dep.fabric().install_fault_plan(
        FaultPlan::new(7).rule(
            FaultRule::new(FaultAction::DropReply)
                .on_endpoint(watcher.endpoint_id())
                .on_method("deliver.event")
                .first(1),
        ),
    );
    let writer = dep.client();
    store_family_model(&writer, ModelId(10), 1);
    store_family_model(&writer, ModelId(11), 2);

    assert!(
        watcher.wait_until(WAIT, || {
            watcher.applied().len() >= 2 && watcher.stats().events_duplicate >= 1
        }),
        "events applied once and the retried push deduplicated; applied={:?} stats={:?}",
        watcher.applied(),
        watcher.stats()
    );
    let applied = watcher.applied();
    let seqs: HashSet<(u32, u64)> = applied.iter().map(|e| (e.provider, e.seq)).collect();
    assert_eq!(
        seqs.len(),
        applied.len(),
        "duplicates were never re-applied"
    );
    assert_eq!(applied.len(), 2);
}

#[test]
fn queue_overflow_surfaces_typed_events_lost_and_replays() {
    let dep = Deployment::in_memory(1);
    let watcher = ModelWatcher::attach(
        CachingClient::new(dep.client(), 64 << 20),
        family_filter(),
        WatchConfig {
            queue_capacity: 2,
            prefetch: false,
            serve_peers: false,
            ..WatchConfig::default()
        },
        None,
    )
    .unwrap();
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));

    // Take the watcher down and burst more releases than its bounded
    // queue holds: the provider must drop oldest-first and remember the
    // loss point.
    plan.set_down(watcher.endpoint_id());
    let providers = dep.provider_states();
    for m in 20..30u64 {
        providers[0].insert_meta_only(ModelId(m), family_graph(), 0.5);
    }
    plan.set_up(watcher.endpoint_id());

    // The first successful push carries `lost_from`; the watcher turns
    // it into a typed error and (auto_resubscribe) replays the catalog
    // from its last applied timestamp, recovering every dropped model.
    assert!(
        watcher.wait_until(WAIT, || {
            let models: HashSet<ModelId> = watcher.applied().iter().map(|e| e.model).collect();
            (20..30).all(|m| models.contains(&ModelId(m)))
        }),
        "replay recovers all released models; applied={:?}",
        watcher.applied()
    );
    let errors = watcher.take_errors();
    assert!(
        errors
            .iter()
            .any(|e| matches!(e, EvoError::EventsLost { .. })),
        "loss surfaced as a typed error, not a silent gap: {errors:?}"
    );
    let stats = dep.client().stats().unwrap();
    assert!(stats.deliver.events_dropped > 0, "overflow was counted");
}

#[test]
fn provider_restart_replays_from_record_timestamps() {
    let dir = std::env::temp_dir().join(format!("evostore-deliver-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = evostore_core::DeploymentConfig {
        providers: 1,
        backend: evostore_core::BackendKind::Log { dir: dir.clone() },
        ..Default::default()
    };

    // Session 1: two releases, no watcher.
    {
        let dep = Deployment::new(cfg.clone());
        let writer = dep.client();
        store_family_model(&writer, ModelId(1), 1);
        store_family_model(&writer, ModelId(2), 2);
    }

    // Session 2: the provider restarts with an empty delivery hub;
    // a watcher subscribing with a replay point receives `Stored`
    // events for every durable record newer than it, then prefetches
    // the weights (fresh sequence numbers; replay keyed on durable
    // record timestamps, not on the dead incarnation's seqs).
    let dep = Deployment::reopen(cfg).expect("recovery succeeds");
    let watcher = ModelWatcher::attach(
        CachingClient::new(dep.client(), 64 << 20),
        family_filter(),
        WatchConfig {
            replay_after: Some(0),
            ..WatchConfig::default()
        },
        None,
    )
    .unwrap();
    assert!(
        watcher.wait_until(WAIT, || watcher.applied().len() >= 2),
        "replayed events arrive after restart; applied={:?}",
        watcher.applied()
    );
    let applied = watcher.applied();
    let models: HashSet<ModelId> = applied.iter().map(|e| e.model).collect();
    assert_eq!(models, HashSet::from([ModelId(1), ModelId(2)]));
    assert!(applied.iter().all(|e| e.kind == EventKind::Stored));
    // Replay order follows write timestamps.
    assert_eq!(applied[0].model, ModelId(1));
    assert_eq!(applied[1].model, ModelId(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn events_invalidate_superseded_cache_entries() {
    let dep = Deployment::in_memory(1);
    let watcher = ModelWatcher::attach(
        CachingClient::new(dep.client(), 64 << 20),
        family_filter(),
        WatchConfig::default(),
        None,
    )
    .unwrap();
    let writer = dep.client();
    let g = family_graph();

    store_family_model(&writer, ModelId(1), 1);
    let old_keys = OwnerMap::fresh(ModelId(1), &g).all_tensor_keys();
    assert!(
        watcher.wait_until(WAIT, || {
            watcher.client().cache().get_batch(&old_keys).1.is_empty()
        }),
        "v1 weights prefetched into the cache"
    );

    // A separate writer retires v1 and releases v2. The watcher must
    // evict the stale v1 tensors and pick up v2 — with no manual cache
    // management by the application.
    writer.retire_model(ModelId(1)).unwrap();
    store_family_model(&writer, ModelId(2), 2);

    let new_keys = OwnerMap::fresh(ModelId(2), &g).all_tensor_keys();
    assert!(
        watcher.wait_until(WAIT, || {
            watcher.client().cache().get_batch(&new_keys).1.is_empty()
        }),
        "v2 weights prefetched"
    );
    let (stale_hits, _) = watcher.client().cache().get_batch(&old_keys);
    assert!(
        stale_hits.is_empty(),
        "retired model's tensors evicted from the cache: {stale_hits:?}"
    );
    let retires = watcher
        .applied()
        .iter()
        .filter(|e| e.kind == EventKind::Retired)
        .count();
    assert_eq!(retires, 1);
}

#[test]
fn broadcast_tree_reforms_around_dead_interior_peer() {
    // Fanout 1 makes the tree a chain: w[0] <- w[1] <- w[2] <- ... so
    // downing a middle watcher forces its child to fail over up-chain.
    let cfg = evostore_core::DeploymentConfig {
        providers: 1,
        deliver_fanout: 1,
        ..Default::default()
    };
    let dep = Deployment::new(cfg);
    let watchers: Vec<ModelWatcher> = (0..5)
        .map(|_| {
            ModelWatcher::attach(
                CachingClient::new(dep.client(), 64 << 20),
                family_filter(),
                WatchConfig {
                    // Fail over fast: one poll round per dead peer.
                    peer_poll_attempts: 40,
                    ..WatchConfig::default()
                },
                None,
            )
            .unwrap()
        })
        .collect();
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));

    // Down the chain's middle watcher, then release. Its own push and
    // its exposed region both fail; every other watcher must still get
    // the weights by walking its fetch chain past the hole.
    let victim = 2usize;
    plan.set_down(watchers[victim].endpoint_id());
    store_family_model(&dep.client(), ModelId(1), 1);

    let keys = OwnerMap::fresh(ModelId(1), &family_graph()).all_tensor_keys();
    for (i, w) in watchers.iter().enumerate() {
        if i == victim {
            continue;
        }
        assert!(
            w.wait_until(WAIT, || w.client().cache().get_batch(&keys).1.is_empty()),
            "watcher {i} got the full weights despite the dead interior peer; \
             applied={:?} errors={:?}",
            w.applied(),
            w.take_errors()
        );
    }
    // The release still moved peer-to-peer where the chain was intact.
    let peer_fetches: u64 = watchers
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != victim)
        .map(|(_, w)| w.stats().peer_fetches)
        .sum();
    assert!(
        peer_fetches >= 1,
        "at least one live watcher fetched from a peer"
    );
}

#[test]
fn exactly_once_under_store_retire_churn_with_fault_window() {
    let dep = Deployment::in_memory(2);
    let watchers: Vec<ModelWatcher> = (0..2)
        .map(|_| {
            ModelWatcher::attach(
                CachingClient::new(dep.client(), 64 << 20),
                family_filter(),
                WatchConfig::default(),
                None,
            )
            .unwrap()
        })
        .collect();
    // Fault window: the first two event pushes to watcher 0 lose their
    // replies, forcing duplicate pushes mid-churn.
    dep.fabric().install_fault_plan(
        FaultPlan::new(3).rule(
            FaultRule::new(FaultAction::DropReply)
                .on_endpoint(watchers[0].endpoint_id())
                .on_method("deliver.event")
                .first(2),
        ),
    );

    let writer = dep.client();
    let mut live: Vec<ModelId> = Vec::new();
    let mut expected_events = 0u64;
    for m in 1..=15u64 {
        store_family_model(&writer, ModelId(m), m);
        live.push(ModelId(m));
        expected_events += 1;
        if m % 3 == 0 {
            let victim = live.remove(0);
            writer.retire_model(victim).unwrap();
            expected_events += 1;
        }
    }

    for (i, w) in watchers.iter().enumerate() {
        assert!(
            w.wait_until(WAIT, || w.applied().len() as u64 >= expected_events),
            "watcher {i} applied all {expected_events} events; got {}",
            w.applied().len()
        );
        let applied = w.applied();
        let seqs: HashSet<(u32, u64)> = applied.iter().map(|e| (e.provider, e.seq)).collect();
        assert_eq!(
            seqs.len(),
            applied.len(),
            "watcher {i}: every (provider, seq) applied exactly once"
        );
        assert_eq!(applied.len() as u64, expected_events);
        // No losses: faults delayed acks but never overflowed queues.
        assert!(w
            .take_errors()
            .iter()
            .all(|e| !matches!(e, EvoError::EventsLost { .. })));
    }
    // The fault window really produced duplicates, and they were absorbed.
    assert!(
        watchers[0].stats().events_duplicate >= 1,
        "dropped acks forced at least one duplicate push"
    );
}
