//! Mixed-workload concurrency stress: queries, transfers, stores and
//! retirements racing across many client threads — the §5 access pattern
//! — must leave the repository GC-consistent with no lost tensors.

use std::sync::atomic::{AtomicU64, Ordering};

use evostore_core::{trained_tensors, Deployment, OwnerMap};
use evostore_graph::{flatten, GenomeSpace};
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn mixed_workload_stays_consistent() {
    let dep = Deployment::in_memory(4);
    let space = GenomeSpace::tiny();

    // Seed a base population.
    {
        let client = dep.client();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for id in 1..=8u64 {
            let g = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
            let map = OwnerMap::fresh(ModelId(id), &g);
            let tensors = trained_tensors(&g, &map, id);
            dep.client()
                .store_model(g, map, None, 0.5, &tensors)
                .unwrap();
        }
        drop(client);
    }

    let next_id = AtomicU64::new(100);
    let stored: parking_lot::Mutex<Vec<ModelId>> = parking_lot::Mutex::new(Vec::new());

    std::thread::scope(|s| {
        // Derivation workers: query -> fetch -> derive -> store.
        for t in 0..4u64 {
            let client = dep.client();
            let space = space.clone();
            let next_id = &next_id;
            let stored = &stored;
            s.spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(100 + t);
                for _ in 0..12 {
                    let g = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
                    let model = ModelId(next_id.fetch_add(1, Ordering::Relaxed));
                    match client.query_best_ancestor(&g).unwrap().into_inner() {
                        Some(best) => {
                            // The ancestor may be retired mid-flight by the
                            // retirement thread: both outcomes are legal.
                            if let Ok((meta, _tensors)) = client.fetch_prefix(&best) {
                                let map = OwnerMap::derive(model, &g, &best.lcp, &meta.owner_map);
                                let new = trained_tensors(&g, &map, model.0);
                                if client
                                    .store_model(g, map, Some(best.model), 0.6, &new)
                                    .is_ok()
                                {
                                    stored.lock().push(model);
                                }
                            }
                        }
                        None => {
                            let map = OwnerMap::fresh(model, &g);
                            let new = trained_tensors(&g, &map, model.0);
                            client.store_model(g, map, None, 0.6, &new).unwrap();
                            stored.lock().push(model);
                        }
                    }
                }
            });
        }

        // Query-only workers hammer the LCP broadcast concurrently.
        for t in 0..2u64 {
            let client = dep.client();
            let space = space.clone();
            s.spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(200 + t);
                for _ in 0..30 {
                    let g = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
                    let _ = client.query_best_ancestor(&g).unwrap();
                }
            });
        }

        // A retirement worker churns the seed population.
        {
            let client = dep.client();
            s.spawn(move || {
                for id in 1..=8u64 {
                    // Ignore races (e.g. double retire attempts elsewhere).
                    let _ = client.retire_model(ModelId(id));
                }
            });
        }
    });

    // The repository must be exactly consistent afterwards.
    dep.gc_audit().unwrap();
    assert_eq!(dep.fabric().bulk_regions(), 0, "no leaked bulk regions");

    // Every successfully stored model is fully loadable.
    let client = dep.client();
    let stored = stored.into_inner();
    assert!(!stored.is_empty());
    for m in &stored {
        let loaded = client.load_model(*m).unwrap();
        assert_eq!(
            loaded.tensors.len(),
            loaded.owner_map.all_tensor_keys().len()
        );
    }

    // Drain everything; the store must empty.
    for m in stored {
        client.retire_model(m).unwrap();
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.models, 0);
    assert_eq!(stats.tensors, 0);
    dep.gc_audit().unwrap();
}
