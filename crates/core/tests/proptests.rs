//! Property tests: random mutation lineages against a live deployment.
//!
//! Drives genome-space candidates through query → transfer → derive →
//! store → (sometimes) retire, then checks the global invariants: GC
//! consistency, loadability of every live model, and storage never
//! exceeding the sum of unique tensors.

use evostore_core::{trained_tensors, Deployment, OwnerMap};
use evostore_graph::{flatten, GenomeSpace};
use evostore_tensor::ModelId;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_lineage_workload_keeps_invariants(
        seed in any::<u64>(),
        steps in 3usize..10,
        retire_mask in any::<u16>(),
        providers in 1usize..5,
    ) {
        let space = GenomeSpace::tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let dep = Deployment::in_memory(providers);
        let client = dep.client();

        let mut genome = space.sample(&mut rng);
        let mut live: Vec<ModelId> = Vec::new();
        let mut next_id = 1u64;

        #[allow(clippy::explicit_counter_loop)]
        for step in 0..steps {
            let graph = flatten(&space.materialize(&genome)).unwrap();
            let model = ModelId(next_id);
            next_id += 1;

            match client.query_best_ancestor(&graph).unwrap().into_inner() {
                Some(best) => {
                    let (meta, fetched) = client.fetch_prefix(&best).unwrap();
                    // Transferred tensors must match the prefix keys.
                    prop_assert_eq!(
                        fetched.len(),
                        best.lcp
                            .prefix
                            .iter()
                            .map(|&gv| {
                                let av = best.lcp.match_in_ancestor[gv.0 as usize].unwrap();
                                meta.owner_map.vertex(av).slots as usize
                            })
                            .sum::<usize>()
                    );
                    let map = OwnerMap::derive(model, &graph, &best.lcp, &meta.owner_map);
                    let tensors = trained_tensors(&graph, &map, seed ^ step as u64);
                    client
                        .store_model(graph.clone(), map, Some(best.model), 0.5, &tensors)
                        .unwrap();
                }
                None => {
                    let map = OwnerMap::fresh(model, &graph);
                    let tensors = trained_tensors(&graph, &map, seed ^ step as u64);
                    client
                        .store_model(graph.clone(), map, None, 0.5, &tensors)
                        .unwrap();
                }
            }
            live.push(model);

            // Sometimes retire a random earlier model.
            if retire_mask & (1 << step) != 0 && live.len() > 1 {
                let idx = (seed as usize ^ step) % (live.len() - 1);
                let victim = live.remove(idx);
                client.retire_model(victim).unwrap();
            }

            dep.gc_audit().map_err(TestCaseError::fail)?;
            genome = space.mutate(&genome, &mut rng);
        }

        // Every live model loads completely.
        for &m in &live {
            let loaded = client.load_model(m).unwrap();
            prop_assert_eq!(
                loaded.tensors.len(),
                loaded.owner_map.all_tensor_keys().len()
            );
        }

        // Retire everything: storage drains to zero.
        for &m in &live {
            client.retire_model(m).unwrap();
        }
        let stats = client.stats().unwrap();
        prop_assert_eq!(stats.models, 0);
        prop_assert_eq!(stats.tensors, 0);
        prop_assert_eq!(stats.tensor_bytes, 0);
        dep.gc_audit().map_err(TestCaseError::fail)?;

        // No leaked bulk regions anywhere in the run.
        prop_assert_eq!(dep.fabric().bulk_regions(), 0);
    }
}
