//! Fault-injection tests of the resilient client: degraded LCP queries
//! under provider loss, quorum failure, retry exhaustion, bulk-region
//! fault surfaces, and eventually-consistent GC via parked decrements.

use std::collections::HashMap;
use std::time::Duration;

use evostore_core::messages::{methods, RefsRequest};
use evostore_core::{trained_tensors, Deployment, EvoError, EvoStoreClient, OwnerMap};
use evostore_graph::{flatten, Activation, Architecture, CompactGraph, LayerConfig, LayerKind};
use evostore_rpc::{FaultAction, FaultPlan, FaultRule, RpcError};
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

/// The first model id (from 1) hashing to provider index `want` of `n`.
fn model_on(want: usize, n: usize) -> ModelId {
    (1..)
        .map(ModelId)
        .find(|m| m.provider_for(n) == want)
        .unwrap()
}

/// Store a parent and a child deriving its shared prefix, placed on
/// different providers. Returns `(parent, child)`.
fn store_parent_and_child(client: &EvoStoreClient, n: usize, seed: u64) -> (ModelId, ModelId) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let parent = model_on(1, n);
    let child = model_on(2, n);
    let parent_g = seq(&[8, 16, 16, 4]);
    let child_g = seq(&[8, 16, 16, 5]);
    client
        .store_fresh(parent, &parent_g, 0.8, &mut rng)
        .unwrap();
    let best = client
        .query_best_ancestor(&child_g)
        .unwrap()
        .into_inner()
        .unwrap();
    let parent_meta = client.get_meta(parent).unwrap();
    let owner_map = OwnerMap::derive(child, &child_g, &best.lcp, &parent_meta.owner_map);
    let tensors: HashMap<_, _> = trained_tensors(&child_g, &owner_map, 42);
    client
        .store_model(child_g, owner_map, Some(parent), 0.9, &tensors)
        .unwrap();
    (parent, child)
}

#[test]
fn lcp_query_degrades_with_one_provider_down() {
    let dep = Deployment::in_memory(4);
    let client = dep.client_builder().min_quorum(2).build();
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    let parent = model_on(1, 4);
    let parent_g = seq(&[8, 16, 16, 4]);
    client
        .store_fresh(parent, &parent_g, 0.8, &mut rng)
        .unwrap();

    // Take down a provider that does NOT host the parent's catalog entry.
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    let down_ep = dep.provider_ids()[0];
    plan.set_down(down_ep);

    let child_g = seq(&[8, 16, 16, 5]);
    let got = client.query_best_ancestor(&child_g).unwrap();
    assert!(got.is_partial(), "one provider was unreachable");
    assert_eq!(got.unreachable, vec![down_ep]);
    let best = got.into_inner().expect("parent is reachable");
    assert_eq!(best.model, parent);
    assert_eq!(best.lcp.len(), 3); // input + 2 shared dense layers

    assert_eq!(client.telemetry().degraded_queries(), 1);
    assert!(client.telemetry().rpc.retries() > 0, "down leg was retried");
}

#[test]
fn lcp_query_fails_typed_below_quorum() {
    let dep = Deployment::in_memory(4);
    let client = dep.client_builder().min_quorum(2).build();
    let mut rng = ChaCha8Rng::seed_from_u64(2);

    let parent = model_on(1, 4);
    client
        .store_fresh(parent, &seq(&[8, 16, 4]), 0.8, &mut rng)
        .unwrap();

    // 3 of 4 providers down, including quorum: only the parent's host
    // answers, below min_quorum = 2.
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    for idx in [0usize, 2, 3] {
        plan.set_down(dep.provider_ids()[idx]);
    }

    let err = client.query_best_ancestor(&seq(&[8, 16, 5])).unwrap_err();
    match err {
        EvoError::PartialFailure { ref failed } => {
            assert_eq!(failed.len(), 3, "three providers unreachable: {failed:?}");
        }
        other => panic!("expected PartialFailure, got {other}"),
    }
    assert!(err.is_transient(), "quorum loss is retryable later");
    assert_eq!(client.telemetry().degraded_queries(), 0);
}

#[test]
fn unary_retries_flaky_endpoint_then_exhausts_persistent_one() {
    let dep = Deployment::in_memory(2);
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(3);

    let model = ModelId(1);
    client
        .store_fresh(model, &seq(&[4, 8, 2]), 0.5, &mut rng)
        .unwrap();
    let host = dep.provider_ids()[model.provider_for(2)];

    // Flaky: the first two calls to the host fail, the third succeeds —
    // within the default 3-attempt policy.
    dep.fabric().install_fault_plan(
        FaultPlan::new(0).rule(
            FaultRule::new(FaultAction::Unavailable)
                .on_endpoint(host)
                .first(2),
        ),
    );
    let meta = client.get_meta(model).expect("recovered by retries");
    assert_eq!(meta.graph.len(), 3);
    assert_eq!(client.telemetry().rpc.retries(), 2);
    assert_eq!(client.telemetry().rpc.exhausted(), 0);

    // Persistent: every call fails; the policy exhausts and surfaces a
    // typed transient error, not a panic or a hang.
    dep.fabric().install_fault_plan(
        FaultPlan::new(0).rule(FaultRule::new(FaultAction::Unavailable).on_endpoint(host)),
    );
    let err = client.get_meta(model).unwrap_err();
    assert!(
        matches!(err, EvoError::Unavailable { endpoint } if endpoint == host),
        "got {err}"
    );
    assert!(err.is_transient());
    assert_eq!(client.telemetry().rpc.exhausted(), 1);

    // Clearing the plan restores normal service.
    dep.fabric().clear_fault_plan();
    client.get_meta(model).unwrap();
}

#[test]
fn fetch_from_down_provider_is_typed_not_panic() {
    let dep = Deployment::in_memory(2);
    let client = dep.client_builder().max_attempts(2).build();
    let mut rng = ChaCha8Rng::seed_from_u64(4);

    let model = ModelId(1);
    client
        .store_fresh(model, &seq(&[4, 8, 2]), 0.5, &mut rng)
        .unwrap();

    let host = dep.provider_ids()[model.provider_for(2)];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(host);

    let err = client.load_model(model).unwrap_err();
    assert!(
        err.is_transient(),
        "down provider is a transient failure: {err}"
    );

    plan.set_up(host);
    client.load_model(model).unwrap();
}

#[test]
fn bulk_get_on_withdrawn_or_down_region_errors_cleanly() {
    let dep = Deployment::in_memory(2);
    let owner = dep.provider_ids()[0];
    let fabric = dep.fabric();

    let handle = fabric.bulk_expose_owned(bytes::Bytes::from_static(b"payload"), owner);
    let plan = fabric.install_fault_plan(FaultPlan::new(0));

    // Owner down: the region is unreadable but not gone.
    plan.set_down(owner);
    assert!(matches!(fabric.bulk_get(handle), Err(RpcError::Unavailable(ep)) if ep == owner));
    plan.set_up(owner);
    assert_eq!(fabric.bulk_get(handle).unwrap().as_ref(), b"payload");

    // Withdrawn: permanently gone — an error, never a panic.
    assert!(fabric.bulk_release(handle));
    let err = fabric.bulk_get(handle).unwrap_err();
    assert!(matches!(err, RpcError::NoSuchBulk(_)), "got {err}");
    assert!(!err.is_transient(), "withdrawal is permanent");
}

#[test]
fn transient_decrement_failures_park_and_flush_for_consistent_gc() {
    let n = 4;
    let dep = Deployment::in_memory(n);
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(5);

    // Parent and child on different providers, so retiring the child
    // decrements refs on the parent's host (inherited prefix) and on its
    // own host (self-owned tensors).
    let parent = model_on(1, n);
    let child = model_on(2, n);
    let parent_g = seq(&[8, 16, 16, 4]);
    let child_g = seq(&[8, 16, 16, 5]);

    client
        .store_fresh(parent, &parent_g, 0.8, &mut rng)
        .unwrap();
    let best = client
        .query_best_ancestor(&child_g)
        .unwrap()
        .into_inner()
        .unwrap();
    let parent_meta = client.get_meta(parent).unwrap();
    let owner_map = OwnerMap::derive(child, &child_g, &best.lcp, &parent_meta.owner_map);
    let tensors: HashMap<_, _> = trained_tensors(&child_g, &owner_map, 42);
    client
        .store_model(child_g.clone(), owner_map, Some(parent), 0.9, &tensors)
        .unwrap();

    // The parent's host goes down; retire the child anyway.
    let parent_host = dep.provider_ids()[parent.provider_for(n)];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(parent_host);

    let outcome = client.retire_model(child).unwrap();
    assert!(
        outcome.refs_parked > 0,
        "inherited decrements must be parked"
    );
    assert_eq!(client.pending_decrement_count(), outcome.refs_parked);
    assert_eq!(
        client.telemetry().parked_decrements(),
        outcome.refs_parked as u64
    );
    // The child is gone even though GC is still pending.
    assert!(client.get_meta(child).is_err());

    // Refcounts are over-pinned until the flush — audit must fail.
    assert!(
        dep.gc_audit().is_err(),
        "parked decrements leave refs over-pinned"
    );

    // Recovery: the host comes back, the queue drains, GC converges.
    plan.set_up(parent_host);
    let flushed = client.flush_pending_decrements().unwrap();
    assert_eq!(flushed, outcome.refs_parked);
    assert_eq!(client.pending_decrement_count(), 0);
    dep.gc_audit().unwrap();

    // The parent is intact and fully loadable after the churn.
    let loaded = client.load_model(parent).unwrap();
    assert_eq!(
        loaded.tensors.len(),
        parent_meta.owner_map.all_tensor_keys().len()
    );
}

#[test]
fn retirement_decrements_apply_once_under_dropped_replies() {
    let n = 4;
    let dep = Deployment::in_memory(n);
    let client = dep
        .client_builder()
        .call_timeout(Duration::from_millis(100))
        .build();
    let (parent, child) = store_parent_and_child(&client, n, 7);

    // Both DECR_REFS legs of the retirement lose their first reply
    // *after* the handler ran — the duplicated-side-effect hazard: the
    // client cannot tell a lost reply from a lost request, so it retries.
    dep.fabric().install_fault_plan(
        FaultPlan::new(0).rule(
            FaultRule::new(FaultAction::DropReply)
                .on_method(methods::DECR_REFS)
                .first(2),
        ),
    );

    let outcome = client.retire_model(child).unwrap();
    assert_eq!(
        outcome.refs_parked, 0,
        "retries recovered the dropped replies"
    );
    assert!(client.telemetry().rpc.retries() >= 1);
    dep.fabric().clear_fault_plan();

    // The duplicate deliveries were suppressed provider-side (op_id
    // dedup): counts are exact. A double decrement would have reclaimed
    // the shared prefix out from under the still-stored parent.
    dep.gc_audit().unwrap();
    client.load_model(parent).unwrap();
}

#[test]
fn permanent_decrement_leg_does_not_discard_transient_legs() {
    let n = 4;
    let dep = Deployment::in_memory(n);
    let client = dep.client();
    let (parent, child) = store_parent_and_child(&client, n, 8);

    // Sabotage the child's self-owned tensors so its own host's
    // decrement leg fails *permanently* (keys no longer stored), while
    // the parent's host goes down so the inherited leg fails transiently.
    let child_meta = client.get_meta(child).unwrap();
    let self_keys: Vec<_> = child_meta
        .owner_map
        .self_owned()
        .flat_map(|v| {
            child_meta
                .owner_map
                .vertex(v)
                .tensor_keys()
                .collect::<Vec<_>>()
        })
        .collect();
    assert!(!self_keys.is_empty());
    dep.provider_states()[child.provider_for(n)]
        .handle_decr_refs(RefsRequest::new(self_keys))
        .unwrap();

    let parent_host = dep.provider_ids()[parent.provider_for(n)];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(parent_host);

    let err = client.retire_model(child).unwrap_err();
    assert!(
        !err.is_transient(),
        "self-owned leg failed permanently: {err}"
    );
    // The inherited leg's transient failure was still parked — not
    // discarded by the permanent error on the sibling leg.
    assert!(
        client.pending_decrement_count() > 0,
        "transient leg must be parked despite the permanent failure"
    );

    // Recovery drains the queue and unpins the parent-host refs.
    plan.set_up(parent_host);
    let flushed = client.flush_pending_decrements().unwrap();
    assert!(flushed > 0);
    assert_eq!(client.pending_decrement_count(), 0);
}

#[test]
fn parked_decrements_flush_opportunistically_on_next_retire() {
    let n = 4;
    let dep = Deployment::in_memory(n);
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(6);

    let parent = model_on(1, n);
    let child = model_on(2, n);
    let other = model_on(3, n);
    let parent_g = seq(&[8, 16, 16, 4]);
    let child_g = seq(&[8, 16, 16, 5]);

    client
        .store_fresh(parent, &parent_g, 0.8, &mut rng)
        .unwrap();
    let best = client
        .query_best_ancestor(&child_g)
        .unwrap()
        .into_inner()
        .unwrap();
    let parent_meta = client.get_meta(parent).unwrap();
    let owner_map = OwnerMap::derive(child, &child_g, &best.lcp, &parent_meta.owner_map);
    let tensors: HashMap<_, _> = trained_tensors(&child_g, &owner_map, 42);
    client
        .store_model(child_g.clone(), owner_map, Some(parent), 0.9, &tensors)
        .unwrap();
    client
        .store_fresh(other, &seq(&[6, 12, 3]), 0.4, &mut rng)
        .unwrap();

    let parent_host = dep.provider_ids()[parent.provider_for(n)];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(parent_host);
    let parked = client.retire_model(child).unwrap().refs_parked;
    assert!(parked > 0);

    // Next retirement drains the queue first — no explicit flush call.
    plan.set_up(parent_host);
    client.retire_model(other).unwrap();
    assert_eq!(client.pending_decrement_count(), 0);
    dep.gc_audit().unwrap();
}
