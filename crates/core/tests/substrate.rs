//! End-to-end tests of the content-addressed chunked tensor substrate:
//! cross-model chunk dedup, parent-delta encoding of derived models,
//! GC safety of delta bases, chain re-basing, and persistent recovery.

use std::collections::HashMap;

use evostore_core::{
    random_tensors, BackendKind, Deployment, DeploymentConfig, OwnerMap, StorePolicy,
};
use evostore_graph::{
    flatten, lcp, Activation, Architecture, CompactGraph, LayerConfig, LayerKind,
};
use evostore_tensor::{ModelId, TensorData, TensorKey};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

/// One-provider deployment under the given storage policy (delta bases
/// must be co-located with their dependents, which a single provider
/// guarantees for every placement).
fn dep_with(policy: StorePolicy) -> Deployment {
    Deployment::new(DeploymentConfig {
        providers: 1,
        store_policy: policy,
        ..Default::default()
    })
}

/// Owner map for `child` deriving from `parent_map` over the *same*
/// graph, retraining (owning) the last `own_last` vertices.
fn suffix_map(
    child: ModelId,
    g: &CompactGraph,
    parent_map: &OwnerMap,
    own_last: usize,
) -> OwnerMap {
    let mut l = lcp(g, g);
    let n = g.len();
    l.prefix.retain(|v| (v.0 as usize) < n - own_last);
    for i in n - own_last..n {
        l.match_in_ancestor[i] = None;
    }
    OwnerMap::derive(child, g, &l, parent_map)
}

/// Sparsely perturbed copies of the previous generation's tensors for
/// every self-owned key of `map` — a stand-in for fine-tuning, so the
/// derived payloads are byte-similar to their bases.
fn finetuned(
    map: &OwnerMap,
    prev: &HashMap<u32, TensorData>,
    rng: &mut ChaCha8Rng,
) -> HashMap<TensorKey, TensorData> {
    map.self_owned()
        .flat_map(|v| map.vertex(v).tensor_keys().collect::<Vec<_>>())
        .map(|k| (k, prev[&k.slot].perturbed_sparse(rng, 0.05)))
        .collect()
}

#[test]
fn unrelated_models_share_chunks_and_retire_safely() {
    let dep = dep_with(StorePolicy::chunked());
    let client = dep.client();
    let g = seq(&[8, 32, 32, 8]);

    // Two unrelated models (no parent link) with byte-identical
    // parameters: same seed, fresh owner maps.
    let t1 = random_tensors(ModelId(1), &g, &mut ChaCha8Rng::seed_from_u64(9));
    let t2 = random_tensors(ModelId(2), &g, &mut ChaCha8Rng::seed_from_u64(9));
    client
        .store_model(g.clone(), OwnerMap::fresh(ModelId(1), &g), None, 0.5, &t1)
        .unwrap();
    client
        .store_model(g.clone(), OwnerMap::fresh(ModelId(2), &g), None, 0.5, &t2)
        .unwrap();

    // The second model's payload bytes dedup against the first's chunks.
    let stats = client.stats().unwrap();
    assert!(stats.chunks > 0, "chunked policy must materialize chunks");
    assert!(
        stats.chunk_dedup_hits > 0,
        "identical payloads must share chunks"
    );
    assert!(
        stats.chunk_physical_bytes < stats.chunk_logical_bytes,
        "physical {} must undercut logical {}",
        stats.chunk_physical_bytes,
        stats.chunk_logical_bytes
    );
    dep.gc_audit().unwrap();

    // Retiring one sharer must not free chunks the survivor references.
    client.retire_model(ModelId(2)).unwrap();
    dep.gc_audit().unwrap();
    let loaded = client.load_model(ModelId(1)).unwrap();
    for (key, tensor) in &t1 {
        assert_eq!(&loaded.tensors[key], tensor, "tensor {key} differs");
    }
    assert!(client.load_model(ModelId(2)).is_err());
}

#[test]
fn delta_chain_roundtrips_bytewise() {
    let dep = dep_with(StorePolicy::chunked_with_delta().with_max_chain_depth(3));
    let client = dep.client();
    let g = seq(&[8, 16, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(11);

    let base_tensors = random_tensors(ModelId(1), &g, &mut rng);
    client
        .store_model(
            g.clone(),
            OwnerMap::fresh(ModelId(1), &g),
            None,
            0.5,
            &base_tensors,
        )
        .unwrap();

    // Five generations, each fine-tuning the last layer of its parent.
    // With max_chain_depth = 3, generation 4 falls back to raw and
    // generation 5 starts a fresh chain on top of it.
    let last_v = g.len() - 1;
    let mut parent_map = OwnerMap::fresh(ModelId(1), &g);
    let mut prev: HashMap<u32, TensorData> = base_tensors
        .iter()
        .filter(|(k, _)| k.vertex.0 as usize == last_v)
        .map(|(k, t)| (k.slot, t.clone()))
        .collect();
    let mut expected: Vec<HashMap<TensorKey, TensorData>> = vec![base_tensors.clone()];
    for generation in 1..=5u64 {
        let child = ModelId(generation + 1);
        let map = suffix_map(child, &g, &parent_map, 1);
        let new = finetuned(&map, &prev, &mut rng);
        client
            .store_model(g.clone(), map.clone(), Some(ModelId(generation)), 0.6, &new)
            .unwrap();
        prev = new.iter().map(|(k, t)| (k.slot, t.clone())).collect();
        let mut exp = expected[generation as usize - 1].clone();
        exp.retain(|k, _| k.vertex.0 as usize != last_v);
        exp.extend(new);
        expected.push(exp);
        parent_map = map;
    }

    let stats = client.stats().unwrap();
    assert!(
        stats.delta_stored > 0,
        "fine-tuned generations must produce delta records"
    );

    // Every generation reconstructs byte-identically through the chain.
    for (i, exp) in expected.iter().enumerate() {
        let loaded = client.load_model(ModelId(i as u64 + 1)).unwrap();
        assert_eq!(loaded.tensors.len(), exp.len());
        for (key, tensor) in exp {
            assert_eq!(&loaded.tensors[key], tensor, "gen {i} tensor {key} differs");
        }
    }
    assert!(client.stats().unwrap().delta_reconstructs > 0);
    dep.gc_audit().unwrap();
}

#[test]
fn retiring_a_delta_base_rebases_dependents() {
    let dep = dep_with(StorePolicy::chunked_with_delta());
    let client = dep.client();
    let g = seq(&[8, 16, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(13);

    let base_tensors = random_tensors(ModelId(1), &g, &mut rng);
    client
        .store_model(
            g.clone(),
            OwnerMap::fresh(ModelId(1), &g),
            None,
            0.5,
            &base_tensors,
        )
        .unwrap();
    let parent_map = OwnerMap::fresh(ModelId(1), &g);
    let last_v = g.len() - 1;
    let prev: HashMap<u32, TensorData> = base_tensors
        .iter()
        .filter(|(k, _)| k.vertex.0 as usize == last_v)
        .map(|(k, t)| (k.slot, t.clone()))
        .collect();
    let map = suffix_map(ModelId(2), &g, &parent_map, 1);
    let new = finetuned(&map, &prev, &mut rng);
    client
        .store_model(g.clone(), map, Some(ModelId(1)), 0.6, &new)
        .unwrap();
    assert!(client.stats().unwrap().delta_stored > 0);

    // Retiring the parent physically reclaims the delta's base tensor
    // (only the child references the frozen prefix). The reclaim fence
    // must materialize the child's delta first.
    client.retire_model(ModelId(1)).unwrap();
    dep.gc_audit().unwrap();
    assert!(
        client.stats().unwrap().delta_rebased > 0,
        "reclaiming a delta base must re-base its dependents"
    );

    let loaded = client.load_model(ModelId(2)).unwrap();
    for (key, tensor) in &new {
        assert_eq!(&loaded.tensors[key], tensor, "tensor {key} differs");
    }
    // Inherited prefix tensors survive the parent's retirement verbatim.
    for (key, tensor) in &base_tensors {
        if key.vertex.0 as usize != last_v {
            assert_eq!(&loaded.tensors[key], tensor, "prefix {key} differs");
        }
    }
}

#[test]
fn compact_deltas_bounds_reconstruction_chains() {
    let dep = dep_with(StorePolicy::chunked_with_delta().with_max_chain_depth(7));
    let client = dep.client();
    let g = seq(&[8, 16, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(17);

    let base_tensors = random_tensors(ModelId(1), &g, &mut rng);
    client
        .store_model(
            g.clone(),
            OwnerMap::fresh(ModelId(1), &g),
            None,
            0.5,
            &base_tensors,
        )
        .unwrap();
    let last_v = g.len() - 1;
    let mut parent_map = OwnerMap::fresh(ModelId(1), &g);
    let mut prev: HashMap<u32, TensorData> = base_tensors
        .iter()
        .filter(|(k, _)| k.vertex.0 as usize == last_v)
        .map(|(k, t)| (k.slot, t.clone()))
        .collect();
    let mut tails: Vec<HashMap<TensorKey, TensorData>> = Vec::new();
    for generation in 1..=4u64 {
        let child = ModelId(generation + 1);
        let map = suffix_map(child, &g, &parent_map, 1);
        let new = finetuned(&map, &prev, &mut rng);
        client
            .store_model(g.clone(), map.clone(), Some(ModelId(generation)), 0.6, &new)
            .unwrap();
        prev = new.iter().map(|(k, t)| (k.slot, t.clone())).collect();
        tails.push(new);
        parent_map = map;
    }
    assert!(client.stats().unwrap().delta_stored > 0);

    // Flatten every chain deeper than one hop back to raw records.
    let rewritten = dep.compact_deltas(1).unwrap();
    assert!(rewritten > 0, "depth-4 chains must have records to flatten");
    assert!(client.stats().unwrap().delta_rebased > 0);

    // All generations still reconstruct byte-identically, and a second
    // pass finds nothing left to do.
    for (i, tail) in tails.iter().enumerate() {
        let loaded = client.load_model(ModelId(i as u64 + 2)).unwrap();
        for (key, tensor) in tail {
            assert_eq!(&loaded.tensors[key], tensor, "gen {} {key} differs", i + 1);
        }
    }
    assert_eq!(dep.compact_deltas(1).unwrap(), 0);
    dep.gc_audit().unwrap();
}

#[test]
fn chunked_delta_deployment_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("evostore-substrate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DeploymentConfig {
        providers: 1,
        backend: BackendKind::Log { dir: dir.clone() },
        store_policy: StorePolicy::chunked_with_delta(),
        ..Default::default()
    };
    let g = seq(&[8, 16, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let base_tensors = random_tensors(ModelId(1), &g, &mut rng);
    let last_v = g.len() - 1;
    let parent_map = OwnerMap::fresh(ModelId(1), &g);
    let map = suffix_map(ModelId(2), &g, &parent_map, 1);
    let prev: HashMap<u32, TensorData> = base_tensors
        .iter()
        .filter(|(k, _)| k.vertex.0 as usize == last_v)
        .map(|(k, t)| (k.slot, t.clone()))
        .collect();
    let new = finetuned(&map, &prev, &mut rng);

    // Session 1: a base model and a delta-encoded derived model.
    {
        let dep = Deployment::new(cfg.clone());
        let client = dep.client();
        client
            .store_model(
                g.clone(),
                OwnerMap::fresh(ModelId(1), &g),
                None,
                0.5,
                &base_tensors,
            )
            .unwrap();
        client
            .store_model(g.clone(), map.clone(), Some(ModelId(1)), 0.6, &new)
            .unwrap();
        assert!(client.stats().unwrap().delta_stored > 0);
        dep.gc_audit().unwrap();
    } // dropped: "process restart"

    // Session 2: chunk refcounts and the delta dependency index are
    // rebuilt from the fanned log; both models reconstruct bytewise.
    let dep = Deployment::reopen(cfg).expect("recovery succeeds");
    let client = dep.client();
    let parent = client.load_model(ModelId(1)).unwrap();
    for (key, tensor) in &base_tensors {
        assert_eq!(&parent.tensors[key], tensor, "parent {key} differs");
    }
    let child = client.load_model(ModelId(2)).unwrap();
    for (key, tensor) in &new {
        assert_eq!(&child.tensors[key], tensor, "child {key} differs");
    }
    dep.gc_audit().unwrap();

    // The recovered dependency index still fences base reclamation.
    client.retire_model(ModelId(1)).unwrap();
    dep.gc_audit().unwrap();
    let child = client.load_model(ModelId(2)).unwrap();
    for (key, tensor) in &new {
        assert_eq!(&child.tensors[key], tensor, "post-retire {key} differs");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
