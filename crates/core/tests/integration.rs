//! End-to-end tests of the EvoStore deployment: incremental storage,
//! transfer reads, LCP queries, distributed GC, and provenance.

use std::collections::HashMap;

use evostore_core::{random_tensors, trained_tensors, Deployment, ModelRepository, OwnerMap};
use evostore_graph::{flatten, Activation, Architecture, CompactGraph, LayerConfig, LayerKind};
use evostore_tensor::{ModelId, TensorData, TensorKey};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A sequential dense model; differing `units` suffixes create controlled
/// LCP structure.
fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

#[test]
fn store_and_load_roundtrip() {
    let dep = Deployment::in_memory(3);
    let client = dep.client();
    let g = seq(&[8, 16, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let tensors = random_tensors(ModelId(1), &g, &mut rng);

    let outcome = client
        .store_model(
            g.clone(),
            OwnerMap::fresh(ModelId(1), &g),
            None,
            0.5,
            &tensors,
        )
        .unwrap();
    assert_eq!(outcome.tensors_written, 6); // 3 dense layers x (W, b)
    assert!(outcome.bytes_written > 0);

    let loaded = client.load_model(ModelId(1)).unwrap();
    assert_eq!(loaded.graph.arch_signature(), g.arch_signature());
    assert_eq!(loaded.tensors.len(), 6);
    for (key, tensor) in &tensors {
        assert_eq!(&loaded.tensors[key], tensor, "tensor {key} differs");
    }
    assert_eq!(loaded.parent, None);
    dep.gc_audit().unwrap();
}

#[test]
fn derived_store_is_incremental_and_shares_tensors() {
    let dep = Deployment::in_memory(4);
    let client = dep.client();
    let parent_g = seq(&[8, 16, 16, 16, 4]);
    let child_g = seq(&[8, 16, 16, 16, 5]); // last layer differs

    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let parent_tensors = random_tensors(ModelId(1), &parent_g, &mut rng);
    let full = client
        .store_model(
            parent_g.clone(),
            OwnerMap::fresh(ModelId(1), &parent_g),
            None,
            0.7,
            &parent_tensors,
        )
        .unwrap();

    // Query the repository for the best ancestor (should be the parent).
    let best = client
        .query_best_ancestor(&child_g)
        .unwrap()
        .into_inner()
        .unwrap();
    assert_eq!(best.model, ModelId(1));
    assert_eq!(best.lcp.len(), 4); // input + 3 shared dense layers

    // Fetch the prefix (transfer read): 3 dense layers = 6 tensors.
    let (meta, fetched) = client.fetch_prefix(&best).unwrap();
    assert_eq!(fetched.len(), 6);
    // Transferred bytes < full model bytes.
    let fetched_bytes: usize = fetched.values().map(|t| t.byte_len()).sum();
    assert!(fetched_bytes < parent_g.total_param_bytes());

    // Train the unfrozen suffix and store the derived model.
    let child_map = OwnerMap::derive(ModelId(2), &child_g, &best.lcp, &meta.owner_map);
    let new_tensors = trained_tensors(&child_g, &child_map, 42);
    assert_eq!(new_tensors.len(), 2); // only the final layer's W and b
    let inc = client
        .store_model(
            child_g.clone(),
            child_map,
            Some(ModelId(1)),
            0.8,
            &new_tensors,
        )
        .unwrap();
    assert!(
        inc.bytes_written < full.bytes_written / 2,
        "incremental write {} not smaller than full {}",
        inc.bytes_written,
        full.bytes_written
    );

    // Loading the child returns the parent's frozen tensors verbatim.
    let loaded = client.load_model(ModelId(2)).unwrap();
    for (key, tensor) in &fetched {
        assert_eq!(&loaded.tensors[key], tensor);
    }
    dep.gc_audit().unwrap();

    // Storage: the shared tensors exist exactly once.
    let stats = client.stats().unwrap();
    let unique_bytes =
        parent_g.total_param_bytes() + new_tensors.values().map(|t| t.byte_len()).sum::<usize>();
    // Stored records carry a fixed framing overhead per tensor.
    assert!(
        stats.tensor_bytes as usize <= unique_bytes + 64 * stats.tensors,
        "dedup failed: {} stored vs {} unique",
        stats.tensor_bytes,
        unique_bytes
    );
}

#[test]
fn figure2_chain_ownership_and_retirement() {
    // Grandparent -> parent -> child with growing shared prefixes, then
    // retire the middle model: tensors inherited by the child survive.
    let dep = Deployment::in_memory(4);
    let client = dep.client();

    let gp_g = seq(&[8, 10, 20, 30, 99, 98]);
    let p_g = seq(&[8, 10, 20, 30, 40, 50]);
    let c_g = seq(&[8, 10, 20, 30, 40, 51, 60]);

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    client
        .store_fresh(ModelId(1), &gp_g, 0.6, &mut rng)
        .unwrap();

    // Parent derives from grandparent.
    let best = client
        .query_best_ancestor(&p_g)
        .unwrap()
        .into_inner()
        .unwrap();
    assert_eq!(best.model, ModelId(1));
    let (meta, _) = client.fetch_prefix(&best).unwrap();
    let p_map = OwnerMap::derive(ModelId(2), &p_g, &best.lcp, &meta.owner_map);
    let p_new = trained_tensors(&p_g, &p_map, 7);
    client
        .store_model(p_g.clone(), p_map, Some(ModelId(1)), 0.7, &p_new)
        .unwrap();

    // Child derives from parent (longest prefix).
    let best_c = client
        .query_best_ancestor(&c_g)
        .unwrap()
        .into_inner()
        .unwrap();
    assert_eq!(best_c.model, ModelId(2));
    assert_eq!(best_c.lcp.len(), 5); // input + {10,20,30,40}; layer 50 not inherited
    let (meta_p, _) = client.fetch_prefix(&best_c).unwrap();
    let c_map = OwnerMap::derive(ModelId(3), &c_g, &best_c.lcp, &meta_p.owner_map);
    // Child's map must reference the grandparent directly for old layers.
    assert_eq!(
        c_map.distinct_owners(),
        vec![ModelId(1), ModelId(2), ModelId(3)]
    );
    let c_new = trained_tensors(&c_g, &c_map, 9);
    client
        .store_model(c_g.clone(), c_map.clone(), Some(ModelId(2)), 0.9, &c_new)
        .unwrap();
    dep.gc_audit().unwrap();

    // Provenance.
    assert_eq!(
        client.lineage(ModelId(3)).unwrap(),
        vec![ModelId(3), ModelId(2), ModelId(1)]
    );
    let contribs = client.contributors(ModelId(3)).unwrap();
    assert_eq!(contribs.len(), 3);
    // Chronological: grandparent first.
    assert_eq!(contribs[0].0, ModelId(1));

    // Retire the parent: tensors owned by the parent but inherited by the
    // child must survive; the parent's un-inherited tensors are reclaimed.
    let before = client.stats().unwrap();
    let retired = client.retire_model(ModelId(2)).unwrap();
    // Layer 50's two tensors were never inherited by the child.
    assert_eq!(
        retired.tensors_reclaimed, 2,
        "parent's unshared layer reclaimed"
    );
    let after = client.stats().unwrap();
    assert!(after.tensor_bytes < before.tensor_bytes);
    dep.gc_audit().unwrap();

    // Child still loads completely.
    let loaded = client.load_model(ModelId(3)).unwrap();
    assert_eq!(loaded.tensors.len(), c_map.all_tensor_keys().len());

    // Retire everything: the store must drain to zero tensors.
    client.retire_model(ModelId(1)).unwrap();
    client.retire_model(ModelId(3)).unwrap();
    let empty = client.stats().unwrap();
    assert_eq!(empty.models, 0);
    assert_eq!(empty.tensors, 0);
    assert_eq!(empty.tensor_bytes, 0);
    dep.gc_audit().unwrap();
}

#[test]
fn lcp_query_prefers_longer_prefix_then_quality() {
    let dep = Deployment::in_memory(3);
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(4);

    // Three stored models with different overlap against the probe.
    let short = seq(&[8, 16, 99, 4]); // LCP 2 with probe
    let long_low = seq(&[8, 16, 16, 9]); // LCP 3, low quality
    let long_high = seq(&[8, 16, 16, 7]); // LCP 3, high quality
    client
        .store_fresh(ModelId(10), &short, 0.99, &mut rng)
        .unwrap();
    client
        .store_fresh(ModelId(11), &long_low, 0.30, &mut rng)
        .unwrap();
    client
        .store_fresh(ModelId(12), &long_high, 0.80, &mut rng)
        .unwrap();

    let probe = seq(&[8, 16, 16, 4]);
    let best = client
        .query_best_ancestor(&probe)
        .unwrap()
        .into_inner()
        .unwrap();
    assert_eq!(best.model, ModelId(12), "longest prefix, then quality");
    assert_eq!(best.lcp.len(), 3);

    // A probe matching nothing at the root returns None.
    let alien = seq(&[9, 16]);
    assert!(client
        .query_best_ancestor(&alien)
        .unwrap()
        .into_inner()
        .is_none());
}

#[test]
fn concurrent_derived_stores_keep_gc_consistent() {
    let dep = Deployment::in_memory(4);
    let client = dep.client();
    let base = seq(&[8, 16, 16, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    client
        .store_fresh(ModelId(0), &base, 0.5, &mut rng)
        .unwrap();

    // 8 workers concurrently derive children with distinct last layers.
    std::thread::scope(|s| {
        for w in 0..8u32 {
            let client = dep.client();
            s.spawn(move || {
                let child_g = seq(&[8, 16, 16, 16, 20 + w]);
                let best = client
                    .query_best_ancestor(&child_g)
                    .unwrap()
                    .into_inner()
                    .unwrap();
                let (meta, fetched) = client.fetch_prefix(&best).unwrap();
                assert!(!fetched.is_empty());
                let map = OwnerMap::derive(
                    ModelId(100 + w as u64),
                    &child_g,
                    &best.lcp,
                    &meta.owner_map,
                );
                let tensors = trained_tensors(&child_g, &map, w as u64);
                client
                    .store_model(child_g.clone(), map, Some(best.model), 0.6, &tensors)
                    .unwrap();
            });
        }
    });

    dep.gc_audit().unwrap();
    let stats = dep.client().stats().unwrap();
    assert_eq!(stats.models, 9);
    // Base prefix tensors must be referenced 9x (base + 8 children).
    let states = dep.provider_states();
    let key = TensorKey::new(ModelId(0), evostore_tensor::VertexId(1), 0);
    let host = ModelId(0).provider_for(4);
    assert_eq!(states[host].tensor_refs(key), 9);

    // Retiring the base keeps children loadable.
    dep.client().retire_model(ModelId(0)).unwrap();
    dep.gc_audit().unwrap();
    let loaded = dep.client().load_model(ModelId(104)).unwrap();
    assert!(!loaded.tensors.is_empty());
}

#[test]
fn repository_trait_full_cycle_with_fallback() {
    let dep = Deployment::in_memory(2);
    let client = dep.client();
    let g1 = seq(&[8, 16, 4]);
    let g2 = seq(&[8, 16, 5]);

    // Fresh store through the trait.
    let s1 = client.store_candidate(ModelId(1), &g1, None, 0.5, 11);
    assert!(s1.bytes_written > 0);
    assert!(!s1.fell_back_fresh);

    // Transfer path.
    let src = client.find_transfer_source(&g2).unwrap();
    assert_eq!(src.ancestor, ModelId(1));
    let fetched = client.fetch_transfer(&g2, &src).unwrap();
    assert!(fetched.bytes_read > 0);
    let s2 = client.store_candidate(ModelId(2), &g2, Some(&src), 0.6, 12);
    assert!(s2.bytes_written < s1.bytes_written);
    assert!(!s2.fell_back_fresh);

    // Race: retire the ancestor, then try to store a child against the
    // stale source — the store falls back to a fresh (full) write.
    let g3 = seq(&[8, 16, 6]);
    let stale = client.find_transfer_source(&g3).unwrap();
    client.retire_candidate(stale.ancestor);
    let s3 = client.store_candidate(ModelId(3), &g3, Some(&stale), 0.6, 13);
    assert!(s3.fell_back_fresh, "stale ancestor must trigger fallback");
    assert!(s3.bytes_written >= s1.bytes_written / 2);
    dep.gc_audit().unwrap();

    // Stale fetch returns None rather than an error.
    assert!(client.fetch_transfer(&g3, &stale).is_none());

    assert!(client.storage_bytes() > 0);
    assert_eq!(client.name(), "EvoStore");
}

#[test]
fn duplicate_store_rejected() {
    let dep = Deployment::in_memory(2);
    let client = dep.client();
    let g = seq(&[4, 8]);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    client.store_fresh(ModelId(1), &g, 0.5, &mut rng).unwrap();
    let err = client.store_fresh(ModelId(1), &g, 0.5, &mut rng);
    assert!(err.is_err());
    // The failed store must not leak bulk regions.
    assert_eq!(dep.fabric().bulk_regions(), 0);
}

#[test]
fn store_with_wrong_manifest_rejected() {
    let dep = Deployment::in_memory(2);
    let client = dep.client();
    let g = seq(&[4, 8, 2]);
    let map = OwnerMap::fresh(ModelId(1), &g);
    // Missing tensors: manifest will not cover the self-owned set.
    let empty: HashMap<TensorKey, TensorData> = HashMap::new();
    let err = client.store_model(g.clone(), map, None, 0.5, &empty);
    assert!(err.is_err());
    let stats = client.stats().unwrap();
    assert_eq!(stats.models, 0);
    assert_eq!(stats.tensors, 0);
}

#[test]
fn mrca_of_siblings_is_parent() {
    let dep = Deployment::in_memory(3);
    let client = dep.client();
    let base = seq(&[8, 16, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    // Highest quality so that equal-length LCP ties resolve to the base
    // (both siblings share the same 3-vertex prefix with everything).
    client
        .store_fresh(ModelId(1), &base, 0.9, &mut rng)
        .unwrap();

    for (id, last) in [(2u64, 5u32), (3u64, 6u32)] {
        let g = seq(&[8, 16, 16, last]);
        let best = client
            .query_best_ancestor(&g)
            .unwrap()
            .into_inner()
            .unwrap();
        let (meta, _) = client.fetch_prefix(&best).unwrap();
        let map = OwnerMap::derive(ModelId(id), &g, &best.lcp, &meta.owner_map);
        let t = trained_tensors(&g, &map, id);
        client
            .store_model(g.clone(), map, Some(best.model), 0.6, &t)
            .unwrap();
    }

    assert_eq!(
        client
            .most_recent_common_ancestor(ModelId(2), ModelId(3))
            .unwrap(),
        Some(ModelId(1))
    );
    assert_eq!(
        client
            .most_recent_common_ancestor(ModelId(2), ModelId(2))
            .unwrap(),
        Some(ModelId(2))
    );
}

#[test]
fn log_backed_deployment_roundtrip() {
    let dir = std::env::temp_dir().join(format!("evostore-dep-log-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dep = Deployment::new(evostore_core::DeploymentConfig {
        providers: 2,
        service_threads: 2,
        backend: evostore_core::BackendKind::Log { dir: dir.clone() },
        replication: evostore_core::ReplicationPolicy::default(),
        ..Default::default()
    });
    let client = dep.client();
    let g = seq(&[8, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let tensors = random_tensors(ModelId(1), &g, &mut rng);
    client
        .store_model(
            g.clone(),
            OwnerMap::fresh(ModelId(1), &g),
            None,
            0.5,
            &tensors,
        )
        .unwrap();
    let loaded = client.load_model(ModelId(1)).unwrap();
    for (k, t) in &tensors {
        assert_eq!(&loaded.tensors[k], t);
    }
    dep.gc_audit().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bulk_regions_do_not_leak() {
    let dep = Deployment::in_memory(2);
    let client = dep.client();
    let g = seq(&[8, 16, 16, 4]);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    client.store_fresh(ModelId(1), &g, 0.5, &mut rng).unwrap();
    let _ = client.load_model(ModelId(1)).unwrap();
    let best = client
        .query_best_ancestor(&g)
        .unwrap()
        .into_inner()
        .unwrap();
    let _ = client.fetch_prefix(&best).unwrap();
    assert_eq!(dep.fabric().bulk_regions(), 0, "bulk regions leaked");
}
