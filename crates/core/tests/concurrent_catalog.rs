//! Concurrency and equivalence tests for the snapshot-isolated catalog:
//! reader threads must never observe a half-applied store/retire (every
//! loaded snapshot is internally coherent and versions only move
//! forward), batched LCP / pattern RPCs must return exactly what the
//! equivalent single-query calls return, and toggling the signature
//! prefilter must never change an answer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use evostore_core::messages::RetireMetaRequest;
use evostore_core::provider::ProviderState;
use evostore_core::{BestAncestor, Deployment};
use evostore_graph::{flatten, ArchPattern, CompactGraph, GenomeSpace, LayerPattern};
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Insert a metadata-only record on the provider `model` hashes to.
fn insert(states: &[Arc<ProviderState>], model: ModelId, g: &CompactGraph, quality: f64) {
    let p = model.provider_for(states.len());
    states[p].insert_meta_only(model, g.clone(), quality);
}

/// Sample a family tree of architectures: `families` roots, `variants`
/// successive mutations each.
fn sample_graphs(families: usize, variants: usize, seed: u64) -> Vec<CompactGraph> {
    let space = GenomeSpace::attn_like();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    for _ in 0..families {
        let mut genome = space.sample(&mut rng);
        for _ in 0..variants {
            graphs.push(flatten(&space.materialize(&genome)).unwrap());
            genome = space.mutate(&genome, &mut rng);
        }
    }
    graphs
}

/// Readers pin snapshots in a tight loop while one writer streams
/// store/retire mutations. Every snapshot a reader loads must pass the
/// internal coherence audit (records/index mirror each other exactly)
/// and versions must be monotone per reader — a torn publication would
/// fail one or both.
#[test]
fn snapshots_stay_coherent_under_churn() {
    const READERS: usize = 4;
    const ROUNDS: usize = 60;

    let dep = Deployment::in_memory(1);
    let states = dep.provider_states();
    let state = Arc::clone(&states[0]);
    let graphs = sample_graphs(3, 5, 42);

    // Seed a base population so readers always have something to audit.
    for (i, g) in graphs.iter().enumerate() {
        insert(&states, ModelId(i as u64 + 1), g, 0.5);
    }

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..READERS {
            let state = Arc::clone(&state);
            let stop = &stop;
            handles.push(s.spawn(move || {
                let mut last_version = 0u64;
                let mut loads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = state.catalog_snapshot();
                    snap.verify_coherent().expect("torn snapshot");
                    assert!(
                        snap.version() >= last_version,
                        "snapshot version went backwards: {} -> {}",
                        last_version,
                        snap.version()
                    );
                    last_version = snap.version();
                    loads += 1;
                }
                loads
            }));
        }

        // Writer: churn a rotating window of model ids over the sampled
        // architectures — every round stores a fresh record and retires
        // the one from two rounds ago, exercising insert + remove +
        // memo invalidation while readers hold pins.
        for round in 0..ROUNDS {
            let id = ModelId(10_000 + round as u64);
            let g = &graphs[round % graphs.len()];
            insert(&states, id, g, 0.3 + (round % 7) as f64 * 0.1);
            if round >= 2 {
                let old = ModelId(10_000 + round as u64 - 2);
                state
                    .handle_retire_meta(RetireMetaRequest { model: old })
                    .expect("retire");
            }
        }
        stop.store(true, Ordering::Relaxed);

        let total_loads: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total_loads >= READERS as u64, "readers never ran");
    });

    // The final snapshot must reflect every mutation: seed population
    // plus the last two un-retired churn ids.
    let snap = state.catalog_snapshot();
    snap.verify_coherent().expect("final snapshot incoherent");
    assert_eq!(snap.len(), graphs.len() + 2);
}

fn norm_best(b: Option<BestAncestor>) -> Option<(ModelId, u64, usize)> {
    b.map(|b| (b.model, b.quality.to_bits(), b.lcp.len()))
}

/// One batched LCP envelope must answer exactly like N single queries.
#[test]
fn batched_lcp_matches_single_queries() {
    let dep = Deployment::in_memory(3);
    let states = dep.provider_states();
    let client = dep.client();
    let graphs = sample_graphs(3, 4, 11);
    for (i, g) in graphs.iter().enumerate() {
        insert(
            &states,
            ModelId(i as u64 + 1),
            g,
            0.4 + (i % 5) as f64 * 0.1,
        );
    }

    // Probes: every stored member plus a fresh architecture (miss-ish).
    let space = GenomeSpace::attn_like();
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut probes = graphs.clone();
    probes.push(flatten(&space.materialize(&space.sample(&mut rng))).unwrap());

    let batched = client.query_best_ancestors(&probes).unwrap().into_inner();
    assert_eq!(batched.len(), probes.len());
    for (probe, got) in probes.iter().zip(batched) {
        let single = client.query_best_ancestor(probe).unwrap().into_inner();
        assert_eq!(norm_best(got), norm_best(single), "batch/single diverge");
    }

    // Empty batch short-circuits without touching the wire.
    assert!(client
        .query_best_ancestors(&[])
        .unwrap()
        .into_inner()
        .is_empty());
}

/// One batched pattern envelope must answer exactly like N single calls.
#[test]
fn batched_patterns_match_single_queries() {
    let dep = Deployment::in_memory(3);
    let states = dep.provider_states();
    let client = dep.client();
    let graphs = sample_graphs(2, 3, 23);
    for (i, g) in graphs.iter().enumerate() {
        insert(
            &states,
            ModelId(i as u64 + 1),
            g,
            0.4 + (i % 3) as f64 * 0.2,
        );
    }

    let patterns = vec![
        ArchPattern::any(),
        ArchPattern::any().with_layer(LayerPattern::AttentionHeads { min: 1 }),
        ArchPattern::any().with_vertices(1, 9),
        ArchPattern::any().with_layer(LayerPattern::Kind("embedding".into())),
    ];
    let batched = client.find_matching_batch(&patterns).unwrap().into_inner();
    assert_eq!(batched.len(), patterns.len());
    let norm = |mut v: Vec<(ModelId, f64)>| {
        v.sort_by_key(|&(m, q)| (m, q.to_bits()));
        v
    };
    for (p, got) in patterns.iter().zip(batched) {
        let single = client.find_matching(p).unwrap().into_inner();
        assert_eq!(norm(got), norm(single), "batch/single diverge for {p:?}");
    }
}

/// The signature prefilter is a pure rejection shortcut: turning it off
/// must reproduce identical winners for member, mutated, and disjoint
/// probes (and identical pattern matches).
#[test]
fn prefilter_toggle_preserves_answers() {
    let dep = Deployment::in_memory(2);
    let states = dep.provider_states();
    let client = dep.client();
    let graphs = sample_graphs(3, 4, 5);
    for (i, g) in graphs.iter().enumerate() {
        insert(
            &states,
            ModelId(i as u64 + 1),
            g,
            0.3 + (i % 4) as f64 * 0.15,
        );
    }

    let space = GenomeSpace::attn_like();
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let mut probes = vec![graphs[0].clone(), graphs[graphs.len() - 1].clone()];
    probes.push(flatten(&space.materialize(&space.sample(&mut rng))).unwrap());

    for probe in &probes {
        dep.set_prefilter_enabled(true);
        let on = client.query_best_ancestor(probe).unwrap().into_inner();
        dep.set_prefilter_enabled(false);
        let off = client.query_best_ancestor(probe).unwrap().into_inner();
        dep.set_prefilter_enabled(true);
        assert_eq!(norm_best(on), norm_best(off), "prefilter changed answer");
    }

    let pattern = ArchPattern::any().with_layer(LayerPattern::AttentionHeads { min: 1 });
    dep.set_prefilter_enabled(true);
    let on = client.find_matching(&pattern).unwrap().into_inner();
    dep.set_prefilter_enabled(false);
    let off = client.find_matching(&pattern).unwrap().into_inner();
    dep.set_prefilter_enabled(true);
    let norm = |mut v: Vec<(ModelId, f64)>| {
        v.sort_by_key(|&(m, q)| (m, q.to_bits()));
        v
    };
    assert_eq!(norm(on), norm(off), "prefilter changed pattern matches");
}
