//! Observability integration: trace propagation across client → fabric →
//! provider (on the live fabric and under the virtual clock), KV
//! byte-count round trips through STATS, the unified metrics export, the
//! slow-op log, and the flight-recorder postmortem dump.

use std::sync::Arc;
use std::time::Duration;

use evostore_core::messages::methods;
use evostore_core::{DataPlanePolicy, Deployment, DeploymentConfig, EvoStoreClient};
use evostore_graph::{flatten, Activation, Architecture, CompactGraph, LayerConfig, LayerKind};
use evostore_obs::{FlightEvent, FlightRecorder, SpanRecord, TimeSource};
use evostore_rpc::{FaultAction, FaultPlan, FaultRule};
use evostore_sim::{SimClock, SimTime};
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

/// The first model id (from 1) hashing to provider index `want` of `n`.
fn model_on(want: usize, n: usize) -> ModelId {
    (1..)
        .map(ModelId)
        .find(|m| m.provider_for(n) == want)
        .unwrap()
}

fn spans_of(rec: &FlightRecorder) -> Vec<SpanRecord> {
    rec.events()
        .into_iter()
        .filter_map(|e| match e {
            FlightEvent::Span(s) => Some(s),
            _ => None,
        })
        .collect()
}

fn all_spans(dep: &Deployment) -> Vec<SpanRecord> {
    dep.obs()
        .recorders()
        .iter()
        .flat_map(|r| spans_of(r))
        .collect()
}

/// Store one model and fetch it back with a one-shot injected Timeout on
/// the READ dispatch, so the fetch costs exactly two attempts. Returns
/// the client for span assertions.
fn fetch_with_one_timeout(dep: &Deployment, seed: u64) -> EvoStoreClient {
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let model = ModelId(1);
    client
        .store_fresh(model, &seq(&[8, 16, 4]), 0.9, &mut rng)
        .unwrap();
    let keys = client.get_meta(model).unwrap().owner_map.all_tensor_keys();
    dep.fabric().install_fault_plan(
        FaultPlan::new(0).rule(
            FaultRule::new(FaultAction::Timeout)
                .on_method(methods::READ)
                .first(1),
        ),
    );
    let got = client.fetch_tensors(&keys).unwrap();
    assert_eq!(got.len(), keys.len());
    client
}

/// Satellite: a fetch with one injected Timeout and a retry yields a span
/// tree with two attempt spans under one trace id — the failed dispatch
/// and the successful retry — plus the provider handler and its kv child
/// joining the same trace.
#[test]
fn fetch_trace_covers_retry_attempts_and_provider_kv() {
    let dep = Deployment::in_memory(2);
    let client = fetch_with_one_timeout(&dep, 7);

    let client_spans = spans_of(client.flight_recorder());
    let root = client_spans
        .iter()
        .find(|s| s.name == "fetch_tensors")
        .expect("client root span");
    assert_eq!(root.parent_span_id, 0);
    assert_eq!(root.trace_id, root.span_id);
    assert!(root.is_ok());

    let attempts: Vec<&SpanRecord> = client_spans
        .iter()
        .filter(|s| s.name == methods::READ && s.trace_id == root.trace_id)
        .collect();
    assert_eq!(attempts.len(), 2, "one timed-out attempt plus the retry");
    assert_eq!(attempts.iter().filter(|s| !s.is_ok()).count(), 1);
    assert_eq!(attempts.iter().filter(|s| s.is_ok()).count(), 1);
    for a in &attempts {
        assert_eq!(a.parent_span_id, root.span_id, "attempts hang off the root");
        assert!(a.endpoint.is_some(), "attempt spans carry their target");
    }

    // The provider-side handler span joins the same trace (its context
    // rode the RPC envelope), with the kv read nested under it.
    let all = all_spans(&dep);
    let handler = all
        .iter()
        .find(|s| {
            s.name == methods::READ && s.node.starts_with("provider") && s.trace_id == root.trace_id
        })
        .expect("provider handler span in the client's trace");
    assert!(handler.endpoint.is_some());
    let ok_attempt = attempts.iter().find(|s| s.is_ok()).unwrap();
    assert_eq!(
        handler.parent_span_id, ok_attempt.span_id,
        "handler span is a child of the attempt that reached it"
    );
    let kv = all
        .iter()
        .find(|s| s.name == "kv.read_tensors" && s.trace_id == root.trace_id)
        .expect("kv span in the client's trace");
    assert_eq!(kv.parent_span_id, handler.span_id);
}

/// Satellite: the same span tree under a virtual clock — every span on
/// every node is stamped from the simulation's time, not the wall clock.
#[test]
fn spans_stamp_from_the_virtual_clock_under_simulation() {
    let clock = Arc::new(SimClock::starting_at(SimTime::from_secs(5.0)));
    let dep = Deployment::new(DeploymentConfig {
        providers: 2,
        clock: Some(clock.clone() as Arc<dyn TimeSource>),
        ..Default::default()
    });
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let model = ModelId(1);
    client
        .store_fresh(model, &seq(&[8, 16, 4]), 0.9, &mut rng)
        .unwrap();
    let keys = client.get_meta(model).unwrap().owner_map.all_tensor_keys();

    let store_root = spans_of(client.flight_recorder())
        .into_iter()
        .find(|s| s.name == "store_model")
        .expect("store root span");
    assert_eq!(store_root.start_us, 5_000_000);
    assert_eq!(store_root.end_us, 5_000_000, "virtual time did not advance");

    clock.advance_to(SimTime::from_secs(6.5));
    dep.fabric().install_fault_plan(
        FaultPlan::new(0).rule(
            FaultRule::new(FaultAction::Timeout)
                .on_method(methods::READ)
                .first(1),
        ),
    );
    let got = client.fetch_tensors(&keys).unwrap();
    assert_eq!(got.len(), keys.len());

    let client_spans = spans_of(client.flight_recorder());
    let root = client_spans
        .iter()
        .find(|s| s.name == "fetch_tensors")
        .expect("fetch root span");
    let attempts: Vec<&SpanRecord> = client_spans
        .iter()
        .filter(|s| s.name == methods::READ && s.trace_id == root.trace_id)
        .collect();
    assert_eq!(attempts.len(), 2);
    for s in std::iter::once(&root).chain(attempts.iter()) {
        assert_eq!(s.start_us, 6_500_000, "{} stamped off-sim", s.name);
        assert_eq!(s.end_us, 6_500_000, "{} stamped off-sim", s.name);
    }
    let handler = all_spans(&dep)
        .into_iter()
        .find(|s| {
            s.name == methods::READ && s.node.starts_with("provider") && s.trace_id == root.trace_id
        })
        .expect("provider handler span");
    assert_eq!(handler.start_us, 6_500_000);
    assert_eq!(handler.end_us, 6_500_000);
}

/// Satellite: the KV byte counters carried in STATS replies round-trip
/// exactly — the bytes a store wrote land in `tensor_kv.bytes_written`
/// across providers, visible per-provider via `Deployment::stats()` and
/// merged via the client's STATS broadcast.
#[test]
fn kv_byte_counters_round_trip_through_stats() {
    let dep = Deployment::in_memory(3);
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let model = ModelId(1);
    let out = client
        .store_fresh(model, &seq(&[8, 16, 16, 4]), 0.9, &mut rng)
        .unwrap();
    assert!(out.bytes_written > 0);

    let per_provider = dep.stats();
    let written: u64 = per_provider.iter().map(|s| s.tensor_kv.bytes_written).sum();
    assert_eq!(
        written, out.bytes_written,
        "every byte the store reported written is accounted to a provider's tensor kv"
    );
    let merged = client.stats().unwrap();
    assert_eq!(merged.tensor_kv.bytes_written, out.bytes_written);
    assert!(
        merged.meta_kv.bytes_written > 0,
        "the catalog record was persisted through the meta kv"
    );

    // Reads: fetching the model back moves at least its payload bytes
    // (records carry a small header on top of the payload).
    let keys = client.get_meta(model).unwrap().owner_map.all_tensor_keys();
    let got = client.fetch_tensors(&keys).unwrap();
    let payload: u64 = got.values().map(|t| t.byte_len() as u64).sum();
    assert!(payload > 0);
    let read: u64 = dep.stats().iter().map(|s| s.tensor_kv.bytes_read).sum();
    assert!(
        read >= payload,
        "kv reads ({read}) cover the fetched payload ({payload})"
    );
}

/// Tentpole: one export surface. Every pre-existing telemetry island —
/// client histograms and counters, provider catalog gauges, index query
/// stats, kv byte counters, flight-recorder tallies — appears in the
/// unified snapshot, and the counters match their native sources.
#[test]
fn metrics_snapshot_unifies_every_island() {
    let dep = Deployment::in_memory(2);
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let parent = model_on(0, 2);
    client
        .store_fresh(parent, &seq(&[8, 16, 16, 4]), 0.8, &mut rng)
        .unwrap();
    client.query_best_ancestor(&seq(&[8, 16, 16, 5])).unwrap();
    let keys = client.get_meta(parent).unwrap().owner_map.all_tensor_keys();
    client.fetch_tensors(&keys).unwrap();

    let snap = dep.metrics_snapshot();
    for name in [
        // Client island (ClientTelemetry::metrics).
        "evostore_client_query_latency_us",
        "evostore_client_fetch_latency_us",
        "evostore_client_store_latency_us",
        "evostore_client_retire_latency_us",
        "evostore_client_rpc_calls",
        "evostore_client_rpc_retries",
        "evostore_client_rpc_timeouts",
        "evostore_client_rpc_exhausted",
        "evostore_client_degraded_queries",
        "evostore_client_parked_decrements",
        "evostore_client_read_failovers",
        "evostore_client_under_replicated_stores",
        "evostore_client_index_scanned",
        "evostore_client_index_memo_hits",
        "evostore_client_index_deduped",
        "evostore_client_index_pruned",
        "evostore_client_bulk_segments_exposed",
        // Provider catalog gauges.
        "evostore_provider_models",
        "evostore_provider_distinct_archs",
        "evostore_provider_tensors",
        "evostore_provider_tensor_bytes",
        "evostore_provider_metadata_bytes",
        // Provider-side index stats.
        "evostore_index_candidates",
        "evostore_index_scanned",
        "evostore_index_memo_hits",
        "evostore_index_deduped",
        "evostore_index_pruned",
        // Zero-copy data-plane counters.
        "evostore_datapath_bulk_segments_exposed",
        "evostore_datapath_zero_copy_reads",
        "evostore_datapath_copy_fallback_reads",
        "evostore_datapath_validate_par_batches",
        // KV counters, per store.
        "evostore_kv_puts",
        "evostore_kv_gets",
        "evostore_kv_misses",
        "evostore_kv_deletes",
        "evostore_kv_bytes_written",
        "evostore_kv_bytes_read",
        // Flight recorder tallies.
        "evostore_obs_flight_events",
        "evostore_obs_flight_dropped",
    ] {
        assert!(snap.find(name).is_some(), "{name} missing from snapshot");
    }

    // Zero counters lost: the unified numbers equal the native sources.
    assert_eq!(
        snap.counter_total("evostore_client_rpc_calls"),
        client.telemetry().rpc.calls()
    );
    let stats = dep.stats();
    let written: u64 = stats.iter().map(|s| s.tensor_kv.bytes_written).sum();
    let kv_written: u64 = snap
        .find_all("evostore_kv_bytes_written")
        .iter()
        .filter(|m| m.labels.iter().any(|(k, v)| k == "store" && v == "tensors"))
        .map(|m| match m.value {
            evostore_obs::MetricValue::Counter(v) => v,
            _ => 0,
        })
        .sum();
    assert_eq!(kv_written, written);

    // Both expositions carry the series.
    let text = dep.metrics_text();
    assert!(text.contains("# TYPE evostore_kv_bytes_written counter"));
    assert!(text.contains("store=\"tensors\""));
    assert!(text.contains("evostore_client_fetch_latency_us{"));
    let json = snap.to_json();
    assert!(json.contains("evostore_provider_models"));
}

/// Regression (zero-copy data plane): serving memory-resident tensors as
/// `Bytes` clones must not perturb the byte accounting that
/// `kv_byte_counters_round_trip_through_stats` pinned in PR 4. The fetch
/// here is explicitly verified to have taken the zero-copy path
/// (`zero_copy_reads > 0`, vectored segments exposed) and the kv read
/// counters still cover the fetched payload; the store-side written
/// bytes still reconcile exactly with the client's report.
#[test]
fn zero_copy_reads_preserve_byte_accounting() {
    let dep = Deployment::in_memory(3);
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let model = ModelId(1);
    let out = client
        .store_fresh(model, &seq(&[8, 16, 16, 4]), 0.9, &mut rng)
        .unwrap();

    let keys = client.get_meta(model).unwrap().owner_map.all_tensor_keys();
    let got = client.fetch_tensors(&keys).unwrap();
    let payload: u64 = got.values().map(|t| t.byte_len() as u64).sum();

    let stats = dep.stats();
    let zero_copy: u64 = stats.iter().map(|s| s.zero_copy_reads).sum();
    let fallback: u64 = stats.iter().map(|s| s.copy_fallback_reads).sum();
    assert_eq!(
        zero_copy,
        keys.len() as u64,
        "every memory-resident tensor was served without a copy"
    );
    assert_eq!(fallback, 0, "nothing fell back on an all-memory deployment");
    let segments: u64 = stats.iter().map(|s| s.bulk_segments_exposed).sum();
    assert!(
        segments >= zero_copy,
        "reads were exposed as vectored regions ({segments} segments)"
    );
    let batches: u64 = stats.iter().map(|s| s.validate_par_batches).sum();
    assert!(batches > 0, "the store manifest was batch-validated");
    assert!(
        client.telemetry().bulk_segments_exposed() > 0,
        "the client's store push was vectored too"
    );

    // The PR 4 invariant, unchanged under zero-copy: store-side written
    // bytes reconcile exactly, and kv reads still cover the payload even
    // though no consolidation buffer was built.
    let written: u64 = stats.iter().map(|s| s.tensor_kv.bytes_written).sum();
    assert_eq!(written, out.bytes_written);
    let read: u64 = stats.iter().map(|s| s.tensor_kv.bytes_read).sum();
    assert!(
        read >= payload,
        "kv reads ({read}) cover the fetched payload ({payload})"
    );
}

/// The forced-copy lever is a pure escape hatch: the same seeded model
/// stored and fetched through a forced-copy deployment yields
/// byte-identical tensors and identical kv byte counters — only the
/// datapath counters reveal which plane served the reads.
#[test]
fn forced_copy_and_zero_copy_planes_agree() {
    let fetch = |force: bool| {
        let dep = Deployment::new(DeploymentConfig {
            providers: 3,
            data_plane: DataPlanePolicy::from_force_copy(force),
            ..Default::default()
        });
        let client = dep.client();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let model = ModelId(1);
        client
            .store_fresh(model, &seq(&[8, 16, 16, 4]), 0.9, &mut rng)
            .unwrap();
        let keys = client.get_meta(model).unwrap().owner_map.all_tensor_keys();
        let mut got: Vec<_> = client.fetch_tensors(&keys).unwrap().into_iter().collect();
        got.sort_by_key(|(k, _)| *k);
        let stats = dep.stats();
        let zero_copy: u64 = stats.iter().map(|s| s.zero_copy_reads).sum();
        let fallback: u64 = stats.iter().map(|s| s.copy_fallback_reads).sum();
        let written: u64 = stats.iter().map(|s| s.tensor_kv.bytes_written).sum();
        let read: u64 = stats.iter().map(|s| s.tensor_kv.bytes_read).sum();
        (got, zero_copy, fallback, written, read)
    };

    let (zc_tensors, zc_zero, zc_fall, zc_written, zc_read) = fetch(false);
    let (fc_tensors, fc_zero, fc_fall, fc_written, fc_read) = fetch(true);

    assert_eq!(zc_tensors.len(), fc_tensors.len());
    for ((ka, ta), (kb, tb)) in zc_tensors.iter().zip(fc_tensors.iter()) {
        assert_eq!(ka, kb);
        assert_eq!(ta.bytes(), tb.bytes(), "tensor {ka} differs across planes");
        assert_eq!(ta.shape(), tb.shape());
    }

    assert!(zc_zero > 0, "default plane is zero-copy");
    assert_eq!(zc_fall, 0);
    assert_eq!(fc_zero, 0, "forced-copy never takes the zero-copy path");
    assert_eq!(fc_fall, zc_zero, "forced-copy serves every read by copy");

    // Byte accounting is plane-independent: both levers report the same
    // logical traffic.
    assert_eq!(zc_written, fc_written);
    assert_eq!(zc_read, fc_read);
}

/// Tentpole: operations that exceed the slow threshold are retained
/// verbatim in the client's slow-op log with their child breakdown.
#[test]
fn slow_ops_are_retained_with_their_breakdown() {
    let dep = Deployment::in_memory(2);
    let client = dep
        .client_builder()
        .slow_op_threshold(Duration::ZERO)
        .build();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    client
        .store_fresh(ModelId(1), &seq(&[8, 16, 4]), 0.9, &mut rng)
        .unwrap();
    let slow = client.slow_ops();
    let store = slow
        .iter()
        .find(|op| op.root.name == "store_model")
        .expect("store retained at threshold zero");
    assert!(
        store.children.iter().any(|c| c.name == methods::STORE),
        "breakdown includes the store RPC attempt"
    );
}

/// Tentpole: the merged flight dump alone names the provider and fault
/// window behind a degraded answer.
#[test]
fn flight_dump_names_provider_and_fault_window_for_degraded_answers() {
    let dep = Deployment::in_memory(4);
    let client = dep.client_builder().min_quorum(2).build();
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let parent = model_on(1, 4);
    client
        .store_fresh(parent, &seq(&[8, 16, 16, 4]), 0.8, &mut rng)
        .unwrap();

    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    let down = dep.provider_ids()[0];
    plan.set_down(down);
    let fabric_rec = dep.fabric().flight_recorder().unwrap();
    fabric_rec.note_down(down.0);

    let got = client.query_best_ancestor(&seq(&[8, 16, 16, 5])).unwrap();
    assert!(got.is_partial());

    plan.set_up(down);
    fabric_rec.note_up(down.0);

    let dump = dep.flight_dump();
    assert!(dump.contains("DOWN provider0"), "dump:\n{dump}");
    let degraded = dump
        .lines()
        .find(|l| l.contains("DEGRADED"))
        .expect("degraded answer recorded");
    assert!(degraded.contains("provider0"), "line: {degraded}");
    assert!(degraded.contains("down since"), "line: {degraded}");
    assert!(degraded.contains("trace="), "line: {degraded}");
    assert!(
        dump.lines()
            .any(|l| l.contains("UP provider0") && l.contains("was down")),
        "dump:\n{dump}"
    );
}

/// Tentpole (telemetry v2): the p99 exemplar of the client's fetch
/// histogram joins — in one lookup — to the complete four-level span
/// tree of the op it was sampled from: client root → RPC attempt →
/// provider handler → kv op.
#[test]
fn p99_exemplar_joins_to_the_complete_span_tree() {
    let dep = Deployment::in_memory(2);
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let model = ModelId(1);
    client
        .store_fresh(model, &seq(&[8, 16, 4]), 0.9, &mut rng)
        .unwrap();
    let keys = client.get_meta(model).unwrap().owner_map.all_tensor_keys();
    client.fetch_tensors(&keys).unwrap();

    let exemplars = client.telemetry().fetch.exemplars_for_quantile(0.99);
    let ex = exemplars.last().expect("p99 bucket retains an exemplar");

    // One lookup: the exemplar's trace id resolves to every span of the
    // op across all the deployment's recorders.
    let spans = dep.obs().trace_spans(ex.trace_id);
    let root = spans
        .iter()
        .find(|s| s.span_id == ex.span_id)
        .expect("exemplar's span id resolves to the recorded root");
    assert_eq!(root.name, "fetch_tensors");
    assert_eq!(root.parent_span_id, 0);
    assert_eq!(evostore_obs::span_depth(&spans, root.span_id), 1);

    let attempt = spans
        .iter()
        .find(|s| s.name == methods::READ && s.parent_span_id == root.span_id)
        .expect("attempt span under the root");
    let handler = spans
        .iter()
        .find(|s| s.name == methods::READ && s.parent_span_id == attempt.span_id)
        .expect("provider handler span under the attempt");
    let kv = spans
        .iter()
        .find(|s| s.name == "kv.read_tensors" && s.parent_span_id == handler.span_id)
        .expect("kv span under the handler");
    assert_eq!(
        evostore_obs::span_depth(&spans, kv.span_id),
        4,
        "the joined tree is four levels deep"
    );

    // The rendered tree shows the same nesting, and the exemplar rides
    // the Prometheus exposition next to its histogram.
    let tree = dep.obs().trace_tree(ex.trace_id);
    assert!(tree.contains("fetch_tensors"), "tree:\n{tree}");
    assert!(tree.contains("kv.read_tensors"), "tree:\n{tree}");
    let text = dep.metrics_text();
    assert!(
        text.contains(&format!("span_id={:x}", ex.span_id)),
        "exemplar line missing from the text exposition"
    );
}

/// Tentpole (telemetry v2): client ops feed the SLO engine through the
/// deployment's default objectives, and the per-op resource ledger
/// attributes bytes, chunks and retries on both sides of the wire.
#[test]
fn client_ops_feed_the_slo_engine_and_ledger() {
    let dep = Deployment::in_memory(2);
    let client = fetch_with_one_timeout(&dep, 23);
    client.query_best_ancestor(&seq(&[8, 16, 5])).unwrap();

    // SLO engine: every default op class is registered; the exercised
    // ones saw samples classified against their objectives.
    let slo = dep.obs().slo();
    let mut classes = slo.op_classes();
    classes.sort();
    assert_eq!(
        classes,
        ["deliver", "fetch", "query", "repair", "retire", "store"]
    );
    for class in ["store", "fetch", "query"] {
        let st = slo.status(class).unwrap();
        assert!(
            st.good_total + st.bad_total >= 1,
            "{class} recorded no samples"
        );
        assert!(!st.tripped, "{class} tripped on a healthy deployment");
    }
    assert!(slo.to_json().contains("\"op_class\":\"fetch\""));

    // Client-side ledger: the fetch moved bytes in, touched the
    // manifest's chunks, and the injected Timeout charged one retry
    // (through the resilient RPC layer's hook).
    let fetch = client.ledger().entry("fetch").expect("fetch ledger entry");
    assert_eq!(fetch.ops, 1);
    assert_eq!(fetch.errors, 0);
    assert!(fetch.bytes_in > 0, "fetched bytes attributed");
    assert!(fetch.chunks_touched > 0, "manifest entries attributed");
    assert!(fetch.retries >= 1, "the injected timeout charged a retry");
    let store = client.ledger().entry("store").expect("store ledger entry");
    assert!(store.bytes_out > 0, "stored bytes attributed");

    // Provider-side ledger: the READ handler attributed its egress.
    let read = dep
        .provider_states()
        .iter()
        .filter_map(|s| s.ledger().entry(methods::READ))
        .max_by_key(|e| e.bytes_out)
        .expect("a provider served the READ");
    assert!(read.ops >= 1);
    assert!(read.bytes_out > 0, "provider egress attributed");

    // The merged snapshot carries both ledgers' series.
    let snap = dep.metrics_snapshot();
    for name in [
        "evostore_ledger_ops_total",
        "evostore_ledger_bytes_in_total",
        "evostore_ledger_retries_total",
        "evostore_slo_objective_us",
        "evostore_slo_good_total",
        "evostore_slo_tripped",
    ] {
        assert!(snap.find(name).is_some(), "{name} missing from snapshot");
    }
}

/// Tentpole (telemetry v2): a deployment with `obs_listen` serves all
/// five live endpoints over plain HTTP, re-rendered per request.
#[test]
fn exposition_server_serves_all_five_endpoints() {
    let dep = Deployment::new(DeploymentConfig {
        providers: 2,
        obs_listen: Some("127.0.0.1:0".into()),
        ..Default::default()
    });
    let addr = dep.obs_addr().expect("server bound an ephemeral port");
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let model = ModelId(1);
    client
        .store_fresh(model, &seq(&[8, 16, 4]), 0.9, &mut rng)
        .unwrap();
    let keys = client.get_meta(model).unwrap().owner_map.all_tensor_keys();
    client.fetch_tensors(&keys).unwrap();

    let get = |path: &str| evostore_obs::serve::http_get(addr, path).unwrap();

    let metrics = get("/metrics");
    assert!(metrics.contains("# TYPE evostore_slo_objective_us gauge"));
    assert!(metrics.contains("evostore_client_fetch_latency_us{"));
    assert!(metrics.contains("evostore_provider_models"));

    let json = get("/metrics.json");
    assert!(json.contains("evostore_kv_bytes_written"));

    let slo = get("/slo");
    assert!(slo.contains("\"op_class\":\"store\""));
    assert!(slo.contains("\"burn_rate\""));

    let traces = get("/traces/recent");
    assert!(traces.contains("trace "), "traces:\n{traces}");
    assert!(traces.contains("fetch_tensors"), "traces:\n{traces}");

    let flight = get("/flight");
    assert!(flight.contains("# node"), "flight:\n{flight}");
    assert!(flight.contains("span store_model"), "flight:\n{flight}");

    // Unknown paths 404 with the route list; the server is live (every
    // hit above re-rendered fresh state).
    let missing = get("/nope");
    assert!(missing.contains("/metrics"));
}

/// Satellite: a client built at `TelemetryLevel::Minimal` still times
/// its op histograms but opens no spans, records no exemplars, and
/// leaves the ledger empty — the obs-off side of the overhead A/B.
#[test]
fn minimal_telemetry_skips_spans_exemplars_and_ledger() {
    let dep = Deployment::in_memory(2);
    let client = dep
        .client_builder()
        .telemetry_level(evostore_core::TelemetryLevel::Minimal)
        .build();
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let model = ModelId(1);
    client
        .store_fresh(model, &seq(&[8, 16, 4]), 0.9, &mut rng)
        .unwrap();
    let keys = client.get_meta(model).unwrap().owner_map.all_tensor_keys();
    client.fetch_tensors(&keys).unwrap();

    let t = client.telemetry();
    assert_eq!(t.store.summary().count, 1, "histograms still time ops");
    assert_eq!(t.fetch.summary().count, 1);
    assert!(
        t.fetch.exemplars_for_quantile(0.99).is_empty(),
        "no exemplars without an ambient trace"
    );
    assert!(
        spans_of(client.flight_recorder())
            .iter()
            .all(|s| s.name != "fetch_tensors" && s.name != "store_model"),
        "no root spans at Minimal"
    );
    assert!(client.ledger().entries().is_empty(), "ledger stays empty");
}
