//! Provider-level tests of the ancestor-query index: the indexed walk
//! must be observationally identical to the unindexed full-catalog scan
//! (same winner, same tie-breaks, same pattern matches) including under
//! store/retire churn; retiring a model must invalidate its memoized
//! LCP entries; and the dedup/memo/pruning counters must surface through
//! provider stats and client telemetry.

use std::sync::Arc;

use evostore_core::messages::RetireMetaRequest;
use evostore_core::provider::ProviderState;
use evostore_core::{Deployment, EvoStoreClient};
use evostore_graph::{flatten, ArchPattern, CompactGraph, GenomeSpace, LayerPattern};
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Insert a metadata-only record on the provider `model` hashes to.
fn insert(states: &[Arc<ProviderState>], model: ModelId, g: &CompactGraph, quality: f64) {
    let p = model.provider_for(states.len());
    states[p].insert_meta_only(model, g.clone(), quality);
}

/// Retire a metadata-only record on its hosting provider.
fn retire(states: &[Arc<ProviderState>], model: ModelId) {
    let p = model.provider_for(states.len());
    states[p]
        .handle_retire_meta(RetireMetaRequest { model })
        .expect("retire");
}

/// A mutation-family catalog: `families` roots, `variants` derived
/// graphs each, two models per architecture (dedup + quality ties).
fn populate(
    states: &[Arc<ProviderState>],
    families: usize,
    variants: usize,
    seed: u64,
) -> (Vec<ModelId>, Vec<CompactGraph>) {
    let space = GenomeSpace::attn_like();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut models = Vec::new();
    let mut graphs = Vec::new();
    let mut next = 1u64;
    for _ in 0..families {
        let mut genome = space.sample(&mut rng);
        for v in 0..variants {
            let g = flatten(&space.materialize(&genome)).unwrap();
            let first = ModelId(next);
            next += 1;
            insert(states, first, &g, 0.4);
            models.push(first);
            // The duplicate must land on the SAME provider for dedup to
            // be observable: scan forward for an id with equal placement.
            let placement = first.provider_for(states.len());
            while ModelId(next).provider_for(states.len()) != placement {
                next += 1;
            }
            let dup = ModelId(next);
            next += 1;
            insert(states, dup, &g, 0.4 + v as f64 * 0.05);
            models.push(dup);
            graphs.push(g);
            genome = space.mutate(&genome, &mut rng);
        }
    }
    (models, graphs)
}

/// Run the same best-ancestor query indexed and unindexed; both must
/// return the identical candidate (model, quality, full LCP).
fn assert_query_equivalent(dep: &Deployment, client: &EvoStoreClient, probe: &CompactGraph) {
    dep.set_index_enabled(true);
    let indexed = client.query_best_ancestor(probe).unwrap().into_inner();
    dep.set_index_enabled(false);
    let brute = client.query_best_ancestor(probe).unwrap().into_inner();
    dep.set_index_enabled(true);
    match (indexed, brute) {
        (None, None) => {}
        (Some(i), Some(b)) => {
            assert_eq!(i.model, b.model, "winner differs");
            assert_eq!(i.quality, b.quality, "quality differs");
            assert_eq!(i.lcp, b.lcp, "LCP differs");
        }
        (i, b) => panic!(
            "presence mismatch: indexed {:?}, brute {:?}",
            i.map(|x| x.model),
            b.map(|x| x.model)
        ),
    }
}

#[test]
fn indexed_queries_match_unindexed_under_churn() {
    let dep = Deployment::in_memory(3);
    let states = dep.provider_states();
    let client = dep.client();
    let (models, graphs) = populate(&states, 3, 4, 7);

    // Probes: existing member, fresh mutation of a member, disjoint root.
    let space = GenomeSpace::attn_like();
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let fresh = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
    let probes: Vec<&CompactGraph> = vec![&graphs[0], &graphs[graphs.len() - 1], &fresh];

    for probe in &probes {
        assert_query_equivalent(&dep, &client, probe);
        // Second pass hits the memo; the answer must not change.
        assert_query_equivalent(&dep, &client, probe);
    }

    // Retire a third of the population (including probe 0's architecture)
    // and re-check every probe.
    for m in models.iter().step_by(3) {
        retire(&states, *m);
    }
    for probe in &probes {
        assert_query_equivalent(&dep, &client, probe);
    }

    // Store new models after the churn and re-check.
    let g = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
    insert(&states, ModelId(10_001), &g, 0.9);
    for probe in &probes {
        assert_query_equivalent(&dep, &client, probe);
    }
    assert_query_equivalent(&dep, &client, &g);
}

#[test]
fn pattern_queries_match_unindexed() {
    let dep = Deployment::in_memory(3);
    let states = dep.provider_states();
    let client = dep.client();
    populate(&states, 2, 3, 21);

    let patterns = vec![
        ArchPattern::any(),
        ArchPattern::any().with_layer(LayerPattern::AttentionHeads { min: 1 }),
        ArchPattern::any().with_vertices(1, 9),
        ArchPattern::any().with_layer(LayerPattern::Kind("embedding".into())),
    ];
    for p in &patterns {
        dep.set_index_enabled(true);
        let indexed = client.find_matching(p).unwrap().into_inner();
        dep.set_index_enabled(false);
        let brute = client.find_matching(p).unwrap().into_inner();
        dep.set_index_enabled(true);
        // Same multiset in the same (quality-sorted) order modulo equal
        // qualities: compare as sorted sets of (model, quality bits).
        let norm = |mut v: Vec<(ModelId, f64)>| {
            v.sort_by_key(|&(m, q)| (m, q.to_bits()));
            v
        };
        assert_eq!(norm(indexed), norm(brute));
    }
}

#[test]
fn retire_invalidates_memoized_entries() {
    let dep = Deployment::in_memory(1);
    let states = dep.provider_states();
    let client = dep.client();
    let space = GenomeSpace::attn_like();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let parent = space.sample(&mut rng);
    let child = space.mutate(&parent, &mut rng);
    let pg = flatten(&space.materialize(&parent)).unwrap();
    let cg = flatten(&space.materialize(&child)).unwrap();
    insert(&states, ModelId(1), &pg, 0.5);
    insert(&states, ModelId(2), &cg, 0.4);

    // Self-query: model 1 must win with a full-length prefix, and the
    // memo must now hold entries for the probed architecture.
    let best = client
        .query_best_ancestor(&pg)
        .unwrap()
        .into_inner()
        .expect("ancestor");
    assert_eq!(best.model, ModelId(1));
    assert_eq!(best.lcp.len(), pg.len());
    let memo_before = states[0].index_memo_len();
    assert!(memo_before > 0, "memo empty after a query");

    // Retiring the winner purges its memo entries; the next query must
    // not return the stale ancestor.
    retire(&states, ModelId(1));
    assert!(
        states[0].index_memo_len() < memo_before,
        "retire did not invalidate memo entries"
    );
    let best = client.query_best_ancestor(&pg).unwrap().into_inner();
    assert_ne!(
        best.as_ref().map(|b| b.model),
        Some(ModelId(1)),
        "stale ancestor returned after retire"
    );
}

#[test]
fn stats_surface_index_counters() {
    let dep = Deployment::in_memory(2);
    let states = dep.provider_states();
    let client = dep.client();
    let (_, graphs) = populate(&states, 2, 3, 5);

    // Distinct architectures must be below model count (two models per
    // architecture were inserted).
    let stats = client.stats().unwrap();
    assert!(stats.models > 0);
    assert!(
        stats.distinct_archs * 2 <= stats.models,
        "dedup denominator wrong: {} archs for {} models",
        stats.distinct_archs,
        stats.models
    );

    // First query does the scanning; the repeat is served by the memo.
    let probe = &graphs[0];
    client.query_best_ancestor(probe).unwrap();
    let after_first = client.stats().unwrap().query_stats;
    assert!(after_first.scanned > 0, "no scans counted");
    client.query_best_ancestor(probe).unwrap();
    let after_second = client.stats().unwrap().query_stats;
    // The repeat is served by a cache layer: the per-snapshot answer
    // cache if the catalog is unchanged, the pairwise LCP memo otherwise.
    assert!(
        after_second.answered > after_first.answered
            || after_second.memo_hits > after_first.memo_hits,
        "repeat query hit neither the answer cache nor the memo"
    );
    assert_eq!(
        after_second.scanned, after_first.scanned,
        "repeat query re-ran LCPs despite the caches"
    );
    assert!(after_second.deduped > 0, "dedup counter never moved");

    // The same counters flow into client telemetry.
    let t = client.telemetry().index_stats();
    assert_eq!(t.scanned, after_second.scanned);
    assert_eq!(t.memo_hits, after_second.memo_hits);
    assert!(client.telemetry().report().contains("index:"));
}
