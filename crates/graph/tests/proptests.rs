//! Property-based tests for flattening and LCP queries.

use evostore_graph::{flatten, lcp, lcp_fixpoint, Genome, GenomeSpace};
use evostore_tensor::VertexId;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Sample a genome (and its space) from a seed.
fn genome_from_seed(seed: u64) -> (GenomeSpace, Genome) {
    let space = GenomeSpace::attn_like();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = space.sample(&mut rng);
    (space, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sampled genome flattens; the result is rooted at the input
    /// layer, connected, and acyclic (topo order covers all vertices).
    #[test]
    fn flatten_invariants(seed in any::<u64>()) {
        let (space, g) = genome_from_seed(seed);
        let cg = flatten(&space.materialize(&g)).unwrap();
        prop_assert!(cg.len() >= 4);
        prop_assert_eq!(cg.vertex(cg.root()).config.kind.name(), "input");
        prop_assert_eq!(cg.in_degree(cg.root()), 0);
        prop_assert_eq!(cg.topo_order().len(), cg.len());
        // leaf count preserved by flattening
        prop_assert_eq!(cg.len(), space.materialize(&g).leaf_count());
        // in_degree matches the edge relation
        let mut indeg = vec![0u32; cg.len()];
        for (_, to) in cg.edge_list() {
            indeg[to as usize] += 1;
        }
        for v in cg.vertex_ids() {
            prop_assert_eq!(cg.in_degree(v), indeg[v.0 as usize]);
        }
    }

    /// LCP of a graph with itself is the whole graph, mapped identically.
    #[test]
    fn lcp_reflexive(seed in any::<u64>()) {
        let (space, g) = genome_from_seed(seed);
        let cg = flatten(&space.materialize(&g)).unwrap();
        let r = lcp(&cg, &cg);
        prop_assert_eq!(r.len(), cg.len());
    }

    /// The prefix is always closed under predecessors, matched vertices
    /// have equal signatures and in-degrees, and the A-side matches are
    /// injective.
    #[test]
    fn lcp_structural_invariants(seed_a in any::<u64>(), steps in 0usize..6, mseed in any::<u64>()) {
        let (space, parent) = genome_from_seed(seed_a);
        let mut rng = ChaCha8Rng::seed_from_u64(mseed);
        let mut child = parent.clone();
        for _ in 0..steps {
            child = space.mutate(&child, &mut rng);
        }
        let g = flatten(&space.materialize(&child)).unwrap();
        let a = flatten(&space.materialize(&parent)).unwrap();
        let r = lcp(&g, &a);

        // Root always matches (same input layer for one space).
        prop_assert!(!r.is_empty());

        let inset: std::collections::HashSet<u32> = r.prefix.iter().map(|v| v.0).collect();
        for (from, to) in g.edge_list() {
            if inset.contains(&to) {
                prop_assert!(inset.contains(&from), "prefix not predecessor-closed");
            }
        }

        let mut used_a = std::collections::HashSet::new();
        for v in g.vertex_ids() {
            match r.match_in_ancestor[v.0 as usize] {
                Some(av) => {
                    prop_assert!(inset.contains(&v.0), "match outside prefix");
                    prop_assert_eq!(g.sig(v), a.sig(av), "matched sigs differ");
                    prop_assert_eq!(g.in_degree(v), a.in_degree(av), "matched in-degrees differ");
                    prop_assert!(used_a.insert(av.0), "A vertex matched twice");
                }
                None => prop_assert!(!inset.contains(&v.0), "prefix vertex without match"),
            }
        }
    }

    /// A single mutation keeps a prefix: the un-mutated stem cells stay
    /// transferable (LCP >= 2 means input + stem at minimum when the stem
    /// was not the mutated position — we only require >= 1 universally).
    #[test]
    fn lcp_after_mutation_nonempty(seed in any::<u64>(), mseed in any::<u64>()) {
        let (space, parent) = genome_from_seed(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(mseed);
        let child = space.mutate(&parent, &mut rng);
        let g = flatten(&space.materialize(&child)).unwrap();
        let a = flatten(&space.materialize(&parent)).unwrap();
        prop_assert!(!lcp(&g, &a).is_empty());
    }

    /// Differential: the frontier algorithm (Algorithm 1) and the naive
    /// fixpoint compute prefixes of the same size on mutation families.
    ///
    /// (Sizes, not sets: with symmetric branches the greedy binding may
    /// choose different—equally valid—matchings.)
    #[test]
    fn lcp_matches_fixpoint(seed in any::<u64>(), mseed in any::<u64>()) {
        let (space, parent) = genome_from_seed(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(mseed);
        let child = space.mutate(&parent, &mut rng);
        let g = flatten(&space.materialize(&child)).unwrap();
        let a = flatten(&space.materialize(&parent)).unwrap();
        let fast = lcp(&g, &a);
        let slow = lcp_fixpoint(&g, &a);
        prop_assert_eq!(fast.len(), slow.len());
    }

    /// Serialization: compact graphs roundtrip through JSON with identical
    /// signatures (the catalog population path of §5.5).
    #[test]
    fn compact_graph_json_roundtrip(seed in any::<u64>()) {
        let (space, g) = genome_from_seed(seed);
        let cg = flatten(&space.materialize(&g)).unwrap();
        let back = evostore_graph::CompactGraph::from_json(&cg.to_json()).unwrap();
        prop_assert_eq!(back.arch_signature(), cg.arch_signature());
        prop_assert_eq!(back.len(), cg.len());
    }

    /// Prefix parameter bytes never exceed total parameter bytes, and the
    /// full-prefix case is exact.
    #[test]
    fn prefix_bytes_bounded(seed in any::<u64>()) {
        let (space, g) = genome_from_seed(seed);
        let cg = flatten(&space.materialize(&g)).unwrap();
        let r = lcp(&cg, &cg);
        prop_assert_eq!(cg.param_bytes_of(&r.prefix), cg.total_param_bytes());
        let half: Vec<VertexId> = r.prefix.iter().take(cg.len() / 2).copied().collect();
        prop_assert!(cg.param_bytes_of(&half) <= cg.total_param_bytes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The empty pattern matches every generated architecture; vertex
    /// bounds behave as a filter; a sequence pattern constructed from an
    /// actual path of the graph always matches.
    #[test]
    fn pattern_queries_are_sound(seed in any::<u64>()) {
        use evostore_graph::{ArchPattern, LayerPattern};

        let (space, g) = genome_from_seed(seed);
        let cg = flatten(&space.materialize(&g)).unwrap();

        prop_assert!(ArchPattern::any().matches(&cg));
        prop_assert!(ArchPattern::any().with_vertices(1, cg.len()).matches(&cg));
        prop_assert!(!ArchPattern::any().with_vertices(cg.len() + 1, 0).matches(&cg));

        // Walk an actual path from the root and demand it as a sequence.
        let mut path = vec![cg.root()];
        let mut cur = cg.root();
        for _ in 0..3 {
            let Some(&next) = cg.out(cur).first() else { break };
            cur = VertexId(next);
            path.push(cur);
        }
        let seq: Vec<LayerPattern> = path
            .iter()
            .map(|&v| LayerPattern::Kind(cg.vertex(v).config.kind.name().to_string()))
            .collect();
        prop_assert!(ArchPattern::any().with_sequence(seq).matches(&cg));

        // A layer kind that never appears must not match.
        prop_assert!(!ArchPattern::any()
            .with_layer(LayerPattern::Kind("embedding".into()))
            .matches(&cg));
    }

    /// The indexed best-ancestor scan is observationally identical to the
    /// brute-force scan over the same catalog — same winning model, same
    /// quality, same full `LcpResult` — including under interleaved
    /// store/retire churn (removals mid-sequence, re-queries after each
    /// phase).
    #[test]
    fn arch_index_matches_brute_force(
        seed in any::<u64>(),
        mseed in any::<u64>(),
        family in 2usize..6,
        removals in prop::collection::vec(0usize..1_000_000, 0..4),
    ) {
        use std::sync::Arc;
        use evostore_graph::{ArchIndex, CompactGraph};
        use evostore_tensor::ModelId;

        // Mutation-family catalog: a few roots, each with derived
        // variants — exactly the structural near-duplicate population
        // the index dedups — plus duplicated architectures at distinct
        // qualities to exercise the in-bucket tie-break.
        let (space, parent) = genome_from_seed(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(mseed);
        let mut entries: Vec<(ModelId, Arc<CompactGraph>, f64)> = Vec::new();
        let mut next_id = 0u64;
        let mut genome = parent.clone();
        for f in 0..family {
            let cg = Arc::new(flatten(&space.materialize(&genome)).unwrap());
            // Two models per architecture, same and differing quality.
            for q in [0.5, 0.5 + (f as f64) * 0.07] {
                entries.push((ModelId(next_id), Arc::clone(&cg), q));
                next_id += 1;
            }
            genome = space.mutate(&genome, &mut rng);
        }
        let probe = flatten(&space.materialize(&genome)).unwrap();

        let brute = |entries: &[(ModelId, Arc<CompactGraph>, f64)], g: &CompactGraph| {
            entries
                .iter()
                .map(|(m, a, q)| (*m, *q, lcp(g, a)))
                .filter(|(_, _, r)| !r.is_empty())
                .max_by(|(ma, qa, ra), (mb, qb, rb)| {
                    ra.len()
                        .cmp(&rb.len())
                        .then(qa.partial_cmp(qb).unwrap_or(std::cmp::Ordering::Equal))
                        .then(mb.cmp(ma))
                })
        };

        let mut ix = ArchIndex::new();
        for (m, g, q) in &entries {
            ix.insert(*m, Arc::clone(g), *q);
        }

        let check = |ix: &ArchIndex, entries: &[(ModelId, Arc<CompactGraph>, f64)], g: &CompactGraph| {
            let (got, stats) = ix.best_ancestor(g);
            let want = brute(entries, g);
            match (got, want) {
                (None, None) => Ok(()),
                (Some(c), Some((m, q, r))) => {
                    if c.model == m && c.quality == q && *c.lcp == r {
                        // Dedup accounting: work + skips covers the catalog.
                        let archs: std::collections::HashSet<u128> =
                            entries.iter().map(|(_, g, _)| g.arch_signature().0).collect();
                        if stats.scanned + stats.memo_hits + stats.pruned != archs.len() as u64 {
                            return Err(format!(
                                "stats don't cover the catalog: {stats:?} vs {} archs",
                                archs.len()
                            ));
                        }
                        Ok(())
                    } else {
                        Err(format!("winner mismatch: index ({:?}, {}), brute ({:?}, {})", c.model, c.quality, m, q))
                    }
                }
                (got, want) => Err(format!(
                    "presence mismatch: index {:?}, brute {:?}",
                    got.map(|c| c.model),
                    want.map(|w| w.0)
                )),
            }
        };

        check(&ix, &entries, &probe).map_err(TestCaseError::fail)?;
        // Query twice: the second pass runs against a warm memo.
        check(&ix, &entries, &probe).map_err(TestCaseError::fail)?;

        // Interleave retirements with re-queries.
        for r in &removals {
            if entries.is_empty() {
                break;
            }
            let victim = r % entries.len();
            let (m, _, _) = entries.remove(victim);
            prop_assert!(ix.remove(m));
            check(&ix, &entries, &probe).map_err(TestCaseError::fail)?;
        }

        // Store a new model after the churn and re-query once more.
        let cg = Arc::new(flatten(&space.materialize(&space.mutate(&genome, &mut rng))).unwrap());
        entries.push((ModelId(next_id), Arc::clone(&cg), 0.9));
        ix.insert(ModelId(next_id), cg, 0.9);
        check(&ix, &entries, &probe).map_err(TestCaseError::fail)?;
        prop_assert_eq!(ix.len(), entries.len());
    }

    /// Structural diff partitions G's vertices and stats are consistent.
    #[test]
    fn diff_and_stats_consistent(seed in any::<u64>(), mseed in any::<u64>()) {
        use evostore_graph::{arch_stats, GraphDiff};

        let (space, parent) = genome_from_seed(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(mseed);
        let child = space.mutate(&parent, &mut rng);
        let g = flatten(&space.materialize(&child)).unwrap();
        let a = flatten(&space.materialize(&parent)).unwrap();
        let r = lcp(&g, &a);
        let d = GraphDiff::from_lcp(&g, &a, &r);
        prop_assert_eq!(d.shared.len() + d.added.len(), g.len());
        prop_assert_eq!(d.shared.len() + d.removed.len(), a.len());

        let s = arch_stats(&g);
        prop_assert_eq!(s.vertices, g.len());
        prop_assert_eq!(s.edges, g.edge_count());
        prop_assert!(s.depth >= 1 && s.depth <= g.len());
        prop_assert_eq!(s.param_bytes, g.total_param_bytes());
        prop_assert_eq!(s.kind_counts.values().sum::<usize>(), g.len());
    }
}
