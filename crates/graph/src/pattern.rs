//! Architecture pattern queries.
//!
//! §1 motivates "queries that look for specific architectural features
//! and patterns in the whole collection of DL models". A
//! [`LayerPattern`] matches one leaf layer; an [`ArchPattern`] combines
//! layer requirements, structural bounds and an optional *sequence*
//! pattern (a directed path whose vertices match consecutive layer
//! patterns — e.g. "LayerNorm feeding Attention feeding a residual
//! Add").

use serde::{Deserialize, Serialize};

use crate::compact::CompactGraph;
use crate::layer::{Activation, LayerKind};
use evostore_tensor::VertexId;

/// Predicate over one leaf layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerPattern {
    /// Matches any layer.
    Any,
    /// Matches layers of the named kind (see [`LayerKind::name`]).
    Kind(String),
    /// Dense layer with `units` inside the inclusive range.
    DenseUnits {
        /// Minimum units.
        min: u32,
        /// Maximum units.
        max: u32,
    },
    /// Attention layer with at least this many heads.
    AttentionHeads {
        /// Minimum heads.
        min: u32,
    },
    /// A layer using the given activation (dense or standalone).
    Uses(Activation),
    /// Any of the sub-patterns matches.
    AnyOf(Vec<LayerPattern>),
    /// All of the sub-patterns match.
    AllOf(Vec<LayerPattern>),
}

impl LayerPattern {
    /// Does `kind` satisfy this pattern?
    pub fn matches(&self, kind: &LayerKind) -> bool {
        match self {
            LayerPattern::Any => true,
            LayerPattern::Kind(name) => kind.name() == name,
            LayerPattern::DenseUnits { min, max } => {
                matches!(kind, LayerKind::Dense { units, .. } if units >= min && units <= max)
            }
            LayerPattern::AttentionHeads { min } => {
                matches!(kind, LayerKind::Attention { heads, .. } if heads >= min)
            }
            LayerPattern::Uses(act) => match kind {
                LayerKind::Dense { activation, .. } | LayerKind::Act { activation } => {
                    activation == act
                }
                _ => false,
            },
            LayerPattern::AnyOf(ps) => ps.iter().any(|p| p.matches(kind)),
            LayerPattern::AllOf(ps) => ps.iter().all(|p| p.matches(kind)),
        }
    }
}

/// Predicate over a whole compact architecture graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ArchPattern {
    /// Each of these must match at least one vertex (in any position).
    pub require_layers: Vec<LayerPattern>,
    /// Minimum leaf-layer count (0 = unconstrained).
    pub min_vertices: usize,
    /// Maximum leaf-layer count (0 = unconstrained).
    pub max_vertices: usize,
    /// Minimum total parameter count (0 = unconstrained).
    pub min_params: usize,
    /// Maximum total parameter count (0 = unconstrained).
    pub max_params: usize,
    /// Optional sequence: a directed path v1 -> v2 -> ... -> vk whose
    /// vertices match these patterns consecutively.
    pub sequence: Vec<LayerPattern>,
}

impl ArchPattern {
    /// Pattern that matches everything.
    pub fn any() -> ArchPattern {
        ArchPattern::default()
    }

    /// Builder: require a layer somewhere in the graph.
    pub fn with_layer(mut self, p: LayerPattern) -> ArchPattern {
        self.require_layers.push(p);
        self
    }

    /// Builder: require a consecutive path matching these patterns.
    pub fn with_sequence(mut self, seq: Vec<LayerPattern>) -> ArchPattern {
        self.sequence = seq;
        self
    }

    /// Builder: bound the vertex count.
    pub fn with_vertices(mut self, min: usize, max: usize) -> ArchPattern {
        self.min_vertices = min;
        self.max_vertices = max;
        self
    }

    /// Builder: bound the parameter count.
    pub fn with_params(mut self, min: usize, max: usize) -> ArchPattern {
        self.min_params = min;
        self.max_params = max;
        self
    }

    /// Does `g` satisfy the pattern?
    pub fn matches(&self, g: &CompactGraph) -> bool {
        if self.min_vertices > 0 && g.len() < self.min_vertices {
            return false;
        }
        if self.max_vertices > 0 && g.len() > self.max_vertices {
            return false;
        }
        if self.min_params > 0 || self.max_params > 0 {
            let params: usize = g
                .vertex_ids()
                .map(|v| g.vertex(v).config.param_count())
                .sum();
            if self.min_params > 0 && params < self.min_params {
                return false;
            }
            if self.max_params > 0 && params > self.max_params {
                return false;
            }
        }
        for p in &self.require_layers {
            if !g.vertex_ids().any(|v| p.matches(&g.vertex(v).config.kind)) {
                return false;
            }
        }
        if !self.sequence.is_empty() && !self.sequence_matches(g) {
            return false;
        }
        true
    }

    /// DFS for a directed path matching `sequence` consecutively.
    fn sequence_matches(&self, g: &CompactGraph) -> bool {
        let seq = &self.sequence;
        // From each vertex matching seq[0], walk forward.
        g.vertex_ids()
            .filter(|&v| seq[0].matches(&g.vertex(v).config.kind))
            .any(|start| self.path_from(g, start, 1))
    }

    fn path_from(&self, g: &CompactGraph, v: VertexId, depth: usize) -> bool {
        if depth == self.sequence.len() {
            return true;
        }
        g.out(v).iter().any(|&n| {
            let nv = VertexId(n);
            self.sequence[depth].matches(&g.vertex(nv).config.kind)
                && self.path_from(g, nv, depth + 1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::flatten::flatten;
    use crate::layer::LayerConfig;

    fn attn_model() -> CompactGraph {
        // input -> dense -> layer_norm -> attention -> add (residual)
        let mut m = Architecture::new("m");
        let i = m.add_layer(LayerConfig::new("in", LayerKind::Input { shape: vec![64] }));
        let d = m.chain(
            i,
            LayerConfig::new(
                "d",
                LayerKind::Dense {
                    in_features: 64,
                    units: 128,
                    activation: Activation::GeLU,
                },
            ),
        );
        let ln = m.chain(
            d,
            LayerConfig::new("ln", LayerKind::LayerNorm { features: 128 }),
        );
        let at = m.chain(
            ln,
            LayerConfig::new(
                "attn",
                LayerKind::Attention {
                    embed_dim: 128,
                    heads: 8,
                },
            ),
        );
        let add = m.add_layer(LayerConfig::new("res", LayerKind::Add));
        m.connect(d, add);
        m.connect(at, add);
        flatten(&m).unwrap()
    }

    #[test]
    fn kind_and_range_patterns() {
        let g = attn_model();
        assert!(
            LayerPattern::Kind("attention".into()).matches(&g.vertex(VertexId(3)).config.kind)
                || g.vertex_ids()
                    .any(|v| LayerPattern::Kind("attention".into())
                        .matches(&g.vertex(v).config.kind))
        );
        assert!(ArchPattern::any()
            .with_layer(LayerPattern::DenseUnits { min: 100, max: 200 })
            .matches(&g));
        assert!(!ArchPattern::any()
            .with_layer(LayerPattern::DenseUnits { min: 1, max: 64 })
            .matches(&g));
        assert!(ArchPattern::any()
            .with_layer(LayerPattern::AttentionHeads { min: 4 })
            .matches(&g));
        assert!(!ArchPattern::any()
            .with_layer(LayerPattern::AttentionHeads { min: 16 })
            .matches(&g));
        assert!(ArchPattern::any()
            .with_layer(LayerPattern::Uses(Activation::GeLU))
            .matches(&g));
    }

    #[test]
    fn vertex_and_param_bounds() {
        let g = attn_model();
        assert!(ArchPattern::any().with_vertices(3, 10).matches(&g));
        assert!(!ArchPattern::any().with_vertices(10, 20).matches(&g));
        let params: usize = g
            .vertex_ids()
            .map(|v| g.vertex(v).config.param_count())
            .sum();
        assert!(ArchPattern::any().with_params(params, params).matches(&g));
        assert!(!ArchPattern::any().with_params(params + 1, 0).matches(&g));
    }

    #[test]
    fn sequence_path_matching() {
        let g = attn_model();
        // The pre-norm attention motif exists...
        let motif = ArchPattern::any().with_sequence(vec![
            LayerPattern::Kind("layer_norm".into()),
            LayerPattern::Kind("attention".into()),
            LayerPattern::Kind("add".into()),
        ]);
        assert!(motif.matches(&g));
        // ...but not a norm feeding directly into an add.
        let absent = ArchPattern::any().with_sequence(vec![
            LayerPattern::Kind("layer_norm".into()),
            LayerPattern::Kind("add".into()),
        ]);
        assert!(!absent.matches(&g));
    }

    #[test]
    fn combinators() {
        let g = attn_model();
        let p = LayerPattern::AllOf(vec![
            LayerPattern::Kind("dense".into()),
            LayerPattern::Uses(Activation::GeLU),
        ]);
        assert!(ArchPattern::any().with_layer(p).matches(&g));
        let q = LayerPattern::AnyOf(vec![
            LayerPattern::Kind("embedding".into()),
            LayerPattern::Kind("attention".into()),
        ]);
        assert!(ArchPattern::any().with_layer(q).matches(&g));
    }

    #[test]
    fn pattern_serde_roundtrip() {
        let p = ArchPattern::any()
            .with_layer(LayerPattern::AttentionHeads { min: 2 })
            .with_sequence(vec![LayerPattern::Any, LayerPattern::Kind("add".into())])
            .with_vertices(1, 100);
        let j = serde_json::to_string(&p).unwrap();
        let back: ArchPattern = serde_json::from_str(&j).unwrap();
        assert_eq!(format!("{p:?}"), format!("{back:?}"));
    }
}
