//! Flattening nested architectures into compact leaf-layer graphs.
//!
//! §4.2: "we 'flatten' the model architecture into a single hierarchy of
//! leaf layers. Flattening recursively visits all complex layers starting
//! from the input layer in a deterministic fashion (e.g., a
//! breadth-first-search). During this process, we construct (...) a compact
//! architecture graph of the leaf layers that assigns unique IDs to the
//! vertices and retains the edges between the vertices."
//!
//! Expansion splices each submodel into its parent level: edges *into* a
//! submodel node attach to the submodel's internal sources, edges *out of*
//! it leave from its internal sinks. A final deterministic BFS from the
//! unique global source renumbers vertices (so vertex `0` is always the
//! input layer) and verifies reachability and acyclicity.

use std::collections::VecDeque;

use crate::arch::{ArchError, ArchNode, Architecture};
use crate::compact::{CompactGraph, CompactVertex};
use crate::layer::LayerConfig;

/// Expanded (pre-renumbering) graph of one nesting level.
struct Expanded {
    configs: Vec<LayerConfig>,
    edges: Vec<(usize, usize)>,
    /// Leaf vertices acting as this level's inputs.
    sources: Vec<usize>,
    /// Leaf vertices acting as this level's outputs.
    sinks: Vec<usize>,
}

fn expand(arch: &Architecture) -> Result<Expanded, ArchError> {
    arch.validate()?;

    let mut configs: Vec<LayerConfig> = Vec::with_capacity(arch.leaf_count());
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Per level-node: the expanded sources/sinks it exposes.
    let mut node_sources: Vec<Vec<usize>> = Vec::with_capacity(arch.nodes().len());
    let mut node_sinks: Vec<Vec<usize>> = Vec::with_capacity(arch.nodes().len());

    for node in arch.nodes() {
        match node {
            ArchNode::Leaf(cfg) => {
                let id = configs.len();
                configs.push(cfg.clone());
                node_sources.push(vec![id]);
                node_sinks.push(vec![id]);
            }
            ArchNode::Submodel(sub) => {
                let inner = expand(sub)?;
                let off = configs.len();
                configs.extend(inner.configs);
                edges.extend(inner.edges.iter().map(|&(a, b)| (a + off, b + off)));
                node_sources.push(inner.sources.iter().map(|&s| s + off).collect());
                node_sinks.push(inner.sinks.iter().map(|&s| s + off).collect());
            }
        }
    }

    // Wire level edges: every sink of `a`'s expansion feeds every source of
    // `b`'s expansion.
    let n = arch.nodes().len();
    let mut level_in = vec![0usize; n];
    let mut level_out = vec![0usize; n];
    for &(a, b) in arch.edges() {
        level_out[a as usize] += 1;
        level_in[b as usize] += 1;
        for &s in &node_sinks[a as usize] {
            for &t in &node_sources[b as usize] {
                edges.push((s, t));
            }
        }
    }

    // This level's sources/sinks: expansions of nodes with no level edges
    // in/out.
    let mut sources = Vec::new();
    let mut sinks = Vec::new();
    for i in 0..n {
        if level_in[i] == 0 {
            sources.extend(node_sources[i].iter().copied());
        }
        if level_out[i] == 0 {
            sinks.extend(node_sinks[i].iter().copied());
        }
    }

    Ok(Expanded {
        configs,
        edges,
        sources,
        sinks,
    })
}

/// Flatten a nested architecture into a [`CompactGraph`].
///
/// Errors when the architecture is structurally invalid, has no unique
/// input layer, contains a cycle, or has leaf layers unreachable from the
/// input.
pub fn flatten(arch: &Architecture) -> Result<CompactGraph, ArchError> {
    let ex = expand(arch)?;
    let n = ex.configs.len();

    if ex.sources.len() != 1 {
        return Err(ArchError::MultipleSources {
            count: ex.sources.len(),
        });
    }
    let root = ex.sources[0];

    // Adjacency in expansion order (deterministic).
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0u32; n];
    for &(a, b) in &ex.edges {
        out[a].push(b);
        indeg[b] += 1;
    }

    // Acyclicity (Kahn over the expanded graph).
    {
        let mut d = indeg.clone();
        let mut q: VecDeque<usize> = (0..n).filter(|&v| d[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = q.pop_front() {
            seen += 1;
            for &v in &out[u] {
                d[v] -= 1;
                if d[v] == 0 {
                    q.push_back(v);
                }
            }
        }
        if seen != n {
            return Err(ArchError::Cycle);
        }
    }

    // Deterministic BFS renumbering from the root.
    let mut new_id = vec![u32::MAX; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut q = VecDeque::new();
    new_id[root] = 0;
    order.push(root);
    q.push_back(root);
    while let Some(u) = q.pop_front() {
        for &v in &out[u] {
            if new_id[v] == u32::MAX {
                new_id[v] = order.len() as u32;
                order.push(v);
                q.push_back(v);
            }
        }
    }
    if order.len() != n {
        return Err(ArchError::Unreachable {
            count: n - order.len(),
        });
    }

    let vertices: Vec<CompactVertex> = order
        .iter()
        .map(|&old| {
            let config = ex.configs[old].clone();
            let sig = config.signature();
            CompactVertex { config, sig }
        })
        .collect();
    let out_edges: Vec<Vec<u32>> = order
        .iter()
        .map(|&old| out[old].iter().map(|&v| new_id[v]).collect())
        .collect();
    let in_degree: Vec<u32> = order.iter().map(|&old| indeg[old]).collect();

    Ok(CompactGraph::from_parts(vertices, out_edges, in_degree))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, LayerKind};
    use evostore_tensor::VertexId;

    fn input(d: u32) -> LayerConfig {
        LayerConfig::new("in", LayerKind::Input { shape: vec![d] })
    }

    fn dense(name: &str, i: u32, u: u32) -> LayerConfig {
        LayerConfig::new(
            name,
            LayerKind::Dense {
                in_features: i,
                units: u,
                activation: Activation::ReLU,
            },
        )
    }

    #[test]
    fn flat_sequential() {
        let mut a = Architecture::new("m");
        let i = a.add_layer(input(4));
        let d1 = a.chain(i, dense("d1", 4, 8));
        a.chain(d1, dense("d2", 8, 2));
        let g = flatten(&a).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.root(), VertexId(0));
        assert_eq!(g.vertex(VertexId(0)).config.kind.name(), "input");
        assert_eq!(g.out(VertexId(0)), &[1]);
        assert_eq!(g.out(VertexId(1)), &[2]);
        assert_eq!(g.out(VertexId(2)), &[] as &[u32]);
    }

    #[test]
    fn submodel_is_spliced() {
        // inner: a -> b (2 leaves)
        let mut inner = Architecture::new("inner");
        let ia = inner.add_layer(dense("a", 8, 8));
        inner.chain(ia, dense("b", 8, 8));

        // outer: input -> [inner] -> out
        let mut outer = Architecture::new("outer");
        let i = outer.add_layer(input(8));
        let sub = outer.add_submodel(inner);
        outer.connect(i, sub);
        let out = outer.add_layer(dense("out", 8, 2));
        outer.connect(sub, out);

        let g = flatten(&outer).unwrap();
        // 4 leaves: input, a, b, out — submodel fully decomposed.
        assert_eq!(g.len(), 4);
        // Chain: 0 -> 1 -> 2 -> 3.
        assert_eq!(g.out(VertexId(0)), &[1]);
        assert_eq!(g.out(VertexId(1)), &[2]);
        assert_eq!(g.out(VertexId(2)), &[3]);
    }

    #[test]
    fn flattening_matches_equivalent_flat_model() {
        // Nesting must be invisible: nested and flat builds of the same
        // leaf-layer chain flatten to graphs with equal signatures.
        let mut inner = Architecture::new("sub");
        let ia = inner.add_layer(dense("x", 4, 4));
        inner.chain(ia, dense("y", 4, 4));
        let mut nested = Architecture::new("nested");
        let i = nested.add_layer(input(4));
        let s = nested.add_submodel(inner);
        nested.connect(i, s);

        let mut flat = Architecture::new("flat");
        let fi = flat.add_layer(input(4));
        let fx = flat.chain(fi, dense("x2", 4, 4));
        flat.chain(fx, dense("y2", 4, 4));

        let gn = flatten(&nested).unwrap();
        let gf = flatten(&flat).unwrap();
        assert_eq!(gn.arch_signature(), gf.arch_signature());
    }

    #[test]
    fn branch_and_join() {
        // input -> d1 -> add ; input -> d2 -> add ; add has in_degree 2.
        let mut a = Architecture::new("m");
        let i = a.add_layer(input(4));
        let d1 = a.chain(i, dense("d1", 4, 4));
        let d2 = a.chain(i, dense("d2", 4, 4));
        let add = a.add_layer(LayerConfig::new("add", LayerKind::Add));
        a.connect(d1, add);
        a.connect(d2, add);
        let g = flatten(&a).unwrap();
        assert_eq!(g.len(), 4);
        let add_id = g
            .vertex_ids()
            .find(|&v| g.vertex(v).config.kind.name() == "add")
            .unwrap();
        assert_eq!(g.in_degree(add_id), 2);
    }

    #[test]
    fn multi_output_submodel_fans_out() {
        // inner has two sinks; both must connect to the next node.
        let mut inner = Architecture::new("inner");
        let a = inner.add_layer(dense("a", 4, 4));
        inner.chain(a, dense("s1", 4, 4));
        inner.chain(a, dense("s2", 4, 4));

        let mut outer = Architecture::new("outer");
        let i = outer.add_layer(input(4));
        let s = outer.add_submodel(inner);
        outer.connect(i, s);
        let cat = outer.add_layer(LayerConfig::new("cat", LayerKind::Concat { axis: 1 }));
        outer.connect(s, cat);

        let g = flatten(&outer).unwrap();
        let cat_id = g
            .vertex_ids()
            .find(|&v| g.vertex(v).config.kind.name() == "concat")
            .unwrap();
        assert_eq!(g.in_degree(cat_id), 2, "both inner sinks feed concat");
    }

    #[test]
    fn cycle_detected() {
        let mut a = Architecture::new("m");
        let i = a.add_layer(input(4));
        let x = a.add_layer(dense("x", 4, 4));
        let y = a.add_layer(dense("y", 4, 4));
        a.connect(i, x);
        a.connect(x, y);
        a.connect(y, x);
        assert_eq!(flatten(&a), Err(ArchError::Cycle));
    }

    #[test]
    fn multiple_sources_rejected() {
        let mut a = Architecture::new("m");
        a.add_layer(input(4));
        a.add_layer(input(4));
        assert!(matches!(
            flatten(&a),
            Err(ArchError::MultipleSources { count: 2 })
        ));
    }

    #[test]
    fn deterministic_ids() {
        let build = || {
            let mut a = Architecture::new("m");
            let i = a.add_layer(input(4));
            let d1 = a.chain(i, dense("d1", 4, 8));
            let d2 = a.chain(i, dense("d2", 4, 8));
            let add = a.add_layer(LayerConfig::new("add", LayerKind::Add));
            a.connect(d1, add);
            a.connect(d2, add);
            flatten(&a).unwrap()
        };
        let g1 = build();
        let g2 = build();
        assert_eq!(g1, g2);
    }
}
