//! Architecture generators.
//!
//! Two generator families back the paper's experiments (§5.3):
//!
//! * [`layered_model`] — the micro-benchmark generator: a sequential model
//!   of a configurable total size and number of evenly-sized layers
//!   (Fig 4's "4 GB model comprised of 100 evenly-sized layers").
//! * [`GenomeSpace`] / [`Genome`] — a DeepSpace-style generative space of
//!   nested architectures with branches, submodels, attention blocks and
//!   skip connections. A genome is a compact, mutable description; NAS
//!   search operates on genomes ("candidate sequences") and materializes
//!   them into [`Architecture`]s. Mutating one gene changes the
//!   architecture from that cell onward, which is precisely what gives NAS
//!   populations their long shared prefixes.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::arch::Architecture;
use crate::layer::{Activation, LayerConfig, LayerKind};

/// Build a sequential model of `num_layers` dense layers totalling
/// approximately `total_bytes` of parameters (Fig 4's generator).
///
/// Layer width `d` is chosen so that `d*d + d` f32 parameters per layer hit
/// the per-layer budget. All layers share the same width so layers are
/// "evenly sized".
pub fn layered_model(total_bytes: usize, num_layers: usize) -> Architecture {
    assert!(num_layers > 0, "need at least one layer");
    let per_layer_elems = total_bytes / 4 / num_layers;
    // d^2 + d = per_layer_elems  =>  d ≈ sqrt(per_layer_elems)
    let d = ((per_layer_elems as f64).sqrt().floor() as u32).max(1);

    let mut a = Architecture::new(format!("layered-{num_layers}x{d}"));
    let mut prev = a.add_layer(LayerConfig::new(
        "input",
        LayerKind::Input { shape: vec![d] },
    ));
    for i in 0..num_layers {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("dense_{i}"),
                LayerKind::Dense {
                    in_features: d,
                    units: d,
                    activation: Activation::ReLU,
                },
            ),
        );
    }
    a
}

/// How a branch cell joins its two paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinKind {
    /// Element-wise sum (paths forced to equal width).
    Add,
    /// Concatenation (output width is the sum).
    Concat,
}

/// Normalization choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NormKind {
    Batch,
    Layer,
}

/// One evolvable cell of a genome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellGene {
    /// A dense layer: width option + activation option.
    Dense { width: u8, act: u8 },
    /// Two parallel dense paths joined by `join`.
    Branch { left: u8, right: u8, join: JoinKind },
    /// Pre-norm multi-head attention with a residual skip connection.
    Attention { dim: u8, heads: u8 },
    /// A nested MLP submodel (depth 1-4 dense layers of one width).
    Submodel { width: u8, depth: u8 },
    /// A normalization layer.
    Norm { kind: NormKind },
    /// Dropout with a rate option.
    Dropout { rate: u8 },
}

/// The generative space: option tables + structural bounds.
///
/// `sample`/`mutate` keep every gene's option indices inside these tables,
/// so any genome from a space can always be materialized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenomeSpace {
    /// Model input dimensionality.
    pub input_dim: u32,
    /// Width options for dense/branch/submodel cells.
    pub widths: Vec<u32>,
    /// Attention embed-dim options.
    pub attn_dims: Vec<u32>,
    /// Attention head-count options.
    pub attn_heads: Vec<u32>,
    /// Dropout rate options (per-mille).
    pub dropout_rates: Vec<u32>,
    /// Activation options.
    pub activations: Vec<Activation>,
    /// Minimum number of cells.
    pub min_cells: usize,
    /// Maximum number of cells.
    pub max_cells: usize,
    /// Output classes of the final head.
    pub num_classes: u32,
    /// Relative likelihood of each gene kind when sampling:
    /// `[dense, branch, attention, submodel, norm, dropout]`.
    pub kind_weights: [u32; 6],
}

impl GenomeSpace {
    /// The ATTN-like space used by the NAS experiments (§5.3): wide enough
    /// that its size is ~10^27 candidate sequences, mixing dense blocks,
    /// residual attention, branches and nested submodels.
    pub fn attn_like() -> GenomeSpace {
        GenomeSpace {
            input_dim: 256,
            widths: vec![64, 96, 128, 192, 256, 384, 512, 768],
            attn_dims: vec![64, 128, 256, 512],
            attn_heads: vec![2, 4, 8],
            dropout_rates: vec![0, 100, 200, 300, 500],
            activations: vec![
                Activation::ReLU,
                Activation::GeLU,
                Activation::Tanh,
                Activation::Sigmoid,
                Activation::Elu,
            ],
            min_cells: 6,
            max_cells: 16,
            num_classes: 2,
            kind_weights: [5, 2, 3, 2, 2, 2],
        }
    }

    /// A smaller space for tests and quick examples.
    pub fn tiny() -> GenomeSpace {
        GenomeSpace {
            input_dim: 16,
            widths: vec![8, 16, 32],
            attn_dims: vec![16, 32],
            attn_heads: vec![2, 4],
            dropout_rates: vec![0, 250, 500],
            activations: vec![Activation::ReLU, Activation::Tanh],
            min_cells: 2,
            max_cells: 5,
            num_classes: 2,
            kind_weights: [4, 1, 1, 1, 1, 1],
        }
    }

    /// Base-10 log of the number of distinct candidate sequences in the
    /// space (sum over admissible cell counts of the per-cell choice
    /// product).
    pub fn log10_size(&self) -> f64 {
        let w = self.widths.len() as f64;
        let per_cell = (w * self.activations.len() as f64)           // dense
            + (w * w * 2.0)                                          // branch
            + (self.attn_dims.len() * self.attn_heads.len()) as f64  // attention
            + (w * 4.0)                                              // submodel depths 1..=4
            + 2.0                                                    // norm
            + self.dropout_rates.len() as f64; // dropout
        let stem_head = w * w;
        let mut total = 0f64;
        for cells in self.min_cells..=self.max_cells {
            total += stem_head * per_cell.powi(cells as i32);
        }
        total.log10()
    }

    /// Sample a random genome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Genome {
        let n = rng.random_range(self.min_cells..=self.max_cells);
        let cells = (0..n).map(|_| self.sample_cell(rng)).collect();
        Genome {
            stem: rng.random_range(0..self.widths.len() as u8),
            head: rng.random_range(0..self.widths.len() as u8),
            cells,
        }
    }

    /// Sample one cell gene.
    pub fn sample_cell<R: Rng + ?Sized>(&self, rng: &mut R) -> CellGene {
        let total: u32 = self.kind_weights.iter().sum();
        let mut pick = rng.random_range(0..total);
        let mut kind = 0usize;
        for (i, &w) in self.kind_weights.iter().enumerate() {
            if pick < w {
                kind = i;
                break;
            }
            pick -= w;
        }
        let w8 = |rng: &mut R| rng.random_range(0..self.widths.len() as u8);
        match kind {
            0 => CellGene::Dense {
                width: w8(rng),
                act: rng.random_range(0..self.activations.len() as u8),
            },
            1 => CellGene::Branch {
                left: w8(rng),
                right: w8(rng),
                join: if rng.random_bool(0.5) {
                    JoinKind::Add
                } else {
                    JoinKind::Concat
                },
            },
            2 => CellGene::Attention {
                dim: rng.random_range(0..self.attn_dims.len() as u8),
                heads: rng.random_range(0..self.attn_heads.len() as u8),
            },
            3 => CellGene::Submodel {
                width: w8(rng),
                depth: rng.random_range(1..=4),
            },
            4 => CellGene::Norm {
                kind: if rng.random_bool(0.5) {
                    NormKind::Batch
                } else {
                    NormKind::Layer
                },
            },
            _ => CellGene::Dropout {
                rate: rng.random_range(0..self.dropout_rates.len() as u8),
            },
        }
    }

    /// Aged-evolution mutation: change exactly one position (stem, head, or
    /// one cell), or — with small probability — grow/shrink by one cell at
    /// the end, within bounds.
    pub fn mutate<R: Rng + ?Sized>(&self, genome: &Genome, rng: &mut R) -> Genome {
        let mut g = genome.clone();
        let grow = rng.random_bool(0.10) && g.cells.len() < self.max_cells;
        let shrink = !grow && rng.random_bool(0.10) && g.cells.len() > self.min_cells;
        if grow {
            g.cells.push(self.sample_cell(rng));
            return g;
        }
        if shrink {
            g.cells.pop();
            return g;
        }
        // Positions: 0 = stem, 1..=cells = cell i-1, cells+1 = head.
        // Triangular bias toward later positions: NAS practice mutates
        // deeper layers more often, which is what drives the ~50% average
        // frozen fraction the paper reports (citing its companion study
        // of model-evolution patterns).
        let n = g.cells.len() + 2;
        let pos = rng.random_range(0..n).max(rng.random_range(0..n));
        if pos == 0 {
            g.stem = rng.random_range(0..self.widths.len() as u8);
        } else if pos == g.cells.len() + 1 {
            g.head = rng.random_range(0..self.widths.len() as u8);
        } else {
            // Re-sample until the gene actually changes (a no-op mutation
            // would produce a duplicate candidate).
            for _ in 0..16 {
                let c = self.sample_cell(rng);
                if c != g.cells[pos - 1] {
                    g.cells[pos - 1] = c;
                    break;
                }
            }
        }
        g
    }

    /// Materialize a genome into a nested architecture.
    ///
    /// Deterministic: equal genomes always produce equal architectures
    /// (and therefore equal compact graphs after flattening).
    pub fn materialize(&self, genome: &Genome) -> Architecture {
        let mut m = Architecture::new("genome");
        let input = m.add_layer(LayerConfig::new(
            "input",
            LayerKind::Input {
                shape: vec![self.input_dim],
            },
        ));
        let mut cur = input;
        let mut dim = self.input_dim;

        // Stem.
        let stem_w = self.widths[genome.stem as usize];
        cur = m.chain(
            cur,
            LayerConfig::new(
                "stem",
                LayerKind::Dense {
                    in_features: dim,
                    units: stem_w,
                    activation: Activation::ReLU,
                },
            ),
        );
        dim = stem_w;

        for (ci, cell) in genome.cells.iter().enumerate() {
            match *cell {
                CellGene::Dense { width, act } => {
                    let w = self.widths[width as usize];
                    let a = self.activations[act as usize];
                    cur = m.chain(
                        cur,
                        LayerConfig::new(
                            format!("c{ci}_dense"),
                            LayerKind::Dense {
                                in_features: dim,
                                units: w,
                                activation: a,
                            },
                        ),
                    );
                    dim = w;
                }
                CellGene::Branch { left, right, join } => {
                    let lw = self.widths[left as usize];
                    // Add requires equal widths; reuse the left width then.
                    let rw = match join {
                        JoinKind::Add => lw,
                        JoinKind::Concat => self.widths[right as usize],
                    };
                    let l = m.chain(
                        cur,
                        LayerConfig::new(
                            format!("c{ci}_bl"),
                            LayerKind::Dense {
                                in_features: dim,
                                units: lw,
                                activation: Activation::ReLU,
                            },
                        ),
                    );
                    let r = m.chain(
                        cur,
                        LayerConfig::new(
                            format!("c{ci}_br"),
                            LayerKind::Dense {
                                in_features: dim,
                                units: rw,
                                activation: Activation::ReLU,
                            },
                        ),
                    );
                    let join_node = match join {
                        JoinKind::Add => {
                            m.add_layer(LayerConfig::new(format!("c{ci}_add"), LayerKind::Add))
                        }
                        JoinKind::Concat => m.add_layer(LayerConfig::new(
                            format!("c{ci}_cat"),
                            LayerKind::Concat { axis: 1 },
                        )),
                    };
                    m.connect(l, join_node);
                    m.connect(r, join_node);
                    cur = join_node;
                    dim = match join {
                        JoinKind::Add => lw,
                        JoinKind::Concat => lw + rw,
                    };
                }
                CellGene::Attention { dim: d_idx, heads } => {
                    let d = self.attn_dims[d_idx as usize];
                    let h = self.attn_heads[heads as usize];
                    // Project into the attention dim when necessary.
                    if dim != d {
                        cur = m.chain(
                            cur,
                            LayerConfig::new(
                                format!("c{ci}_proj"),
                                LayerKind::Dense {
                                    in_features: dim,
                                    units: d,
                                    activation: Activation::Identity,
                                },
                            ),
                        );
                        dim = d;
                    }
                    let ln = m.chain(
                        cur,
                        LayerConfig::new(format!("c{ci}_ln"), LayerKind::LayerNorm { features: d }),
                    );
                    let at = m.chain(
                        ln,
                        LayerConfig::new(
                            format!("c{ci}_attn"),
                            LayerKind::Attention {
                                embed_dim: d,
                                heads: h,
                            },
                        ),
                    );
                    // Residual skip: cur + attention output.
                    let add = m.add_layer(LayerConfig::new(format!("c{ci}_res"), LayerKind::Add));
                    m.connect(cur, add);
                    m.connect(at, add);
                    cur = add;
                }
                CellGene::Submodel { width, depth } => {
                    let w = self.widths[width as usize];
                    let mut sub = Architecture::new(format!("c{ci}_sub"));
                    let mut sprev = sub.add_layer(LayerConfig::new(
                        "s0",
                        LayerKind::Dense {
                            in_features: dim,
                            units: w,
                            activation: Activation::ReLU,
                        },
                    ));
                    for di in 1..depth {
                        sprev = sub.chain(
                            sprev,
                            LayerConfig::new(
                                format!("s{di}"),
                                LayerKind::Dense {
                                    in_features: w,
                                    units: w,
                                    activation: Activation::ReLU,
                                },
                            ),
                        );
                    }
                    let _ = sprev;
                    let s = m.add_submodel(sub);
                    m.connect(cur, s);
                    cur = s;
                    dim = w;
                }
                CellGene::Norm { kind } => {
                    let cfg = match kind {
                        NormKind::Batch => LayerKind::BatchNorm { features: dim },
                        NormKind::Layer => LayerKind::LayerNorm { features: dim },
                    };
                    cur = m.chain(cur, LayerConfig::new(format!("c{ci}_norm"), cfg));
                }
                CellGene::Dropout { rate } => {
                    cur = m.chain(
                        cur,
                        LayerConfig::new(
                            format!("c{ci}_drop"),
                            LayerKind::Dropout {
                                rate_milli: self.dropout_rates[rate as usize],
                            },
                        ),
                    );
                }
            }
        }

        // Head: hidden dense + classifier.
        let head_w = self.widths[genome.head as usize];
        let h = m.chain(
            cur,
            LayerConfig::new(
                "head",
                LayerKind::Dense {
                    in_features: dim,
                    units: head_w,
                    activation: Activation::ReLU,
                },
            ),
        );
        m.chain(
            h,
            LayerConfig::new(
                "classifier",
                LayerKind::Dense {
                    in_features: head_w,
                    units: self.num_classes,
                    activation: Activation::Softmax,
                },
            ),
        );
        m
    }
}

/// A candidate sequence: the set of choices that define one architecture
/// in a [`GenomeSpace`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Genome {
    /// Stem width option index.
    pub stem: u8,
    /// Head width option index.
    pub head: u8,
    /// Evolvable cells.
    pub cells: Vec<CellGene>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::flatten;
    use crate::lcp::lcp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn layered_model_hits_size_budget() {
        let total = 64 * 1024 * 1024; // 64 MB
        let a = layered_model(total, 100);
        assert_eq!(a.leaf_count(), 101); // input + 100 dense
        let got = a.param_bytes();
        let err = (got as f64 - total as f64).abs() / total as f64;
        assert!(err < 0.05, "size {got} deviates {err:.3} from budget");
    }

    #[test]
    fn layered_model_layers_even() {
        let a = layered_model(16 * 1024 * 1024, 10);
        let g = flatten(&a).unwrap();
        let sizes: Vec<usize> = g
            .vertex_ids()
            .skip(1)
            .map(|v| g.vertex(v).config.param_bytes())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn sampled_genomes_materialize_and_flatten() {
        let space = GenomeSpace::attn_like();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..50 {
            let g = space.sample(&mut rng);
            let arch = space.materialize(&g);
            let cg = flatten(&arch).expect("sampled genome must flatten");
            assert!(cg.len() >= 4);
            assert!(cg.total_param_bytes() > 0);
        }
    }

    #[test]
    fn materialize_is_deterministic() {
        let space = GenomeSpace::attn_like();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = space.sample(&mut rng);
        let a = flatten(&space.materialize(&g)).unwrap();
        let b = flatten(&space.materialize(&g)).unwrap();
        assert_eq!(a.arch_signature(), b.arch_signature());
    }

    #[test]
    fn mutation_changes_genome() {
        let space = GenomeSpace::attn_like();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = space.sample(&mut rng);
        let mut changed = 0;
        for _ in 0..20 {
            if space.mutate(&g, &mut rng) != g {
                changed += 1;
            }
        }
        assert!(changed >= 18, "mutations almost always change the genome");
    }

    #[test]
    fn mutation_preserves_a_prefix_often() {
        // The core premise of NAS-with-transfer: a mutated child usually
        // shares a non-trivial prefix with its parent.
        let space = GenomeSpace::attn_like();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let parent = space.sample(&mut rng);
        let pg = flatten(&space.materialize(&parent)).unwrap();

        let mut nonzero = 0;
        let mut total_frac = 0.0;
        let n = 30;
        for _ in 0..n {
            let child = space.mutate(&parent, &mut rng);
            let cg = flatten(&space.materialize(&child)).unwrap();
            let r = lcp(&cg, &pg);
            if r.len() > 1 {
                nonzero += 1;
            }
            total_frac += r.fraction_of(&cg);
        }
        assert!(
            nonzero >= n * 2 / 3,
            "only {nonzero}/{n} mutations shared a prefix"
        );
        assert!(
            total_frac / n as f64 > 0.25,
            "mean prefix fraction {:.2} too low",
            total_frac / n as f64
        );
    }

    #[test]
    fn attn_space_is_astronomically_large() {
        let space = GenomeSpace::attn_like();
        let lg = space.log10_size();
        assert!(lg > 20.0, "log10 size {lg:.1} — paper's space is ~10^27");
    }

    #[test]
    fn cell_bounds_respected() {
        let space = GenomeSpace::tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut g = space.sample(&mut rng);
        for _ in 0..200 {
            g = space.mutate(&g, &mut rng);
            assert!(g.cells.len() >= space.min_cells);
            assert!(g.cells.len() <= space.max_cells);
        }
    }
}
