//! Nested (Keras-style) model architectures.
//!
//! High-level AI runtimes express layers *recursively*: a "layer" may itself
//! be a whole submodel, nested arbitrarily deep, whose leaves hold the
//! actual parameters (§4.2). [`Architecture`] models exactly that: a DAG
//! whose nodes are either leaf layers or nested architectures.
//!
//! The repository never stores this form — it flattens it into a
//! [`crate::CompactGraph`] of leaf layers first (see [`crate::flatten()`](crate::flatten::flatten)).

use serde::{Deserialize, Serialize};

use crate::layer::LayerConfig;

/// A node of a (possibly nested) architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArchNode {
    /// A leaf layer holding parameters (or a parameter-free op).
    Leaf(LayerConfig),
    /// A nested submodel with its own internal DAG.
    Submodel(Box<Architecture>),
}

/// Handle to a node inside an [`Architecture`] under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef(pub u32);

/// A directed acyclic graph of [`ArchNode`]s.
///
/// Edges connect nodes *within one nesting level*. An edge into a submodel
/// feeds the submodel's internal source layer(s); an edge out of a submodel
/// leaves from its internal sink layer(s) — mirroring how functional Keras
/// wires nested models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    /// Display name (non-semantic).
    pub name: String,
    nodes: Vec<ArchNode>,
    edges: Vec<(u32, u32)>,
}

/// Structural problems detected by [`Architecture::validate`] (or during
/// flattening).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// The architecture (or a submodel) has no nodes.
    Empty,
    /// An edge endpoint is out of range.
    EdgeOutOfRange { from: u32, to: u32, nodes: usize },
    /// The same edge was added twice.
    DuplicateEdge { from: u32, to: u32 },
    /// A self-loop.
    SelfLoop { node: u32 },
    /// The expanded leaf-layer graph contains a cycle.
    Cycle,
    /// The expanded graph has `count` source vertices; exactly one is
    /// required (the input layer).
    MultipleSources { count: usize },
    /// `count` leaf vertices are unreachable from the input layer.
    Unreachable { count: usize },
}

impl std::fmt::Display for ArchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchError::Empty => write!(f, "architecture has no nodes"),
            ArchError::EdgeOutOfRange { from, to, nodes } => {
                write!(f, "edge ({from},{to}) out of range for {nodes} nodes")
            }
            ArchError::DuplicateEdge { from, to } => write!(f, "duplicate edge ({from},{to})"),
            ArchError::SelfLoop { node } => write!(f, "self-loop on node {node}"),
            ArchError::Cycle => write!(f, "architecture graph contains a cycle"),
            ArchError::MultipleSources { count } => {
                write!(f, "expected exactly one input layer, found {count} sources")
            }
            ArchError::Unreachable { count } => {
                write!(f, "{count} leaf layers unreachable from the input layer")
            }
        }
    }
}

impl std::error::Error for ArchError {}

impl Architecture {
    /// Empty architecture with a display name.
    pub fn new(name: impl Into<String>) -> Architecture {
        Architecture {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a leaf layer; returns its handle.
    pub fn add_layer(&mut self, config: LayerConfig) -> NodeRef {
        self.nodes.push(ArchNode::Leaf(config));
        NodeRef(self.nodes.len() as u32 - 1)
    }

    /// Add a nested submodel; returns its handle.
    pub fn add_submodel(&mut self, sub: Architecture) -> NodeRef {
        self.nodes.push(ArchNode::Submodel(Box::new(sub)));
        NodeRef(self.nodes.len() as u32 - 1)
    }

    /// Connect `from -> to` at this nesting level.
    pub fn connect(&mut self, from: NodeRef, to: NodeRef) {
        self.edges.push((from.0, to.0));
    }

    /// Convenience: add `config` and connect `after -> new`; returns the new
    /// node. Lets sequential models be written as a fold.
    pub fn chain(&mut self, after: NodeRef, config: LayerConfig) -> NodeRef {
        let n = self.add_layer(config);
        self.connect(after, n);
        n
    }

    /// Nodes at this level.
    pub fn nodes(&self) -> &[ArchNode] {
        &self.nodes
    }

    /// Edges at this level.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Number of *leaf* layers across all nesting levels.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                ArchNode::Leaf(_) => 1,
                ArchNode::Submodel(s) => s.leaf_count(),
            })
            .sum()
    }

    /// Maximum nesting depth (a flat model has depth 1).
    pub fn nesting_depth(&self) -> usize {
        1 + self
            .nodes
            .iter()
            .map(|n| match n {
                ArchNode::Leaf(_) => 0,
                ArchNode::Submodel(s) => s.nesting_depth(),
            })
            .max()
            .unwrap_or(0)
    }

    /// Total parameter bytes across all leaf layers.
    pub fn param_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                ArchNode::Leaf(c) => c.param_bytes(),
                ArchNode::Submodel(s) => s.param_bytes(),
            })
            .sum()
    }

    /// Validate the *local* structure of this level and all submodels:
    /// non-empty, edges in range, no duplicates, no self-loops.
    ///
    /// Global properties (acyclicity, single source, reachability) are
    /// checked on the expanded graph by [`crate::flatten::flatten`].
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.nodes.is_empty() {
            return Err(ArchError::Empty);
        }
        let n = self.nodes.len() as u32;
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &self.edges {
            if a >= n || b >= n {
                return Err(ArchError::EdgeOutOfRange {
                    from: a,
                    to: b,
                    nodes: self.nodes.len(),
                });
            }
            if a == b {
                return Err(ArchError::SelfLoop { node: a });
            }
            if !seen.insert((a, b)) {
                return Err(ArchError::DuplicateEdge { from: a, to: b });
            }
        }
        for node in &self.nodes {
            if let ArchNode::Submodel(s) = node {
                s.validate()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, LayerKind};

    fn dense(n: &str, i: u32, u: u32) -> LayerConfig {
        LayerConfig::new(
            n,
            LayerKind::Dense {
                in_features: i,
                units: u,
                activation: Activation::ReLU,
            },
        )
    }

    #[test]
    fn builder_chain() {
        let mut a = Architecture::new("m");
        let input = a.add_layer(LayerConfig::new("in", LayerKind::Input { shape: vec![8] }));
        let d1 = a.chain(input, dense("d1", 8, 16));
        let _d2 = a.chain(d1, dense("d2", 16, 4));
        assert_eq!(a.leaf_count(), 3);
        assert_eq!(a.edges().len(), 2);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn nesting_depth_and_leaf_count() {
        let mut inner = Architecture::new("inner");
        let i0 = inner.add_layer(dense("a", 4, 4));
        inner.chain(i0, dense("b", 4, 4));

        let mut outer = Architecture::new("outer");
        let input = outer.add_layer(LayerConfig::new("in", LayerKind::Input { shape: vec![4] }));
        let sub = outer.add_submodel(inner);
        outer.connect(input, sub);

        assert_eq!(outer.leaf_count(), 3);
        assert_eq!(outer.nesting_depth(), 2);
    }

    #[test]
    fn validate_rejects_bad_edges() {
        let mut a = Architecture::new("m");
        let x = a.add_layer(dense("x", 2, 2));
        a.connect(x, NodeRef(9));
        assert!(matches!(
            a.validate(),
            Err(ArchError::EdgeOutOfRange { .. })
        ));

        let mut b = Architecture::new("m");
        let y = b.add_layer(dense("y", 2, 2));
        b.connect(y, y);
        assert_eq!(b.validate(), Err(ArchError::SelfLoop { node: 0 }));

        let mut c = Architecture::new("m");
        let p = c.add_layer(dense("p", 2, 2));
        let q = c.add_layer(dense("q", 2, 2));
        c.connect(p, q);
        c.connect(p, q);
        assert_eq!(
            c.validate(),
            Err(ArchError::DuplicateEdge { from: 0, to: 1 })
        );
    }

    #[test]
    fn validate_recurses_into_submodels() {
        let mut bad_inner = Architecture::new("inner");
        let z = bad_inner.add_layer(dense("z", 2, 2));
        bad_inner.connect(z, z);

        let mut outer = Architecture::new("outer");
        outer.add_submodel(bad_inner);
        assert_eq!(outer.validate(), Err(ArchError::SelfLoop { node: 0 }));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Architecture::new("e").validate(), Err(ArchError::Empty));
    }

    #[test]
    fn param_bytes_sums_leaves() {
        let mut a = Architecture::new("m");
        a.add_layer(dense("d", 8, 8)); // 8*8+8 = 72 f32 = 288 bytes
        assert_eq!(a.param_bytes(), 288);
    }
}
