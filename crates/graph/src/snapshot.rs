//! Lock-free published snapshots: a hand-rolled `ArcSwap` equivalent.
//!
//! [`SnapshotCell<T>`] holds one `Arc<T>` behind an atomic pointer.
//! Readers ([`SnapshotCell::load`]) pin the current value without taking
//! any lock — they publish the pointer they are about to use into one of
//! a fixed set of *hazard slots*, re-verify it is still current, and only
//! then bump the strong count. Writers ([`SnapshotCell::store`]) publish
//! a replacement with a single atomic pointer swap, so readers always see
//! either the old or the new value — never a partially-applied state —
//! and a writer never blocks a reader.
//!
//! Reclamation is hazard-pointer style: a swapped-out value goes onto a
//! retired list (writer-side only) and is dropped once no hazard slot
//! protects its address. The safety argument is the classic one and
//! relies on every cross-thread step being `SeqCst`:
//!
//! 1. a reader stores its candidate pointer into a hazard slot, *then*
//!    re-loads the current pointer; it proceeds only if they match;
//! 2. a writer swaps the current pointer, *then* scans the hazard slots.
//!
//! If the reader's verifying load saw the old value, it happened before
//! the writer's swap in the total `SeqCst` order, hence the reader's slot
//! store also precedes the writer's scan — the writer keeps the value
//! alive. Otherwise the reader observes the new pointer and retries, and
//! never dereferences the retired one. Address reuse (ABA) is benign:
//! protection is by address, so a hazard slot naming a reused address
//! protects whichever live snapshot now occupies it.

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Number of hazard slots — an upper bound on readers *concurrently
/// inside* `load` (not on reader threads; slots are held for a few
/// instructions only). Excess readers spin-yield until a slot frees.
const SLOTS: usize = 64;

/// One cache-line-padded hazard slot.
#[repr(align(64))]
struct Slot(AtomicPtr<()>);

/// Round-robin starting slot per thread, to spread CAS traffic.
static NEXT_HINT: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static HAZARD_HINT: usize = NEXT_HINT.fetch_add(1, Ordering::Relaxed);
}

/// An atomically swappable `Arc<T>` with lock-free reads.
pub struct SnapshotCell<T> {
    /// Current value, as a raw pointer owning one strong count.
    current: AtomicPtr<T>,
    /// Hazard slots protecting in-flight reads.
    hazards: Box<[Slot; SLOTS]>,
    /// Swapped-out values awaiting reclamation (writer side).
    retired: Mutex<Vec<*mut T>>,
    /// Total publications, for observability.
    swaps: AtomicU64,
}

// Raw pointers make these !Send/!Sync by default; the hazard protocol
// above is exactly what makes sharing sound, provided T itself is
// shareable (the cell hands out Arc<T> clones across threads).
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T: Send + Sync> SnapshotCell<T> {
    /// New cell holding `value`.
    pub fn new(value: Arc<T>) -> SnapshotCell<T> {
        SnapshotCell {
            current: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            hazards: Box::new(std::array::from_fn(|_| {
                Slot(AtomicPtr::new(ptr::null_mut()))
            })),
            retired: Mutex::new(Vec::new()),
            swaps: AtomicU64::new(0),
        }
    }

    /// Pin and return the current value. Lock-free: never blocks on a
    /// writer (spin-yields only if all hazard slots are momentarily
    /// occupied by other in-flight readers).
    pub fn load(&self) -> Arc<T> {
        let hint = HAZARD_HINT.with(|h| *h) % SLOTS;
        let mut p = self.current.load(Ordering::SeqCst);
        // Claim a free slot, publishing our candidate pointer into it.
        let slot = 'claim: loop {
            for i in 0..SLOTS {
                let s = &self.hazards[(hint + i) % SLOTS].0;
                if s.compare_exchange(
                    ptr::null_mut(),
                    p as *mut (),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                )
                .is_ok()
                {
                    break 'claim s;
                }
            }
            std::thread::yield_now();
            p = self.current.load(Ordering::SeqCst);
        };
        // Re-verify: the pointer may have been swapped (and retired)
        // between our initial load and the hazard publication.
        loop {
            let cur = self.current.load(Ordering::SeqCst);
            if cur == p {
                break;
            }
            p = cur;
            slot.store(p as *mut (), Ordering::SeqCst);
        }
        // `p` is protected: safe to take a new strong reference.
        let arc = unsafe {
            Arc::increment_strong_count(p as *const T);
            Arc::from_raw(p as *const T)
        };
        slot.store(ptr::null_mut(), Ordering::SeqCst);
        arc
    }

    /// Publish `value` as the new current snapshot and reclaim any
    /// retired predecessors no reader still protects.
    pub fn store(&self, value: Arc<T>) {
        let new_raw = Arc::into_raw(value) as *mut T;
        let old = self.current.swap(new_raw, Ordering::SeqCst);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        let mut retired = self.retired.lock();
        retired.push(old);
        let mut i = 0;
        while i < retired.len() {
            let q = retired[i];
            if self.is_hazard(q as *mut ()) {
                i += 1;
            } else {
                retired.swap_remove(i);
                unsafe { drop(Arc::from_raw(q as *const T)) };
            }
        }
    }

    fn is_hazard(&self, q: *mut ()) -> bool {
        self.hazards.iter().any(|s| s.0.load(Ordering::SeqCst) == q)
    }

    /// Number of publications so far.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Snapshots swapped out but not yet reclaimed (still pinned by a
    /// reader at the last publication).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().len()
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // &mut self: no readers can exist, every raw pointer owns exactly
        // the one strong count `into_raw` leaked.
        let cur = *self.current.get_mut();
        unsafe { drop(Arc::from_raw(cur as *const T)) };
        for q in self.retired.get_mut().drain(..) {
            unsafe { drop(Arc::from_raw(q as *const T)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    struct Counted {
        a: u64,
        b: u64,
        live: Arc<AtomicUsize>,
    }

    impl Counted {
        fn new(v: u64, live: &Arc<AtomicUsize>) -> Arc<Counted> {
            live.fetch_add(1, Ordering::SeqCst);
            Arc::new(Counted {
                a: v,
                b: v.wrapping_mul(3),
                live: Arc::clone(live),
            })
        }
    }

    impl Drop for Counted {
        fn drop(&mut self) {
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn load_returns_latest_store() {
        let live = Arc::new(AtomicUsize::new(0));
        let cell = SnapshotCell::new(Counted::new(1, &live));
        assert_eq!(cell.load().a, 1);
        cell.store(Counted::new(2, &live));
        assert_eq!(cell.load().a, 2);
        assert_eq!(cell.swaps(), 1);
        drop(cell);
        assert_eq!(live.load(Ordering::SeqCst), 0, "all snapshots dropped");
    }

    #[test]
    fn retired_snapshot_survives_while_pinned() {
        let live = Arc::new(AtomicUsize::new(0));
        let cell = SnapshotCell::new(Counted::new(1, &live));
        let pinned = cell.load();
        cell.store(Counted::new(2, &live));
        // The old snapshot is still reachable through `pinned`.
        assert_eq!(pinned.a, 1);
        assert_eq!(live.load(Ordering::SeqCst), 2);
        drop(pinned);
        // The next publication reclaims everything unpinned: v1 and the
        // just-retired v2 both drop, leaving only the current v3.
        cell.store(Counted::new(3, &live));
        assert_eq!(live.load(Ordering::SeqCst), 1);
        drop(cell);
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_readers_always_see_coherent_snapshots() {
        let live = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(SnapshotCell::new(Counted::new(0, &live)));
        let stop = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load();
                        assert_eq!(snap.b, snap.a.wrapping_mul(3), "torn snapshot observed");
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();

        for v in 1..=2000u64 {
            cell.store(Counted::new(v, &live));
        }
        stop.store(true, Ordering::SeqCst);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(cell.swaps(), 2000);
        drop(cell);
        assert_eq!(live.load(Ordering::SeqCst), 0, "no snapshot leaked");
    }
}
