//! Architecture-graph substrate for the EvoStore model repository.
//!
//! This crate owns everything the paper's §4.2 describes:
//!
//! * nested, Keras-style [`Architecture`]s whose nodes are leaf layers or
//!   submodels ([`arch`]);
//! * deterministic [`flatten::flatten`]ing into [`CompactGraph`]s — the
//!   single hierarchy of leaf layers with unique vertex ids that providers
//!   store and query;
//! * the longest-common-prefix query ([`lcp::lcp`], the paper's
//!   Algorithm 1) and the best-ancestor scan built on it;
//! * architecture generators for micro-benchmarks and NAS search spaces
//!   ([`generator`]);
//! * the concurrency primitives behind the provider's lock-free catalog:
//!   bitset signature prefilters ([`prefilter`]) and atomically published
//!   immutable snapshots ([`snapshot`]).

pub mod analysis;
pub mod arch;
pub mod compact;
pub mod flatten;
pub mod generator;
pub mod index;
pub mod layer;
pub mod lcp;
pub mod pattern;
pub mod prefilter;
pub mod snapshot;

pub use analysis::{arch_stats, to_dot, ArchStats, GraphDiff};
pub use arch::{ArchError, ArchNode, Architecture, NodeRef};
pub use compact::{CompactGraph, CompactVertex};
pub use flatten::flatten;
pub use generator::{layered_model, CellGene, Genome, GenomeSpace, JoinKind, NormKind};
pub use index::{ArchIndex, IndexCandidate, IndexQueryStats};
pub use layer::{Activation, LayerConfig, LayerKind, TensorSpec};
pub use lcp::{best_ancestor, lcp, lcp_fixpoint, AsGraph, BestMatch, LcpResult};
pub use pattern::{ArchPattern, LayerPattern};
pub use prefilter::{PatternFilter, QueryFilter};
pub use snapshot::SnapshotCell;
