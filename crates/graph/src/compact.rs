//! Compact architecture graphs.
//!
//! The result of flattening a nested [`crate::Architecture`]: a single
//! hierarchy of leaf layers with unique vertex ids and explicit edges —
//! the representation the providers store, scan for LCP queries, and key
//! owner maps by (§4.2).

use evostore_tensor::{ContentHash, Fnv128, VertexId};
use serde::{Deserialize, Serialize};

use crate::layer::{LayerConfig, TensorSpec};

/// One leaf-layer vertex of a compact graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompactVertex {
    /// The leaf layer configuration.
    pub config: LayerConfig,
    /// Cached structural signature of `config` (what LCP matches on).
    pub sig: ContentHash,
}

/// A flattened leaf-layer DAG with unique vertex ids.
///
/// Invariants (established by [`crate::flatten::flatten`]):
/// * vertex `0` is the unique source (the input layer) — the BFS root;
/// * every vertex is reachable from vertex `0`;
/// * the graph is acyclic;
/// * `in_degree[v]` equals the number of edges ending at `v`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompactGraph {
    vertices: Vec<CompactVertex>,
    out_edges: Vec<Vec<u32>>,
    in_degree: Vec<u32>,
}

impl CompactGraph {
    /// Assemble a compact graph from parts. Intended for `flatten` and for
    /// tests; invariants are debug-asserted, not re-verified.
    pub(crate) fn from_parts(
        vertices: Vec<CompactVertex>,
        out_edges: Vec<Vec<u32>>,
        in_degree: Vec<u32>,
    ) -> CompactGraph {
        debug_assert_eq!(vertices.len(), out_edges.len());
        debug_assert_eq!(vertices.len(), in_degree.len());
        CompactGraph {
            vertices,
            out_edges,
            in_degree,
        }
    }

    /// Number of leaf-layer vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the graph has no vertices (never produced by `flatten`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The BFS root (input layer).
    #[inline]
    pub fn root(&self) -> VertexId {
        VertexId(0)
    }

    /// Vertex lookup.
    #[inline]
    pub fn vertex(&self, v: VertexId) -> &CompactVertex {
        &self.vertices[v.0 as usize]
    }

    /// Structural signature of vertex `v`.
    #[inline]
    pub fn sig(&self, v: VertexId) -> ContentHash {
        self.vertices[v.0 as usize].sig
    }

    /// Out-neighbors of `v`, in deterministic flattening order.
    #[inline]
    pub fn out(&self, v: VertexId) -> &[u32] {
        &self.out_edges[v.0 as usize]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> u32 {
        self.in_degree[v.0 as usize]
    }

    /// Iterate vertex ids in id order (which is BFS-discovery order).
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// All edges as `(from, to)` pairs.
    pub fn edge_list(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (from, tos) in self.out_edges.iter().enumerate() {
            for &to in tos {
                out.push((from as u32, to));
            }
        }
        out
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// Parameter tensor specs of vertex `v`.
    pub fn param_specs(&self, v: VertexId) -> Vec<TensorSpec> {
        self.vertex(v).config.param_specs()
    }

    /// Total parameter bytes over all vertices.
    pub fn total_param_bytes(&self) -> usize {
        self.vertices.iter().map(|v| v.config.param_bytes()).sum()
    }

    /// Parameter bytes restricted to a vertex subset (e.g. an LCP prefix).
    pub fn param_bytes_of(&self, subset: &[VertexId]) -> usize {
        subset
            .iter()
            .map(|&v| self.vertex(v).config.param_bytes())
            .sum()
    }

    /// Topological order (Kahn). The graph is acyclic by construction, so
    /// this always yields every vertex.
    pub fn topo_order(&self) -> Vec<VertexId> {
        let n = self.len();
        let mut indeg = self.in_degree.clone();
        let mut queue: std::collections::VecDeque<u32> =
            (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(VertexId(u));
            for &v in &self.out_edges[u as usize] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push_back(v);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "cycle in a CompactGraph");
        order
    }

    /// Whole-graph structural signature: vertex signatures in id order plus
    /// the edge relation. Two graphs with equal `arch_signature` are the
    /// same architecture *as flattened* (used as the catalog key by the
    /// Redis baseline and for dedup bookkeeping).
    pub fn arch_signature(&self) -> ContentHash {
        let mut h = Fnv128::new();
        h.update_u64(self.vertices.len() as u64);
        for v in &self.vertices {
            h.update(&v.sig.0.to_le_bytes());
        }
        for (from, tos) in self.out_edges.iter().enumerate() {
            h.update_u32(from as u32);
            h.update_u64(tos.len() as u64);
            for &t in tos {
                h.update_u32(t);
            }
        }
        h.finish()
    }

    /// Serialize to JSON (the paper populates metadata catalogs with
    /// JSON-serialized architectures, §5.5).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("CompactGraph serializes infallibly")
    }

    /// Parse a graph serialized with [`CompactGraph::to_json`].
    pub fn from_json(s: &str) -> Result<CompactGraph, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Display-friendly single-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} vertices, {} edges, {:.1} MB params",
            self.len(),
            self.edge_count(),
            self.total_param_bytes() as f64 / (1024.0 * 1024.0)
        )
    }
}

/// Build the vertex lookup `sig -> vertex ids` for one graph; used by the
/// LCP matcher when a vertex has many out-neighbors.
pub(crate) fn adjacency_sig_index(
    g: &CompactGraph,
) -> Vec<std::collections::HashMap<ContentHash, Vec<u32>>> {
    g.vertex_ids()
        .map(|u| {
            let mut m: std::collections::HashMap<ContentHash, Vec<u32>> =
                std::collections::HashMap::new();
            for &v in g.out(u) {
                m.entry(g.sig(VertexId(v))).or_default().push(v);
            }
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::flatten::flatten;
    use crate::layer::{Activation, LayerConfig, LayerKind};

    fn seq_model(units: &[u32]) -> CompactGraph {
        let mut a = Architecture::new("seq");
        let mut prev = a.add_layer(LayerConfig::new(
            "in",
            LayerKind::Input {
                shape: vec![units[0]],
            },
        ));
        let mut inf = units[0];
        for (i, &u) in units.iter().enumerate().skip(1) {
            prev = a.chain(
                prev,
                LayerConfig::new(
                    format!("d{i}"),
                    LayerKind::Dense {
                        in_features: inf,
                        units: u,
                        activation: Activation::ReLU,
                    },
                ),
            );
            inf = u;
        }
        flatten(&a).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = seq_model(&[4, 8, 2]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.root(), VertexId(0));
        assert_eq!(g.in_degree(VertexId(0)), 0);
        assert_eq!(g.in_degree(VertexId(1)), 1);
        assert!(!g.is_empty());
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = seq_model(&[4, 8, 8, 2]);
        let order = g.topo_order();
        assert_eq!(order.len(), g.len());
        let pos: std::collections::HashMap<u32, usize> =
            order.iter().enumerate().map(|(i, v)| (v.0, i)).collect();
        for (a, b) in g.edge_list() {
            assert!(pos[&a] < pos[&b]);
        }
    }

    #[test]
    fn json_roundtrip() {
        let g = seq_model(&[4, 8, 2]);
        let j = g.to_json();
        let back = CompactGraph::from_json(&j).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.arch_signature(), g.arch_signature());
    }

    #[test]
    fn arch_signature_differs_for_different_widths() {
        let a = seq_model(&[4, 8, 2]);
        let b = seq_model(&[4, 9, 2]);
        assert_ne!(a.arch_signature(), b.arch_signature());
    }

    #[test]
    fn param_bytes_of_subset() {
        let g = seq_model(&[4, 8, 2]);
        let all: Vec<VertexId> = g.vertex_ids().collect();
        assert_eq!(g.param_bytes_of(&all), g.total_param_bytes());
        assert_eq!(g.param_bytes_of(&[VertexId(0)]), 0); // input layer
    }
}
