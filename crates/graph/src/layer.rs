//! Leaf-layer configurations.
//!
//! A *leaf layer* is the unit of architecture matching and tensor ownership
//! in EvoStore (§4.2). Two leaf layers are "the same choice" iff their
//! configurations are structurally identical — names never participate
//! (identical names may describe different configurations and vice versa),
//! so [`LayerConfig::signature`] hashes only the semantic fields.

use evostore_tensor::{ContentHash, DType, Fnv128, TensorData};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation functions (parameter-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    ReLU,
    GeLU,
    Tanh,
    Sigmoid,
    Elu,
    Softmax,
    /// No activation (linear).
    Identity,
}

impl Activation {
    /// Stable numeric tag for signature hashing.
    pub const fn tag(self) -> u8 {
        match self {
            Activation::ReLU => 0,
            Activation::GeLU => 1,
            Activation::Tanh => 2,
            Activation::Sigmoid => 3,
            Activation::Elu => 4,
            Activation::Softmax => 5,
            Activation::Identity => 6,
        }
    }

    /// All variants, for generators and tests.
    pub const ALL: [Activation; 7] = [
        Activation::ReLU,
        Activation::GeLU,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Elu,
        Activation::Softmax,
        Activation::Identity,
    ];
}

/// The semantic configuration of one leaf layer.
///
/// Every variant carries *fully resolved* dimensions (like a built Keras
/// layer after shape inference), so parameter tensor shapes are derivable
/// from the configuration alone — a property the repository relies on when
/// reconstructing a model from its owner map.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Model input; `shape` excludes the batch dimension.
    Input { shape: Vec<u32> },
    /// Fully connected: `y = act(W x + b)`.
    Dense {
        in_features: u32,
        units: u32,
        activation: Activation,
    },
    /// 2-D convolution (square kernel).
    Conv2d {
        in_channels: u32,
        out_channels: u32,
        kernel: u32,
        stride: u32,
    },
    /// Batch normalization over `features` channels.
    BatchNorm { features: u32 },
    /// Layer normalization over `features`.
    LayerNorm { features: u32 },
    /// Token embedding table.
    Embedding { vocab: u32, dim: u32 },
    /// Multi-head self attention block (fused QKV + output projection).
    Attention { embed_dim: u32, heads: u32 },
    /// Standalone activation.
    Act { activation: Activation },
    /// Dropout; the rate is stored in per-mille so the config stays `Eq`.
    Dropout { rate_milli: u32 },
    /// Max pooling (square window).
    MaxPool2d { kernel: u32, stride: u32 },
    /// Average pooling (square window).
    AvgPool2d { kernel: u32, stride: u32 },
    /// Flatten to a vector.
    Flatten,
    /// Element-wise sum of all inputs (residual joins; in-degree >= 2).
    Add,
    /// Concatenation of all inputs along `axis`.
    Concat { axis: u32 },
}

impl LayerKind {
    /// Stable numeric tag for signature hashing.
    pub const fn tag(&self) -> u8 {
        match self {
            LayerKind::Input { .. } => 0,
            LayerKind::Dense { .. } => 1,
            LayerKind::Conv2d { .. } => 2,
            LayerKind::BatchNorm { .. } => 3,
            LayerKind::LayerNorm { .. } => 4,
            LayerKind::Embedding { .. } => 5,
            LayerKind::Attention { .. } => 6,
            LayerKind::Act { .. } => 7,
            LayerKind::Dropout { .. } => 8,
            LayerKind::MaxPool2d { .. } => 9,
            LayerKind::AvgPool2d { .. } => 10,
            LayerKind::Flatten => 11,
            LayerKind::Add => 12,
            LayerKind::Concat { .. } => 13,
        }
    }

    /// Short human-readable kind name.
    pub const fn name(&self) -> &'static str {
        match self {
            LayerKind::Input { .. } => "input",
            LayerKind::Dense { .. } => "dense",
            LayerKind::Conv2d { .. } => "conv2d",
            LayerKind::BatchNorm { .. } => "batch_norm",
            LayerKind::LayerNorm { .. } => "layer_norm",
            LayerKind::Embedding { .. } => "embedding",
            LayerKind::Attention { .. } => "attention",
            LayerKind::Act { .. } => "activation",
            LayerKind::Dropout { .. } => "dropout",
            LayerKind::MaxPool2d { .. } => "max_pool2d",
            LayerKind::AvgPool2d { .. } => "avg_pool2d",
            LayerKind::Flatten => "flatten",
            LayerKind::Add => "add",
            LayerKind::Concat { .. } => "concat",
        }
    }
}

/// Shape + dtype of one parameter tensor of a layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorSpec {
    /// Slot index within the layer (stable: 0 = kernel/weights, 1 = bias, ...).
    pub slot: u32,
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Element type.
    pub dtype: DType,
}

impl TensorSpec {
    /// Payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.shape.iter().product::<usize>() * self.dtype.size_of()
    }

    /// Materialize a randomly initialized tensor matching this spec.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> TensorData {
        TensorData::random(rng, self.dtype, self.shape.clone())
    }
}

/// A configured leaf layer: semantic kind plus a free-form display name.
///
/// The name is carried for debuggability and API parity with Keras but is
/// explicitly excluded from [`LayerConfig::signature`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerConfig {
    /// Display name (non-semantic).
    pub name: String,
    /// Semantic configuration.
    pub kind: LayerKind,
}

impl LayerConfig {
    /// New layer config.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> LayerConfig {
        LayerConfig {
            name: name.into(),
            kind,
        }
    }

    /// Structural signature: hashes the semantic configuration only.
    ///
    /// Two layers match for LCP purposes iff their signatures are equal.
    pub fn signature(&self) -> ContentHash {
        let mut h = Fnv128::new();
        let k = &self.kind;
        h.update(&[k.tag()]);
        match k {
            LayerKind::Input { shape } => {
                h.update_u64(shape.len() as u64);
                for &d in shape {
                    h.update_u32(d);
                }
            }
            LayerKind::Dense {
                in_features,
                units,
                activation,
            } => {
                h.update_u32(*in_features);
                h.update_u32(*units);
                h.update(&[activation.tag()]);
            }
            LayerKind::Conv2d {
                in_channels,
                out_channels,
                kernel,
                stride,
            } => {
                h.update_u32(*in_channels);
                h.update_u32(*out_channels);
                h.update_u32(*kernel);
                h.update_u32(*stride);
            }
            LayerKind::BatchNorm { features } => h.update_u32(*features),
            LayerKind::LayerNorm { features } => h.update_u32(*features),
            LayerKind::Embedding { vocab, dim } => {
                h.update_u32(*vocab);
                h.update_u32(*dim);
            }
            LayerKind::Attention { embed_dim, heads } => {
                h.update_u32(*embed_dim);
                h.update_u32(*heads);
            }
            LayerKind::Act { activation } => h.update(&[activation.tag()]),
            LayerKind::Dropout { rate_milli } => h.update_u32(*rate_milli),
            LayerKind::MaxPool2d { kernel, stride } | LayerKind::AvgPool2d { kernel, stride } => {
                h.update_u32(*kernel);
                h.update_u32(*stride);
            }
            LayerKind::Flatten | LayerKind::Add => {}
            LayerKind::Concat { axis } => h.update_u32(*axis),
        }
        h.finish()
    }

    /// Parameter tensors this layer owns (empty for parameter-free layers).
    pub fn param_specs(&self) -> Vec<TensorSpec> {
        let f32s = |slot: u32, shape: Vec<usize>| TensorSpec {
            slot,
            shape,
            dtype: DType::F32,
        };
        match &self.kind {
            LayerKind::Dense {
                in_features, units, ..
            } => vec![
                f32s(0, vec![*in_features as usize, *units as usize]),
                f32s(1, vec![*units as usize]),
            ],
            LayerKind::Conv2d {
                in_channels,
                out_channels,
                kernel,
                ..
            } => vec![
                f32s(
                    0,
                    vec![
                        *out_channels as usize,
                        *in_channels as usize,
                        *kernel as usize,
                        *kernel as usize,
                    ],
                ),
                f32s(1, vec![*out_channels as usize]),
            ],
            LayerKind::BatchNorm { features } => {
                let n = *features as usize;
                vec![
                    f32s(0, vec![n]), // gamma
                    f32s(1, vec![n]), // beta
                    f32s(2, vec![n]), // running mean
                    f32s(3, vec![n]), // running var
                ]
            }
            LayerKind::LayerNorm { features } => {
                let n = *features as usize;
                vec![f32s(0, vec![n]), f32s(1, vec![n])]
            }
            LayerKind::Embedding { vocab, dim } => {
                vec![f32s(0, vec![*vocab as usize, *dim as usize])]
            }
            LayerKind::Attention { embed_dim, .. } => {
                let d = *embed_dim as usize;
                vec![
                    f32s(0, vec![d, 3 * d]), // fused QKV projection
                    f32s(1, vec![3 * d]),    // QKV bias
                    f32s(2, vec![d, d]),     // output projection
                    f32s(3, vec![d]),        // output bias
                ]
            }
            LayerKind::Input { .. }
            | LayerKind::Act { .. }
            | LayerKind::Dropout { .. }
            | LayerKind::MaxPool2d { .. }
            | LayerKind::AvgPool2d { .. }
            | LayerKind::Flatten
            | LayerKind::Add
            | LayerKind::Concat { .. } => vec![],
        }
    }

    /// Total parameter bytes of this layer.
    pub fn param_bytes(&self) -> usize {
        self.param_specs().iter().map(TensorSpec::byte_len).sum()
    }

    /// Total parameter element count.
    pub fn param_count(&self) -> usize {
        self.param_specs()
            .iter()
            .map(|s| s.shape.iter().product::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(name: &str, inf: u32, units: u32, act: Activation) -> LayerConfig {
        LayerConfig::new(
            name,
            LayerKind::Dense {
                in_features: inf,
                units,
                activation: act,
            },
        )
    }

    #[test]
    fn signature_ignores_name() {
        let a = dense("alpha", 8, 16, Activation::ReLU);
        let b = dense("beta", 8, 16, Activation::ReLU);
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn signature_sensitive_to_every_dense_field() {
        let base = dense("x", 8, 16, Activation::ReLU);
        assert_ne!(
            base.signature(),
            dense("x", 9, 16, Activation::ReLU).signature()
        );
        assert_ne!(
            base.signature(),
            dense("x", 8, 17, Activation::ReLU).signature()
        );
        assert_ne!(
            base.signature(),
            dense("x", 8, 16, Activation::Tanh).signature()
        );
    }

    #[test]
    fn signature_distinguishes_pool_kinds_with_same_fields() {
        let a = LayerConfig::new(
            "p",
            LayerKind::MaxPool2d {
                kernel: 2,
                stride: 2,
            },
        );
        let b = LayerConfig::new(
            "p",
            LayerKind::AvgPool2d {
                kernel: 2,
                stride: 2,
            },
        );
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn dense_param_specs() {
        let l = dense("d", 8, 16, Activation::ReLU);
        let specs = l.param_specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].shape, vec![8, 16]);
        assert_eq!(specs[1].shape, vec![16]);
        assert_eq!(l.param_count(), 8 * 16 + 16);
        assert_eq!(l.param_bytes(), (8 * 16 + 16) * 4);
    }

    #[test]
    fn attention_param_specs() {
        let l = LayerConfig::new(
            "attn",
            LayerKind::Attention {
                embed_dim: 64,
                heads: 4,
            },
        );
        let specs = l.param_specs();
        assert_eq!(specs.len(), 4);
        assert_eq!(l.param_count(), 64 * 192 + 192 + 64 * 64 + 64);
        // slots are unique and dense
        let slots: Vec<u32> = specs.iter().map(|s| s.slot).collect();
        assert_eq!(slots, vec![0, 1, 2, 3]);
    }

    #[test]
    fn parameter_free_layers_have_no_specs() {
        for k in [
            LayerKind::Flatten,
            LayerKind::Add,
            LayerKind::Concat { axis: 1 },
            LayerKind::Dropout { rate_milli: 500 },
            LayerKind::Act {
                activation: Activation::ReLU,
            },
            LayerKind::Input {
                shape: vec![3, 32, 32],
            },
        ] {
            assert!(LayerConfig::new("x", k).param_specs().is_empty());
        }
    }

    #[test]
    fn batchnorm_has_four_tensors() {
        let l = LayerConfig::new("bn", LayerKind::BatchNorm { features: 32 });
        assert_eq!(l.param_specs().len(), 4);
        assert_eq!(l.param_count(), 4 * 32);
    }
}
