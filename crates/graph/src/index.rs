//! Provider-side architecture index for ancestor queries.
//!
//! The naive LCP scan runs Algorithm 1 against *every* stored model on
//! every query — O(catalog × graph) work per request, repeated for the
//! structurally identical architectures that NAS mutation families
//! produce in bulk. [`ArchIndex`] turns that scan into indexed work with
//! four cooperating mechanisms:
//!
//! 1. **Signature dedup** — catalog entries are bucketed by
//!    [`CompactGraph::arch_signature`]. The LCP depends only on vertex
//!    signatures and the edge relation — exactly what the architecture
//!    signature hashes — so `lcp()` runs at most once per *distinct*
//!    architecture; the best `(quality, model id)` inside the winning
//!    bucket is selected in O(bucket).
//! 2. **Memoized LCP** — a bounded, sharded cache keyed by
//!    `(query_sig, stored_sig) → LcpResult`. Repeated queries against a
//!    stable catalog (the NAS-driver pattern: one population, many
//!    probes) become hash lookups. A memo entry is *pure* — it relates
//!    two graphs, not catalog state — so a stale entry can never produce
//!    a wrong answer; entries are still purged when their stored
//!    architecture leaves the catalog (retire), bounding memory.
//! 3. **Bound-based pruning** — buckets are grouped by the root vertex
//!    signature. The LCP's base case requires the roots to match, so a
//!    root mismatch proves the LCP is empty and the whole group is
//!    skipped without running anything. Within the matching group,
//!    buckets are scanned in descending vertex-count order; since an
//!    LCP can never be longer than the stored graph, the scan
//!    terminates as soon as `best_len` *strictly exceeds* every
//!    remaining vertex count. (Strictly: a remaining bucket whose
//!    vertex count equals `best_len` can still tie on length and win
//!    the quality tie-break, so `≥` termination would change winners.)
//! 4. **Bitset prefilters** (see [`crate::prefilter`]) — each bucket
//!    carries a 64-bit bloom over its non-root vertex signatures and a
//!    bitset of its layer kinds. Ancestor scans derive a sound LCP
//!    upper bound from one `AND` + popcount against the query's bloom
//!    and skip buckets that provably cannot beat *or tie* the current
//!    best (strict `<`, same reasoning as the vertex-count bound);
//!    pattern scans skip buckets missing a required layer kind. The
//!    group stores blooms as a flat side array, so the scan rejects
//!    runs of disjoint buckets four at a time (the chunked-compare
//!    fast path) without touching the bucket table or the memo.
//! 5. **Per-snapshot answer cache** — the *final* best-ancestor answer
//!    is memoized per query signature. This is only sound because the
//!    index values published to readers are immutable: `Clone` hands
//!    the clone a fresh, empty cache and in-place mutation clears it,
//!    so a cached answer can never outlive the catalog state it was
//!    computed against — there is no invalidation protocol to get
//!    wrong. A repeat probe against an unchanged catalog (the dominant
//!    NAS-driver pattern) costs one shard lock and one hash lookup
//!    instead of a walk over every distinct architecture.
//!
//! The index is a *snapshot-friendly* data structure: buckets and root
//! groups sit behind `Arc`s with copy-on-write mutation, so `Clone` is
//! O(distinct architectures) pointer bumps and an updated clone can be
//! published atomically (see [`crate::snapshot::SnapshotCell`]) while
//! readers keep scanning the previous version. The memo is *shared*
//! across clones (entries are pure, so cross-snapshot hits are always
//! valid) and uses sharded `parking_lot` mutexes — the only interior
//! mutability on the read path.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use evostore_tensor::{ContentHash, ModelId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::compact::CompactGraph;
use crate::lcp::{lcp, LcpResult};
use crate::pattern::ArchPattern;
use crate::prefilter::{self, PatternFilter, QueryFilter};

/// Memo shards; also the modulus of the stored-signature shard mapping.
const MEMO_SHARDS: usize = 64;

/// Default bound on memoized `(query, stored)` pairs across all shards.
/// Each entry holds one [`LcpResult`] (a few hundred bytes for typical
/// NAS graphs); the default bounds the memo to low hundreds of MB on
/// worst-case catalogs while comfortably covering a 64-probe driver
/// against several thousand distinct architectures.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 19;

/// Counters describing how one query (or one accumulation period) was
/// served by the index. All counts are in *distinct architectures*
/// except `candidates` and `deduped`, which count models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexQueryStats {
    /// Live models covered by the query (the catalog population).
    pub candidates: u64,
    /// Distinct architectures whose LCP (or pattern match) was actually
    /// computed — the residual expensive work.
    pub scanned: u64,
    /// Distinct architectures answered from the LCP memo.
    pub memo_hits: u64,
    /// Models skipped because another model with the same architecture
    /// signature already covered them (the dedup saving).
    pub deduped: u64,
    /// Distinct architectures skipped outright: root-signature mismatch,
    /// a vertex-count or bloom upper bound proving they cannot win, or a
    /// missing layer kind (pattern queries).
    pub pruned: u64,
    /// Subset of `pruned` rejected by the bitset prefilters specifically
    /// (signature-bloom bound or layer-kind bitset).
    #[serde(default)]
    pub prefiltered: u64,
    /// Queries answered whole from the per-snapshot answer cache (the
    /// walk never started; `pruned` covers the entire catalog).
    #[serde(default)]
    pub answered: u64,
}

impl IndexQueryStats {
    /// Element-wise sum (accumulating across providers or queries).
    pub fn merge(self, other: IndexQueryStats) -> IndexQueryStats {
        IndexQueryStats {
            candidates: self.candidates + other.candidates,
            scanned: self.scanned + other.scanned,
            memo_hits: self.memo_hits + other.memo_hits,
            deduped: self.deduped + other.deduped,
            pruned: self.pruned + other.pruned,
            prefiltered: self.prefiltered + other.prefiltered,
            answered: self.answered + other.answered,
        }
    }
}

/// The best ancestor found by an indexed scan.
#[derive(Debug, Clone)]
pub struct IndexCandidate {
    /// The winning model.
    pub model: ModelId,
    /// Its quality metric.
    pub quality: f64,
    /// The LCP of the query graph against the winner's architecture
    /// (shared with the memo).
    pub lcp: Arc<LcpResult>,
}

/// One distinct architecture and the models that share it.
#[derive(Clone)]
struct Bucket {
    /// Representative graph (all members are structurally identical).
    graph: Arc<CompactGraph>,
    /// Bitset of layer-kind tags present in the graph.
    kind_bits: u64,
    /// `(model, quality)` of every member, unordered.
    models: Vec<(ModelId, f64)>,
}

impl Bucket {
    /// Best member under the scan tie-break: highest quality, then
    /// lowest model id.
    fn best_member(&self) -> (ModelId, f64) {
        let mut it = self.models.iter();
        let mut best = *it.next().expect("buckets are never empty");
        for &(m, q) in it {
            if q > best.1 || (q == best.1 && m < best.0) {
                best = (m, q);
            }
        }
        best
    }
}

/// Buckets sharing one root-vertex signature, sorted by descending
/// `(vertex_count, signature)`. `blooms[i]` is the non-root signature
/// bloom of `entries[i]` — a flat side array so the ancestor scan can
/// reject runs of disjoint buckets without touching the bucket table.
#[derive(Clone, Default)]
struct RootGroup {
    entries: Vec<(u32, ContentHash)>,
    blooms: Vec<u64>,
}

/// One shard of the LCP memo: FIFO-bounded map of
/// `(query_sig, stored_sig) → LcpResult`.
#[derive(Default)]
struct MemoShard {
    map: HashMap<(u128, u128), Arc<LcpResult>>,
    order: VecDeque<(u128, u128)>,
}

/// Sharded, bounded LCP memo. Sharding is by *stored* signature so that
/// retiring an architecture invalidates exactly one shard.
struct LcpMemo {
    shards: Vec<Mutex<MemoShard>>,
    per_shard_capacity: usize,
}

impl LcpMemo {
    fn new(capacity: usize) -> LcpMemo {
        LcpMemo {
            shards: (0..MEMO_SHARDS).map(|_| Mutex::default()).collect(),
            per_shard_capacity: capacity.div_ceil(MEMO_SHARDS).max(1),
        }
    }

    fn shard_of(stored: ContentHash) -> usize {
        stored.low64() as usize % MEMO_SHARDS
    }

    fn get(&self, query: ContentHash, stored: ContentHash) -> Option<Arc<LcpResult>> {
        let shard = self.shards[Self::shard_of(stored)].lock();
        shard.map.get(&(query.0, stored.0)).cloned()
    }

    fn insert(&self, query: ContentHash, stored: ContentHash, value: Arc<LcpResult>) {
        let mut shard = self.shards[Self::shard_of(stored)].lock();
        let key = (query.0, stored.0);
        if shard.map.insert(key, value).is_none() {
            shard.order.push_back(key);
            while shard.map.len() > self.per_shard_capacity {
                let Some(evicted) = shard.order.pop_front() else {
                    break;
                };
                shard.map.remove(&evicted);
            }
        }
    }

    /// Drop every entry memoized against `stored` (its architecture left
    /// the catalog). Touches a single shard.
    fn invalidate_stored(&self, stored: ContentHash) -> usize {
        let mut shard = self.shards[Self::shard_of(stored)].lock();
        let before = shard.map.len();
        shard.map.retain(|k, _| k.1 != stored.0);
        shard.order.retain(|k| k.1 != stored.0);
        before - shard.map.len()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }
}

/// Answer-cache shards (per-snapshot final-result memo).
const ANSWER_SHARDS: usize = 16;

/// Per-shard bound on cached answers. When a shard fills it is cleared
/// wholesale — crude, but the cache lives only as long as its snapshot
/// (every catalog mutation publishes a clone with a fresh cache), so a
/// reset costs one cold walk per distinct live probe at worst.
const ANSWER_SHARD_CAPACITY: usize = 4096;

/// Sharded cache of *final* best-ancestor answers, keyed by query
/// architecture signature.
///
/// Soundness argument: a cached answer is a function of (query graph,
/// whole catalog). The cache is therefore only consulted on index
/// values that cannot change under it — [`ArchIndex::clone`] gives the
/// clone a fresh cache, and every in-place mutation
/// ([`ArchIndex::insert`]/[`ArchIndex::remove`]) clears it. Unlike the
/// pairwise LCP memo (pure, shared across snapshots), this cache never
/// crosses a snapshot boundary.
struct AnswerCache {
    shards: Vec<Mutex<HashMap<u128, Option<IndexCandidate>>>>,
}

impl AnswerCache {
    fn new() -> AnswerCache {
        AnswerCache {
            shards: (0..ANSWER_SHARDS).map(|_| Mutex::default()).collect(),
        }
    }

    fn shard_of(query: ContentHash) -> usize {
        query.low64() as usize % ANSWER_SHARDS
    }

    /// `None` = never computed; `Some(None)` = computed, no ancestor.
    fn get(&self, query: ContentHash) -> Option<Option<IndexCandidate>> {
        self.shards[Self::shard_of(query)]
            .lock()
            .get(&query.0)
            .cloned()
    }

    fn insert(&self, query: ContentHash, answer: Option<IndexCandidate>) {
        let mut shard = self.shards[Self::shard_of(query)].lock();
        if shard.len() >= ANSWER_SHARD_CAPACITY {
            shard.clear();
        }
        shard.insert(query.0, answer);
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

/// Incrementally maintained index over a catalog of `(model, graph,
/// quality)` entries, answering best-ancestor (LCP) and pattern queries
/// without touching structurally duplicate entries.
///
/// Invariants:
/// * every indexed model appears in exactly one bucket, the one keyed by
///   its graph's architecture signature;
/// * a bucket exists iff it has at least one member, and its signature
///   appears in exactly one root group (at the same position as its
///   bloom in the group's side array);
/// * each root group is sorted by descending `(vertex_count, signature)`
///   (the signature tail makes the order total and deterministic);
/// * memo entries only ever relate two graphs by value — they are never
///   consulted for signatures absent from the bucket table, so a stale
///   entry cannot resurrect a retired ancestor.
///
/// `Clone` is cheap (copy-on-write `Arc`s; the memo is shared), which is
/// what lets the provider publish updated indexes as immutable snapshots.
pub struct ArchIndex {
    /// arch signature → bucket of structurally identical models.
    buckets: HashMap<ContentHash, Arc<Bucket>>,
    /// model → its architecture signature (drives removal).
    model_sig: HashMap<ModelId, ContentHash>,
    /// root-vertex signature → group of buckets with that root.
    by_root: HashMap<ContentHash, Arc<RootGroup>>,
    memo: Arc<LcpMemo>,
    /// Final-answer cache; valid only for THIS index value (see
    /// [`AnswerCache`]), hence excluded from `Clone`.
    answers: AnswerCache,
}

impl Clone for ArchIndex {
    /// Copy-on-write clone: buckets/groups are pointer bumps, the pure
    /// LCP memo is shared, and the clone starts with an EMPTY answer
    /// cache — cached answers must never travel to an index value that
    /// will be mutated out from under them.
    fn clone(&self) -> ArchIndex {
        ArchIndex {
            buckets: self.buckets.clone(),
            model_sig: self.model_sig.clone(),
            by_root: self.by_root.clone(),
            memo: Arc::clone(&self.memo),
            answers: AnswerCache::new(),
        }
    }
}

impl Default for ArchIndex {
    fn default() -> Self {
        ArchIndex::new()
    }
}

impl ArchIndex {
    /// Empty index with the default memo capacity.
    pub fn new() -> ArchIndex {
        ArchIndex::with_memo_capacity(DEFAULT_MEMO_CAPACITY)
    }

    /// Empty index bounding the memo to `capacity` entries.
    pub fn with_memo_capacity(capacity: usize) -> ArchIndex {
        ArchIndex {
            buckets: HashMap::new(),
            model_sig: HashMap::new(),
            by_root: HashMap::new(),
            memo: Arc::new(LcpMemo::new(capacity)),
            answers: AnswerCache::new(),
        }
    }

    /// Indexed models.
    pub fn len(&self) -> usize {
        self.model_sig.len()
    }

    /// True when no model is indexed.
    pub fn is_empty(&self) -> bool {
        self.model_sig.is_empty()
    }

    /// Is `model` indexed?
    pub fn contains(&self, model: ModelId) -> bool {
        self.model_sig.contains_key(&model)
    }

    /// Distinct architectures indexed (the dedup denominator).
    pub fn distinct_architectures(&self) -> usize {
        self.buckets.len()
    }

    /// Live memo entries (diagnostics/tests).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Index `model`. Replaces any previous entry for the same id.
    pub fn insert(&mut self, model: ModelId, graph: Arc<CompactGraph>, quality: f64) {
        self.remove(model);
        self.answers.clear();
        let sig = graph.arch_signature();
        self.model_sig.insert(model, sig);
        match self.buckets.get_mut(&sig) {
            Some(bucket) => Arc::make_mut(bucket).models.push((model, quality)),
            None => {
                let vertex_count = graph.len() as u32;
                if !graph.is_empty() {
                    let group =
                        Arc::make_mut(self.by_root.entry(graph.sig(graph.root())).or_default());
                    // Descending (vertex_count, sig): find the insertion
                    // point in the reverse-sorted vector.
                    let pos = group.entries.partition_point(|&e| e > (vertex_count, sig));
                    group.entries.insert(pos, (vertex_count, sig));
                    group.blooms.insert(pos, prefilter::sig_bloom(&graph));
                }
                let kind_bits = prefilter::kind_bits(&graph);
                self.buckets.insert(
                    sig,
                    Arc::new(Bucket {
                        graph,
                        kind_bits,
                        models: vec![(model, quality)],
                    }),
                );
            }
        }
    }

    /// Un-index `model`; returns whether it was present. Dropping the
    /// last member of an architecture removes its bucket and purges the
    /// memo entries computed against it.
    pub fn remove(&mut self, model: ModelId) -> bool {
        let Some(sig) = self.model_sig.remove(&model) else {
            return false;
        };
        self.answers.clear();
        let bucket = self.buckets.get_mut(&sig).expect("bucket exists for sig");
        let b = Arc::make_mut(bucket);
        b.models.retain(|&(m, _)| m != model);
        if b.models.is_empty() {
            let bucket = self.buckets.remove(&sig).expect("bucket exists");
            if !bucket.graph.is_empty() {
                let root = bucket.graph.sig(bucket.graph.root());
                if let Some(group) = self.by_root.get_mut(&root) {
                    let g = Arc::make_mut(group);
                    if let Some(pos) = g.entries.iter().position(|&(_, s)| s == sig) {
                        g.entries.remove(pos);
                        g.blooms.remove(pos);
                    }
                    if g.entries.is_empty() {
                        self.by_root.remove(&root);
                    }
                }
            }
            self.memo.invalidate_stored(sig);
        }
        true
    }

    /// Best ancestor of `g` over the indexed catalog: longest LCP, ties
    /// broken by higher quality, then lower model id — byte-identical to
    /// the brute-force scan over every member. Prefilters enabled.
    pub fn best_ancestor(&self, g: &CompactGraph) -> (Option<IndexCandidate>, IndexQueryStats) {
        self.best_ancestor_with(g, true)
    }

    /// [`ArchIndex::best_ancestor`] with the acceleration layers
    /// toggleable (the A/B lever for benchmarks): `false` bypasses the
    /// bitset prefilters AND the per-snapshot answer cache, reproducing
    /// the unaccelerated dedup+memo scan exactly. Answers are identical
    /// either way; only the work to produce them differs.
    pub fn best_ancestor_with(
        &self,
        g: &CompactGraph,
        use_prefilter: bool,
    ) -> (Option<IndexCandidate>, IndexQueryStats) {
        let mut stats = IndexQueryStats {
            candidates: self.model_sig.len() as u64,
            ..IndexQueryStats::default()
        };
        let total_archs = self.buckets.len() as u64;
        if g.is_empty() {
            stats.pruned = total_archs;
            return (None, stats);
        }
        let query_sig = g.arch_signature();
        if use_prefilter {
            if let Some(answer) = self.answers.get(query_sig) {
                stats.answered = 1;
                stats.pruned = total_archs;
                return (answer, stats);
            }
        }
        let group = match self.by_root.get(&g.sig(g.root())) {
            Some(group) => group,
            None => {
                stats.pruned = total_archs;
                if use_prefilter {
                    self.answers.insert(query_sig, None);
                }
                return (None, stats);
            }
        };
        // Every bucket outside the root group is pruned by the root
        // precondition of Algorithm 1.
        stats.pruned = total_archs - group.entries.len() as u64;

        let qf = QueryFilter::new(g);
        let entries = &group.entries;
        let blooms = &group.blooms;
        let n = entries.len();
        let mut best: Option<IndexCandidate> = None;
        let mut best_len = 0usize;
        let mut i = 0usize;
        while i < n {
            // Chunked-compare fast path: once best_len >= 2, any bucket
            // whose bloom is disjoint from the query's can reach at most
            // the root (length 1) and cannot tie — reject four at a time
            // with one AND + compare.
            if use_prefilter && best_len >= 2 && i + 4 <= n {
                let merged = blooms[i] | blooms[i + 1] | blooms[i + 2] | blooms[i + 3];
                if merged & qf.sig_bloom == 0 {
                    stats.pruned += 4;
                    stats.prefiltered += 4;
                    i += 4;
                    continue;
                }
            }
            let (vertex_count, sig) = entries[i];
            // Vertex count bounds the LCP length; the group is sorted
            // descending, so once even a tie on length is impossible the
            // remainder cannot win.
            if (vertex_count as usize) < best_len {
                stats.pruned += (n - i) as u64;
                break;
            }
            // Bloom bound: strictly below best_len means the bucket can
            // neither win nor tie (same strictness argument as above).
            if use_prefilter && best_len >= 2 && qf.lcp_bound(blooms[i]) < best_len {
                stats.pruned += 1;
                stats.prefiltered += 1;
                i += 1;
                continue;
            }
            let bucket = &self.buckets[&sig];
            let result = match self.memo.get(query_sig, sig) {
                Some(hit) => {
                    stats.memo_hits += 1;
                    hit
                }
                None => {
                    stats.scanned += 1;
                    let r = Arc::new(lcp(g, &bucket.graph));
                    self.memo.insert(query_sig, sig, Arc::clone(&r));
                    r
                }
            };
            stats.deduped += bucket.models.len() as u64 - 1;
            if result.is_empty() {
                // Unreachable for a matching root (the root always joins
                // the prefix), but harmless to tolerate.
                i += 1;
                continue;
            }
            let (model, quality) = bucket.best_member();
            let better = match &best {
                None => true,
                Some(b) => {
                    result.len() > best_len
                        || (result.len() == best_len
                            && (quality > b.quality || (quality == b.quality && model < b.model)))
                }
            };
            if better {
                best_len = result.len();
                best = Some(IndexCandidate {
                    model,
                    quality,
                    lcp: result,
                });
            }
            i += 1;
        }
        if use_prefilter {
            self.answers.insert(query_sig, best.clone());
        }
        (best, stats)
    }

    /// Every `(model, quality)` whose architecture matches `pattern`,
    /// sorted by model id. The pattern is evaluated once per distinct
    /// architecture (patterns are architecture-only predicates, so
    /// signature dedup applies verbatim). Prefilters enabled.
    pub fn match_pattern(&self, pattern: &ArchPattern) -> (Vec<(ModelId, f64)>, IndexQueryStats) {
        self.match_pattern_with(pattern, true)
    }

    /// [`ArchIndex::match_pattern`] with the layer-kind bitset prefilter
    /// toggleable.
    pub fn match_pattern_with(
        &self,
        pattern: &ArchPattern,
        use_prefilter: bool,
    ) -> (Vec<(ModelId, f64)>, IndexQueryStats) {
        let mut stats = IndexQueryStats {
            candidates: self.model_sig.len() as u64,
            ..IndexQueryStats::default()
        };
        let pf = PatternFilter::new(pattern);
        let mut matches = Vec::new();
        for bucket in self.buckets.values() {
            if use_prefilter && !pf.admits(bucket.kind_bits) {
                stats.pruned += 1;
                stats.prefiltered += 1;
                continue;
            }
            stats.scanned += 1;
            stats.deduped += bucket.models.len() as u64 - 1;
            if pattern.matches(&bucket.graph) {
                matches.extend(bucket.models.iter().copied());
            }
        }
        matches.sort_by_key(|&(m, _)| m);
        (matches, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::flatten::flatten;
    use crate::layer::{Activation, LayerConfig, LayerKind};
    use crate::lcp::lcp;

    fn seq(units: &[u32]) -> CompactGraph {
        let mut a = Architecture::new("seq");
        let mut prev = a.add_layer(LayerConfig::new(
            "in",
            LayerKind::Input {
                shape: vec![units[0]],
            },
        ));
        let mut inf = units[0];
        for (i, &u) in units.iter().enumerate().skip(1) {
            prev = a.chain(
                prev,
                LayerConfig::new(
                    format!("d{i}"),
                    LayerKind::Dense {
                        in_features: inf,
                        units: u,
                        activation: Activation::ReLU,
                    },
                ),
            );
            inf = u;
        }
        flatten(&a).unwrap()
    }

    /// Brute-force reference: scan everything, max by (len, quality,
    /// lower id) — mirrors the provider's unindexed scan.
    fn brute(
        g: &CompactGraph,
        entries: &[(ModelId, Arc<CompactGraph>, f64)],
    ) -> Option<(ModelId, f64, LcpResult)> {
        entries
            .iter()
            .map(|(m, a, q)| (*m, *q, lcp(g, a)))
            .filter(|(_, _, r)| !r.is_empty())
            .max_by(|(ma, qa, ra), (mb, qb, rb)| {
                ra.len()
                    .cmp(&rb.len())
                    .then(qa.partial_cmp(qb).unwrap_or(std::cmp::Ordering::Equal))
                    .then(mb.cmp(ma))
            })
    }

    fn check_equiv(
        index: &ArchIndex,
        entries: &[(ModelId, Arc<CompactGraph>, f64)],
        g: &CompactGraph,
    ) {
        let (got, _) = index.best_ancestor(g);
        let want = brute(g, entries);
        match (got, want) {
            (None, None) => {}
            (Some(c), Some((m, q, r))) => {
                assert_eq!(c.model, m);
                assert_eq!(c.quality, q);
                assert_eq!(*c.lcp, r);
            }
            (got, want) => panic!(
                "index/brute mismatch: index={:?} brute={:?}",
                got.map(|c| c.model),
                want.map(|w| w.0)
            ),
        }
    }

    #[test]
    fn dedup_scans_once_per_architecture() {
        let mut ix = ArchIndex::new();
        let g = Arc::new(seq(&[4, 8, 2]));
        ix.insert(ModelId(1), Arc::clone(&g), 0.3);
        ix.insert(ModelId(2), Arc::clone(&g), 0.9);
        ix.insert(ModelId(3), Arc::clone(&g), 0.9);
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.distinct_architectures(), 1);

        let (best, stats) = ix.best_ancestor(&g);
        let best = best.unwrap();
        // Highest quality wins; equal qualities break to the lower id.
        assert_eq!(best.model, ModelId(2));
        assert_eq!(stats.scanned, 1);
        assert_eq!(stats.deduped, 2);
        assert_eq!(stats.candidates, 3);
    }

    #[test]
    fn root_mismatch_prunes_without_scanning() {
        let mut ix = ArchIndex::new();
        ix.insert(ModelId(1), Arc::new(seq(&[5, 8, 2])), 0.5);
        let probe = seq(&[4, 8, 2]); // different input width => root sig differs
        let (best, stats) = ix.best_ancestor(&probe);
        assert!(best.is_none());
        assert_eq!(stats.scanned, 0);
        assert_eq!(stats.pruned, 1);
    }

    #[test]
    fn vertex_count_bound_prunes_tail() {
        let mut ix = ArchIndex::new();
        // Full match of the 5-vertex probe against the 5-vertex entry.
        ix.insert(ModelId(1), Arc::new(seq(&[4, 8, 8, 2, 7])), 0.5);
        // A 2-vertex entry can reach at most len 2 < 5: must be pruned.
        ix.insert(ModelId(2), Arc::new(seq(&[4, 9])), 0.5);
        let probe = seq(&[4, 8, 8, 2, 7]);
        let (best, stats) = ix.best_ancestor(&probe);
        assert_eq!(best.unwrap().model, ModelId(1));
        assert_eq!(stats.scanned, 1);
        assert_eq!(stats.pruned, 1);
    }

    #[test]
    fn equal_length_tie_is_not_pruned() {
        // Probe shares its first two vertices with a long, low-quality
        // entry and *fully* matches a 2-vertex, high-quality entry. Both
        // reach len 2; the tie must go to quality — which requires NOT
        // pruning the smaller bucket when best_len == its vertex count
        // (and, symmetrically, when best_len == its bloom bound).
        let mut ix = ArchIndex::new();
        ix.insert(ModelId(1), Arc::new(seq(&[4, 8, 9, 9])), 0.1);
        ix.insert(ModelId(2), Arc::new(seq(&[4, 8])), 0.9);
        let probe = seq(&[4, 8, 2]);
        let entries = vec![
            (ModelId(1), Arc::new(seq(&[4, 8, 9, 9])), 0.1),
            (ModelId(2), Arc::new(seq(&[4, 8])), 0.9),
        ];
        check_equiv(&ix, &entries, &probe);
        let (best, _) = ix.best_ancestor(&probe);
        assert_eq!(best.unwrap().model, ModelId(2));
    }

    #[test]
    fn prefilter_rejects_disjoint_buckets() {
        // The 5-vertex winner shares the probe's first two vertices and
        // sorts first (most vertices). The 4-vertex decoys share only
        // the root: their vertex count (4) survives the count bound
        // (best_len = 2) but their blooms are disjoint from the probe's,
        // so the bloom bound rejects them without computing any LCP.
        let mut ix = ArchIndex::new();
        let winner = Arc::new(seq(&[4, 8, 77, 77, 77]));
        ix.insert(ModelId(1), Arc::clone(&winner), 0.5);
        let mut entries: Vec<(ModelId, Arc<CompactGraph>, f64)> = vec![(ModelId(1), winner, 0.5)];
        for i in 0..8u32 {
            let decoy = Arc::new(seq(&[4, 50 + i, 60 + i, 70 + i]));
            ix.insert(ModelId(10 + i as u64), Arc::clone(&decoy), 0.5);
            entries.push((ModelId(10 + i as u64), decoy, 0.5));
        }
        let probe = seq(&[4, 8, 99]);
        check_equiv(&ix, &entries, &probe);

        // `check_equiv` populated the answer cache; query a clone (fresh
        // cache) so the walk actually runs and its stats are observable.
        let ix = ix.clone();
        let (best, stats) = ix.best_ancestor(&probe);
        assert_eq!(best.unwrap().model, ModelId(1));
        // Bloom-bit collisions can only *demote* a rejection to a scan,
        // never break correctness; with these fixed FNV hashes most of
        // the 8 decoys are rejected.
        assert!(
            stats.prefiltered >= 5,
            "expected bloom rejections, got {stats:?}"
        );
        assert_eq!(
            stats.scanned + stats.memo_hits + stats.pruned,
            9,
            "every distinct arch accounted for: {stats:?}"
        );
        assert!(stats.prefiltered <= stats.pruned);

        // With the prefilter disabled every group member is evaluated.
        let (best_off, stats_off) = ix.best_ancestor_with(&probe, false);
        assert_eq!(best_off.unwrap().model, ModelId(1));
        assert_eq!(stats_off.prefiltered, 0);
        assert_eq!(stats_off.scanned + stats_off.memo_hits, 9);
    }

    #[test]
    fn memo_hits_on_repeat_and_invalidates_on_retire() {
        let mut ix = ArchIndex::new();
        let a = Arc::new(seq(&[4, 8, 8, 2]));
        let b = Arc::new(seq(&[4, 8, 9, 2]));
        ix.insert(ModelId(1), Arc::clone(&a), 0.5);
        ix.insert(ModelId(2), Arc::clone(&b), 0.4);
        let probe = seq(&[4, 8, 8, 2, 7]);

        // Prefilter off: this test pins the memo lifecycle, and the
        // bloom bound may legitimately skip the weaker bucket.
        let (best1, s1) = ix.best_ancestor_with(&probe, false);
        assert_eq!(s1.scanned, 2);
        assert_eq!(s1.memo_hits, 0);
        let (best2, s2) = ix.best_ancestor_with(&probe, false);
        assert_eq!(s2.scanned, 0);
        assert_eq!(s2.memo_hits, 2);
        assert_eq!(best1.as_ref().unwrap().model, best2.as_ref().unwrap().model);
        assert_eq!(ix.memo_len(), 2);

        // Retiring the winner purges its memo entries and changes the
        // answer — no stale ancestor survives.
        let winner = best1.unwrap().model;
        assert!(ix.remove(winner));
        assert_eq!(ix.memo_len(), 1);
        let (best3, _) = ix.best_ancestor_with(&probe, false);
        assert_ne!(best3.as_ref().unwrap().model, winner);
    }

    #[test]
    fn remove_keeps_shared_bucket_alive() {
        let mut ix = ArchIndex::new();
        let g = Arc::new(seq(&[4, 8, 2]));
        ix.insert(ModelId(1), Arc::clone(&g), 0.9);
        ix.insert(ModelId(2), Arc::clone(&g), 0.2);
        let probe = (*g).clone();
        let _ = ix.best_ancestor(&probe);
        assert_eq!(ix.memo_len(), 1);
        // Removing one member keeps the bucket (and its memo entries).
        assert!(ix.remove(ModelId(1)));
        assert_eq!(ix.memo_len(), 1);
        let (best, _) = ix.best_ancestor(&probe);
        assert_eq!(best.unwrap().model, ModelId(2));
        // Removing the last member drops the bucket and the memo.
        assert!(ix.remove(ModelId(2)));
        assert!(ix.is_empty());
        assert_eq!(ix.memo_len(), 0);
        assert!(!ix.remove(ModelId(2)));
    }

    #[test]
    fn insert_replaces_existing_model() {
        let mut ix = ArchIndex::new();
        ix.insert(ModelId(1), Arc::new(seq(&[4, 8, 2])), 0.5);
        ix.insert(ModelId(1), Arc::new(seq(&[4, 9, 2])), 0.7);
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.distinct_architectures(), 1);
        let probe = seq(&[4, 9, 2]);
        let (best, _) = ix.best_ancestor(&probe);
        let best = best.unwrap();
        assert_eq!(best.model, ModelId(1));
        assert_eq!(best.lcp.len(), probe.len());
    }

    #[test]
    fn memo_capacity_is_bounded() {
        let mut ix = ArchIndex::with_memo_capacity(MEMO_SHARDS); // 1 entry/shard
        for i in 0..32u32 {
            ix.insert(ModelId(i as u64), Arc::new(seq(&[4, 8, 2 + i])), 0.5);
        }
        for i in 0..16u32 {
            let _ = ix.best_ancestor(&seq(&[4, 8, 100 + i]));
        }
        // 16 probes x 32 stored pairs, but at most 1 per shard survives.
        assert!(ix.memo_len() <= MEMO_SHARDS);
        // Bounded memo still answers correctly.
        let entries: Vec<(ModelId, Arc<CompactGraph>, f64)> = (0..32u32)
            .map(|i| (ModelId(i as u64), Arc::new(seq(&[4, 8, 2 + i])), 0.5))
            .collect();
        check_equiv(&ix, &entries, &seq(&[4, 8, 7]));
    }

    #[test]
    fn clone_is_an_independent_snapshot() {
        let mut ix = ArchIndex::new();
        let g = Arc::new(seq(&[4, 8, 2]));
        ix.insert(ModelId(1), Arc::clone(&g), 0.9);
        let snap = ix.clone();

        // Mutations to the original never show through the clone.
        ix.insert(ModelId(2), Arc::new(seq(&[4, 9, 2])), 0.8);
        ix.remove(ModelId(1));
        assert_eq!(snap.len(), 1);
        assert!(snap.contains(ModelId(1)));
        assert!(!snap.contains(ModelId(2)));
        let (best, _) = snap.best_ancestor(&g);
        assert_eq!(best.unwrap().model, ModelId(1));

        // ...and the mutated original answers from its own state.
        assert!(!ix.contains(ModelId(1)));
        let (best2, _) = ix.best_ancestor(&seq(&[4, 9, 2]));
        assert_eq!(best2.unwrap().model, ModelId(2));
    }

    #[test]
    fn pattern_match_dedups_and_sorts() {
        use crate::pattern::LayerPattern;
        let mut ix = ArchIndex::new();
        let g = Arc::new(seq(&[4, 8, 2]));
        ix.insert(ModelId(9), Arc::clone(&g), 0.1);
        ix.insert(ModelId(3), Arc::clone(&g), 0.2);
        ix.insert(ModelId(5), Arc::new(seq(&[4, 8])), 0.3);
        let pattern = ArchPattern::any().with_layer(LayerPattern::DenseUnits { min: 2, max: 2 });
        let (matches, stats) = ix.match_pattern(&pattern);
        assert_eq!(
            matches.iter().map(|&(m, _)| m).collect::<Vec<_>>(),
            vec![ModelId(3), ModelId(9)]
        );
        assert_eq!(stats.scanned, 2); // two distinct architectures
        assert_eq!(stats.deduped, 1);
    }

    #[test]
    fn pattern_prefilter_skips_kindless_buckets() {
        use crate::pattern::LayerPattern;
        let mut ix = ArchIndex::new();
        ix.insert(ModelId(1), Arc::new(seq(&[4, 8, 2])), 0.1);
        // A pattern requiring a kind no indexed graph has: every bucket
        // is rejected by the kind bitset, none evaluated.
        let pattern = ArchPattern::any().with_layer(LayerPattern::Kind("attention".into()));
        let (matches, stats) = ix.match_pattern(&pattern);
        assert!(matches.is_empty());
        assert_eq!(stats.scanned, 0);
        assert_eq!(stats.prefiltered, 1);
        assert_eq!(stats.pruned, 1);
        // Same answer with the prefilter off, paying the evaluation.
        let (matches_off, stats_off) = ix.match_pattern_with(&pattern, false);
        assert!(matches_off.is_empty());
        assert_eq!(stats_off.scanned, 1);
        assert_eq!(stats_off.prefiltered, 0);
    }

    #[test]
    fn stats_merge_sums() {
        let a = IndexQueryStats {
            candidates: 1,
            scanned: 2,
            memo_hits: 3,
            deduped: 4,
            pruned: 5,
            prefiltered: 6,
            answered: 7,
        };
        let m = a.merge(a);
        assert_eq!(m.candidates, 2);
        assert_eq!(m.scanned, 4);
        assert_eq!(m.memo_hits, 6);
        assert_eq!(m.deduped, 8);
        assert_eq!(m.pruned, 10);
        assert_eq!(m.prefiltered, 12);
        assert_eq!(m.answered, 14);
    }
}
