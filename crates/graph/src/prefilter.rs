//! Bitset signature prefilters for the arch index.
//!
//! Two 64-bit summaries are precomputed per indexed architecture and let
//! queries reject whole buckets with one `AND` + compare, before touching
//! the LCP memo or the graph itself:
//!
//! - **Signature bloom** ([`sig_bloom`]): one bit per *non-root* vertex
//!   signature (`low64() & 63`). The LCP matcher binds every non-root
//!   prefix vertex of the query injectively to a distinct non-root
//!   ancestor vertex with an *equal* signature (the root always binds the
//!   root), so `lcp_len <= 1 + Σ_b count_q(b)` over bits `b` set in both
//!   blooms, where `count_q(b)` is the number of non-root query vertices
//!   hashing to bit `b`. Hash collisions only *inflate* the bound, so
//!   pruning a bucket whose bound is strictly below the best length so
//!   far can never change the query answer ([`QueryFilter::lcp_bound`]).
//!
//! - **Layer-kind bitset** ([`kind_bits`]): one bit per [`LayerKind`]
//!   tag present anywhere in the graph. [`PatternFilter`] derives, per
//!   layer pattern of an [`ArchPattern`], a conservative mask of kinds a
//!   matching vertex *could* have; a bucket whose kind bitset misses a
//!   required mask entirely cannot match the pattern and is skipped
//!   without evaluating it.

use crate::compact::CompactGraph;
use crate::pattern::{ArchPattern, LayerPattern};

/// Bit for one vertex signature (low 6 bits of the 128-bit content hash).
#[inline]
fn sig_bit(low64: u64) -> u64 {
    1u64 << (low64 & 63)
}

/// Bloom over the *non-root* vertex signatures of `g`.
///
/// The root is excluded on purpose: every bucket under one root group
/// shares the root signature, so including it would make every
/// query/bucket intersection trivially non-empty.
pub fn sig_bloom(g: &CompactGraph) -> u64 {
    let mut bloom = 0u64;
    for v in g.vertex_ids() {
        if v == g.root() {
            continue;
        }
        bloom |= sig_bit(g.sig(v).low64());
    }
    bloom
}

/// Bitset of [`LayerKind::tag`] values present anywhere in `g`.
pub fn kind_bits(g: &CompactGraph) -> u64 {
    let mut bits = 0u64;
    for v in g.vertex_ids() {
        bits |= 1u64 << g.vertex(v).config.kind.tag();
    }
    bits
}

/// Query-side companion of [`sig_bloom`]: the bloom plus per-bit vertex
/// counts, so a bucket bloom yields a sound LCP upper bound.
#[derive(Debug, Clone)]
pub struct QueryFilter {
    /// Bloom over the query's non-root vertex signatures.
    pub sig_bloom: u64,
    /// Non-root query vertices hashing to each bloom bit.
    counts: [u32; 64],
}

impl QueryFilter {
    /// Build the filter for query graph `g`.
    pub fn new(g: &CompactGraph) -> QueryFilter {
        let mut counts = [0u32; 64];
        let mut bloom = 0u64;
        for v in g.vertex_ids() {
            if v == g.root() {
                continue;
            }
            let bit = g.sig(v).low64() & 63;
            counts[bit as usize] += 1;
            bloom |= 1u64 << bit;
        }
        QueryFilter {
            sig_bloom: bloom,
            counts,
        }
    }

    /// Upper bound on the LCP length against any graph whose non-root
    /// signature bloom is `bucket_bloom`. Never below 1 (the root match
    /// is unconditional within a root group).
    pub fn lcp_bound(&self, bucket_bloom: u64) -> usize {
        let mut shared = self.sig_bloom & bucket_bloom;
        let mut bound = 1usize;
        while shared != 0 {
            bound += self.counts[shared.trailing_zeros() as usize] as usize;
            shared &= shared - 1;
        }
        bound
    }
}

/// Mask of kind-tag bits a vertex matching `p` could carry.
///
/// `u64::MAX` means "unconstrained" (any kind could match); `0` means
/// "no kind can match" (e.g. an unknown kind name), which correctly
/// rejects every bucket.
fn kind_mask(p: &LayerPattern) -> u64 {
    match p {
        LayerPattern::Any => u64::MAX,
        LayerPattern::Kind(name) => match tag_of_name(name) {
            Some(tag) => 1u64 << tag,
            None => 0,
        },
        LayerPattern::DenseUnits { .. } => 1u64 << 1, // Dense
        LayerPattern::AttentionHeads { .. } => 1u64 << 6, // Attention
        LayerPattern::Uses(_) => (1u64 << 1) | (1u64 << 7), // Dense | Act
        LayerPattern::AnyOf(ps) => ps.iter().fold(0, |m, p| m | kind_mask(p)),
        LayerPattern::AllOf(ps) => ps.iter().fold(u64::MAX, |m, p| m & kind_mask(p)),
    }
}

/// Inverse of [`LayerKind::name`] at the tag level.
fn tag_of_name(name: &str) -> Option<u8> {
    Some(match name {
        "input" => 0,
        "dense" => 1,
        "conv2d" => 2,
        "batch_norm" => 3,
        "layer_norm" => 4,
        "embedding" => 5,
        "attention" => 6,
        "activation" => 7,
        "dropout" => 8,
        "max_pool2d" => 9,
        "avg_pool2d" => 10,
        "flatten" => 11,
        "add" => 12,
        "concat" => 13,
        _ => return None,
    })
}

/// Conservative per-pattern kind requirements: a graph matching the
/// pattern must intersect every mask in `groups`.
#[derive(Debug, Clone)]
pub struct PatternFilter {
    groups: Vec<u64>,
}

impl PatternFilter {
    /// Derive the requirement masks of `p`. Unconstrained layer patterns
    /// (mask = all ones) contribute nothing.
    pub fn new(p: &ArchPattern) -> PatternFilter {
        let groups = p
            .require_layers
            .iter()
            .chain(p.sequence.iter())
            .map(kind_mask)
            .filter(|&m| m != u64::MAX)
            .collect();
        PatternFilter { groups }
    }

    /// Could a graph with this kind bitset match the pattern? `false`
    /// is definitive (the pattern cannot match); `true` is a maybe.
    pub fn admits(&self, kind_bits: u64) -> bool {
        self.groups.iter().all(|&m| kind_bits & m != 0)
    }

    /// Number of non-trivial requirement masks (for tests/stats).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when the filter imposes no constraint.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::flatten::flatten;
    use crate::generator::GenomeSpace;
    use crate::layer::{Activation, LayerConfig, LayerKind};
    use crate::lcp::lcp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn chain_model(kinds: &[LayerKind]) -> CompactGraph {
        let mut m = Architecture::new("m");
        let mut prev = m.add_layer(LayerConfig::new("l0", kinds[0].clone()));
        for (i, k) in kinds.iter().enumerate().skip(1) {
            prev = m.chain(prev, LayerConfig::new(format!("l{i}"), k.clone()));
        }
        flatten(&m).unwrap()
    }

    fn dense(units: u32) -> LayerKind {
        LayerKind::Dense {
            in_features: units,
            units,
            activation: Activation::ReLU,
        }
    }

    #[test]
    fn tag_of_name_inverts_every_kind_name() {
        let kinds = [
            LayerKind::Input { shape: vec![4] },
            dense(4),
            LayerKind::Conv2d {
                in_channels: 1,
                out_channels: 1,
                kernel: 3,
                stride: 1,
            },
            LayerKind::BatchNorm { features: 4 },
            LayerKind::LayerNorm { features: 4 },
            LayerKind::Embedding { vocab: 8, dim: 4 },
            LayerKind::Attention {
                embed_dim: 8,
                heads: 2,
            },
            LayerKind::Act {
                activation: Activation::ReLU,
            },
            LayerKind::Dropout { rate_milli: 100 },
            LayerKind::MaxPool2d {
                kernel: 2,
                stride: 2,
            },
            LayerKind::AvgPool2d {
                kernel: 2,
                stride: 2,
            },
            LayerKind::Flatten,
            LayerKind::Add,
            LayerKind::Concat { axis: 1 },
        ];
        for k in &kinds {
            assert_eq!(tag_of_name(k.name()), Some(k.tag()), "kind {:?}", k.name());
        }
        assert_eq!(tag_of_name("warp_drive"), None);
    }

    #[test]
    fn sig_bloom_excludes_root() {
        let g = chain_model(&[LayerKind::Input { shape: vec![4] }]);
        assert_eq!(sig_bloom(&g), 0, "single-vertex graph has an empty bloom");
        let g2 = chain_model(&[LayerKind::Input { shape: vec![4] }, dense(4)]);
        assert_eq!(sig_bloom(&g2).count_ones(), 1);
    }

    #[test]
    fn lcp_bound_is_sound_on_random_pairs() {
        // Differential check: the bloom bound never undercuts the real LCP.
        let space = GenomeSpace::attn_like();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut checked = 0usize;
        for _ in 0..40 {
            let a = space.materialize(&space.sample(&mut rng));
            let base = space.sample(&mut rng);
            let b = space.materialize(&space.mutate(&base, &mut rng));
            let (ga, gb) = (flatten(&a).unwrap(), flatten(&b).unwrap());
            if ga.sig(ga.root()) != gb.sig(gb.root()) {
                continue; // bound only claimed within a root group
            }
            let qf = QueryFilter::new(&ga);
            let bound = qf.lcp_bound(sig_bloom(&gb));
            let real = lcp(&ga, &gb).len();
            assert!(
                bound >= real,
                "bound {bound} undercuts real LCP {real} ({} vs {} vertices)",
                ga.len(),
                gb.len()
            );
            checked += 1;
        }
        assert!(checked > 0, "no root-compatible pairs sampled");
    }

    #[test]
    fn lcp_bound_identity_is_tight_enough() {
        let g = chain_model(&[
            LayerKind::Input { shape: vec![4] },
            dense(4),
            dense(8),
            LayerKind::Flatten,
        ]);
        let qf = QueryFilter::new(&g);
        // Against itself the bound must admit the full graph...
        assert!(qf.lcp_bound(sig_bloom(&g)) >= g.len());
        // ...and against a disjoint bloom it collapses to the root.
        assert_eq!(qf.lcp_bound(0), 1);
    }

    #[test]
    fn pattern_filter_is_conservative() {
        // Whenever the pattern matches the graph, the filter must admit
        // the graph's kind bitset (no false rejections).
        let g = chain_model(&[
            LayerKind::Input { shape: vec![16] },
            dense(16),
            LayerKind::LayerNorm { features: 16 },
            LayerKind::Attention {
                embed_dim: 16,
                heads: 4,
            },
            LayerKind::Add,
        ]);
        let bits = kind_bits(&g);
        let patterns = [
            ArchPattern::any(),
            ArchPattern::any().with_layer(LayerPattern::Kind("attention".into())),
            ArchPattern::any().with_layer(LayerPattern::DenseUnits { min: 1, max: 999 }),
            ArchPattern::any().with_layer(LayerPattern::Uses(Activation::ReLU)),
            ArchPattern::any().with_layer(LayerPattern::AnyOf(vec![
                LayerPattern::Kind("embedding".into()),
                LayerPattern::Kind("attention".into()),
            ])),
            ArchPattern::any().with_layer(LayerPattern::AllOf(vec![
                LayerPattern::Kind("dense".into()),
                LayerPattern::Uses(Activation::ReLU),
            ])),
            ArchPattern::any().with_sequence(vec![
                LayerPattern::Kind("layer_norm".into()),
                LayerPattern::Kind("attention".into()),
                LayerPattern::Kind("add".into()),
            ]),
        ];
        for p in &patterns {
            assert!(p.matches(&g), "pattern should match: {p:?}");
            assert!(
                PatternFilter::new(p).admits(bits),
                "filter must admit a matching graph: {p:?}"
            );
        }
    }

    #[test]
    fn pattern_filter_rejects_missing_kinds() {
        let g = chain_model(&[LayerKind::Input { shape: vec![16] }, dense(16)]);
        let bits = kind_bits(&g);
        let p = ArchPattern::any().with_layer(LayerPattern::Kind("attention".into()));
        assert!(!p.matches(&g));
        assert!(!PatternFilter::new(&p).admits(bits));
        // Unknown kind names can never match: reject everything.
        let q = ArchPattern::any().with_layer(LayerPattern::Kind("warp_drive".into()));
        assert!(!PatternFilter::new(&q).admits(bits));
        // Any alone imposes no constraint.
        let r = ArchPattern::any().with_layer(LayerPattern::Any);
        let f = PatternFilter::new(&r);
        assert!(f.is_empty() && f.admits(0));
    }
}
