//! Architecture analysis utilities: structural diffs, summaries, and
//! Graphviz export.
//!
//! These back the provenance/debugging workflows the paper's conclusion
//! sketches ("explain or debug model performance ... similar to how git
//! does for source code"): a structural diff between two architectures,
//! per-kind composition statistics, and DOT rendering of compact graphs
//! with optional LCP highlighting.

use std::collections::HashMap;

use evostore_tensor::VertexId;

use crate::compact::CompactGraph;
use crate::lcp::LcpResult;

/// Structural difference between a graph `G` and an ancestor `A`,
/// relative to a computed LCP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDiff {
    /// Vertices of `G` inside the shared prefix.
    pub shared: Vec<VertexId>,
    /// Vertices of `G` outside the prefix (new/changed in `G`).
    pub added: Vec<VertexId>,
    /// Vertices of `A` not matched by any prefix vertex (removed or
    /// changed relative to `G`).
    pub removed: Vec<VertexId>,
}

impl GraphDiff {
    /// Compute the diff induced by an LCP result.
    pub fn from_lcp(g: &CompactGraph, a: &CompactGraph, lcp: &LcpResult) -> GraphDiff {
        let mut matched_a = vec![false; a.len()];
        for v in &lcp.prefix {
            if let Some(av) = lcp.match_in_ancestor[v.0 as usize] {
                matched_a[av.0 as usize] = true;
            }
        }
        let shared = lcp.prefix.clone();
        let in_prefix: std::collections::HashSet<u32> = lcp.prefix.iter().map(|v| v.0).collect();
        let added = g
            .vertex_ids()
            .filter(|v| !in_prefix.contains(&v.0))
            .collect();
        let removed = a
            .vertex_ids()
            .filter(|v| !matched_a[v.0 as usize])
            .collect();
        GraphDiff {
            shared,
            added,
            removed,
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} shared, {} added, {} removed",
            self.shared.len(),
            self.added.len(),
            self.removed.len()
        )
    }
}

/// Per-kind composition and shape statistics of one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchStats {
    /// Leaf-layer count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Longest path length (depth) in vertices.
    pub depth: usize,
    /// Maximum in-degree (joins).
    pub max_in_degree: u32,
    /// Total parameters.
    pub params: usize,
    /// Total parameter bytes.
    pub param_bytes: usize,
    /// Count per layer kind name.
    pub kind_counts: HashMap<&'static str, usize>,
}

/// Compute [`ArchStats`] for a compact graph.
pub fn arch_stats(g: &CompactGraph) -> ArchStats {
    let mut kind_counts: HashMap<&'static str, usize> = HashMap::new();
    let mut params = 0usize;
    let mut max_in = 0u32;
    for v in g.vertex_ids() {
        let cfg = &g.vertex(v).config;
        *kind_counts.entry(cfg.kind.name()).or_default() += 1;
        params += cfg.param_count();
        max_in = max_in.max(g.in_degree(v));
    }
    // Longest path over the topological order.
    let order = g.topo_order();
    let mut dist = vec![1usize; g.len()];
    for &u in &order {
        for &v in g.out(u) {
            dist[v as usize] = dist[v as usize].max(dist[u.0 as usize] + 1);
        }
    }
    ArchStats {
        vertices: g.len(),
        edges: g.edge_count(),
        depth: dist.iter().copied().max().unwrap_or(0),
        max_in_degree: max_in,
        params,
        param_bytes: g.total_param_bytes(),
        kind_counts,
    }
}

/// Render a compact graph as Graphviz DOT. Vertices inside
/// `highlight_prefix` (an LCP result, if given) are drawn filled — the
/// visual version of Figure 2.
pub fn to_dot(g: &CompactGraph, highlight: Option<&LcpResult>) -> String {
    let in_prefix: std::collections::HashSet<u32> = highlight
        .map(|r| r.prefix.iter().map(|v| v.0).collect())
        .unwrap_or_default();
    let mut out = String::from(
        "digraph model {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    for v in g.vertex_ids() {
        let cfg = &g.vertex(v).config;
        let style = if in_prefix.contains(&v.0) {
            ", style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        out.push_str(&format!(
            "  v{} [label=\"{}: {}\"{}];\n",
            v.0,
            v.0,
            cfg.kind.name(),
            style
        ));
    }
    for (from, to) in g.edge_list() {
        out.push_str(&format!("  v{from} -> v{to};\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::flatten::flatten;
    use crate::layer::{Activation, LayerConfig, LayerKind};
    use crate::lcp::lcp;

    fn seq(units: &[u32]) -> CompactGraph {
        let mut a = Architecture::new("seq");
        let mut prev = a.add_layer(LayerConfig::new(
            "in",
            LayerKind::Input {
                shape: vec![units[0]],
            },
        ));
        let mut inf = units[0];
        for (i, &u) in units.iter().enumerate().skip(1) {
            prev = a.chain(
                prev,
                LayerConfig::new(
                    format!("d{i}"),
                    LayerKind::Dense {
                        in_features: inf,
                        units: u,
                        activation: Activation::ReLU,
                    },
                ),
            );
            inf = u;
        }
        flatten(&a).unwrap()
    }

    #[test]
    fn diff_partitions_vertices() {
        let g = seq(&[4, 8, 8, 2]);
        let a = seq(&[4, 8, 9, 3]);
        let r = lcp(&g, &a);
        let d = GraphDiff::from_lcp(&g, &a, &r);
        assert_eq!(d.shared.len() + d.added.len(), g.len());
        assert_eq!(d.shared.len(), r.len());
        // A's unmatched vertices: the two differing dense layers.
        assert_eq!(d.removed.len(), 2);
        assert!(d.summary().contains("shared"));
    }

    #[test]
    fn identical_graphs_diff_empty() {
        let g = seq(&[4, 8, 2]);
        let r = lcp(&g, &g);
        let d = GraphDiff::from_lcp(&g, &g, &r);
        assert_eq!(d.added.len(), 0);
        assert_eq!(d.removed.len(), 0);
        assert_eq!(d.shared.len(), g.len());
    }

    #[test]
    fn stats_capture_shape() {
        let g = seq(&[4, 8, 8, 2]);
        let s = arch_stats(&g);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.depth, 4); // a pure chain
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.kind_counts["dense"], 3);
        assert_eq!(s.kind_counts["input"], 1);
        assert_eq!(s.params, (4 * 8 + 8) + (8 * 8 + 8) + (8 * 2 + 2));
        assert_eq!(s.param_bytes, s.params * 4);
    }

    #[test]
    fn depth_of_branching_graph() {
        // input -> a -> add ; input -> add (skip): depth 3.
        let mut m = Architecture::new("m");
        let i = m.add_layer(LayerConfig::new("in", LayerKind::Input { shape: vec![4] }));
        let a = m.chain(
            i,
            LayerConfig::new(
                "a",
                LayerKind::Dense {
                    in_features: 4,
                    units: 4,
                    activation: Activation::ReLU,
                },
            ),
        );
        let add = m.add_layer(LayerConfig::new("add", LayerKind::Add));
        m.connect(a, add);
        m.connect(i, add);
        let g = flatten(&m).unwrap();
        let s = arch_stats(&g);
        assert_eq!(s.depth, 3);
        assert_eq!(s.max_in_degree, 2);
    }

    #[test]
    fn dot_export_mentions_every_vertex_and_edge() {
        let g = seq(&[4, 8, 2]);
        let r = lcp(&g, &g);
        let dot = to_dot(&g, Some(&r));
        assert!(dot.starts_with("digraph"));
        for v in g.vertex_ids() {
            assert!(dot.contains(&format!("v{} [", v.0)));
        }
        assert_eq!(dot.matches("->").count(), g.edge_count());
        // Highlighted prefix produces filled nodes.
        assert_eq!(dot.matches("fillcolor").count(), g.len());
        // Without highlight: none.
        assert_eq!(to_dot(&g, None).matches("fillcolor").count(), 0);
    }
}
