//! Longest-common-prefix (LCP) queries over compact graphs.
//!
//! The LCP between a new candidate `G` and an ancestor `A` is the paper's
//! best-match pattern for transfer learning (§2): the set of vertices `V`
//! such that `v ∈ V` iff (1) the layer choice of `v` is identical in both
//! graphs and (2) *all* vertices feeding `v` are also in `V`. Transferring
//! and freezing exactly this prefix maximizes reuse while keeping training
//! semantics intact.
//!
//! [`lcp`] implements the paper's Algorithm 1: a frontier expansion from
//! the root with per-vertex visit counters; a vertex joins the prefix when
//! its counter reaches `max(in_degree_G, in_degree_A)`, i.e. when every
//! input has matched in both graphs. Worst case `O(min(|V_G|, |V_A|))`.
//!
//! [`lcp_fixpoint`] is a deliberately naive `O(V^2)` reference
//! implementation used for differential testing and for the ablation bench
//! (it re-derives the definition by fixpoint iteration).

use std::collections::VecDeque;

use evostore_tensor::VertexId;
use serde::{Deserialize, Serialize};

use crate::compact::{adjacency_sig_index, CompactGraph};

/// Result of one LCP computation between a candidate graph `G` and one
/// ancestor `A`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LcpResult {
    /// Vertices of `G` in the longest common prefix, in discovery order.
    pub prefix: Vec<VertexId>,
    /// For each vertex of `G` (indexed by id): the matching vertex of `A`,
    /// if the vertex is in the prefix.
    pub match_in_ancestor: Vec<Option<VertexId>>,
}

impl LcpResult {
    /// Empty result sized for a graph with `n` vertices.
    pub fn empty(n: usize) -> LcpResult {
        LcpResult {
            prefix: Vec::new(),
            match_in_ancestor: vec![None; n],
        }
    }

    /// Prefix length (the quantity Algorithm 1 maximizes).
    #[inline]
    pub fn len(&self) -> usize {
        self.prefix.len()
    }

    /// True when no vertex matched.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty()
    }

    /// Fraction of `G`'s vertices covered by the prefix.
    pub fn fraction_of(&self, g: &CompactGraph) -> f64 {
        if g.is_empty() {
            0.0
        } else {
            self.prefix.len() as f64 / g.len() as f64
        }
    }
}

/// Compute the longest common prefix of `g` against one ancestor `a`
/// (Algorithm 1 of the paper).
pub fn lcp(g: &CompactGraph, a: &CompactGraph) -> LcpResult {
    let n = g.len();
    let mut result = LcpResult::empty(n);
    if n == 0 || a.is_empty() {
        return result;
    }
    // Root must match (the recursion base case: "if the input layer
    // matches, it is included in V").
    if g.sig(g.root()) != a.sig(a.root()) {
        return result;
    }

    // sig -> out-neighbor ids, per A vertex, for O(1) match candidates.
    let a_index = adjacency_sig_index(a);

    let mut visits = vec![0u32; n];
    let mut matched_a = vec![false; a.len()];
    let mut in_prefix = vec![false; n];

    result.match_in_ancestor[g.root().0 as usize] = Some(a.root());
    matched_a[a.root().0 as usize] = true;

    let mut frontier = VecDeque::new();
    frontier.push_back(g.root());

    while let Some(u) = frontier.pop_front() {
        if in_prefix[u.0 as usize] {
            continue;
        }
        in_prefix[u.0 as usize] = true;
        result.prefix.push(u);

        let au =
            result.match_in_ancestor[u.0 as usize].expect("frontier vertices always carry a match");

        for &v_raw in g.out(u) {
            let v = VertexId(v_raw);
            let vsig = g.sig(v);

            // Establish (or reuse) the tentative match of v in A.
            let av = match result.match_in_ancestor[v.0 as usize] {
                Some(av) => {
                    // v already matched; this G edge counts only if the
                    // corresponding A edge (au -> av) exists.
                    if !a.out(au).contains(&av.0) {
                        continue;
                    }
                    av
                }
                None => {
                    // Greedily bind v to the first signature-equal,
                    // still-unmatched out-neighbor of au in A.
                    let Some(cands) = a_index[au.0 as usize].get(&vsig) else {
                        continue;
                    };
                    let Some(&av_raw) = cands.iter().find(|&&c| !matched_a[c as usize]) else {
                        continue;
                    };
                    let av = VertexId(av_raw);
                    result.match_in_ancestor[v.0 as usize] = Some(av);
                    matched_a[av.0 as usize] = true;
                    av
                }
            };

            visits[v.0 as usize] += 1;
            let need = g.in_degree(v).max(a.in_degree(av));
            if visits[v.0 as usize] == need {
                frontier.push_back(v);
            }
        }
    }

    // Tentative matches that never completed are not part of the prefix:
    // clear them so `match_in_ancestor` is `Some` exactly on the prefix.
    for (v, in_p) in in_prefix.iter().enumerate() {
        if !in_p {
            result.match_in_ancestor[v] = None;
        }
    }
    result
}

/// Naive reference implementation: iterate the recursive definition to a
/// fixpoint. `O(V^2)` per pair; exists for differential testing and the
/// `lcp` ablation benchmark.
pub fn lcp_fixpoint(g: &CompactGraph, a: &CompactGraph) -> LcpResult {
    let n = g.len();
    let mut result = LcpResult::empty(n);
    if n == 0 || a.is_empty() || g.sig(g.root()) != a.sig(a.root()) {
        return result;
    }

    // Predecessor lists for both graphs.
    let preds = |graph: &CompactGraph| -> Vec<Vec<u32>> {
        let mut p = vec![Vec::new(); graph.len()];
        for (from, to) in graph.edge_list() {
            p[to as usize].push(from);
        }
        p
    };
    let g_preds = preds(g);
    let a_preds = preds(a);

    let mut matched: Vec<Option<VertexId>> = vec![None; n];
    let mut matched_a = vec![false; a.len()];
    matched[g.root().0 as usize] = Some(a.root());
    matched_a[a.root().0 as usize] = true;

    loop {
        let mut changed = false;
        'next_vertex: for v in g.vertex_ids() {
            if matched[v.0 as usize].is_some() {
                continue;
            }
            // All G-predecessors must already be matched.
            let gp = &g_preds[v.0 as usize];
            if gp.is_empty() || !gp.iter().all(|&p| matched[p as usize].is_some()) {
                continue;
            }
            // Candidate A vertices: same signature, unmatched, with
            // predecessor set exactly {match(p) : p in gp}.
            for av in a.vertex_ids() {
                if matched_a[av.0 as usize] || a.sig(av) != g.sig(v) {
                    continue;
                }
                let ap = &a_preds[av.0 as usize];
                if ap.len() != gp.len() {
                    continue;
                }
                let mapped: std::collections::HashSet<u32> =
                    gp.iter().map(|&p| matched[p as usize].unwrap().0).collect();
                let actual: std::collections::HashSet<u32> = ap.iter().copied().collect();
                if mapped == actual {
                    matched[v.0 as usize] = Some(av);
                    matched_a[av.0 as usize] = true;
                    changed = true;
                    continue 'next_vertex;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Emit in id order (discovery order is not defined for the fixpoint).
    for v in g.vertex_ids() {
        if matched[v.0 as usize].is_some() {
            result.prefix.push(v);
        }
    }
    result.match_in_ancestor = matched;
    result
}

/// Outcome of scanning a set of ancestors for the best transfer source.
#[derive(Debug, Clone)]
pub struct BestMatch<K> {
    /// Caller-supplied key of the winning ancestor.
    pub key: K,
    /// The LCP against that ancestor.
    pub result: LcpResult,
    /// Tie-break score of the winner (higher wins on equal prefix length —
    /// the paper prefers the ancestor "with the highest quality metrics").
    pub score: f64,
}

/// Scan `ancestors` and return the one with the longest LCP against `g`,
/// breaking prefix-length ties by the higher `score`. Returns `None` when
/// no ancestor matches at all (empty prefixes everywhere).
pub fn best_ancestor<K, I>(g: &CompactGraph, ancestors: I) -> Option<BestMatch<K>>
where
    I: IntoIterator<Item = (K, f64)>,
    K: AsGraph,
{
    let mut best: Option<BestMatch<K>> = None;
    for (key, score) in ancestors {
        let r = lcp(g, key.graph());
        if r.is_empty() {
            continue;
        }
        let better = match &best {
            None => true,
            Some(b) => r.len() > b.result.len() || (r.len() == b.result.len() && score > b.score),
        };
        if better {
            best = Some(BestMatch {
                key,
                result: r,
                score,
            });
        }
    }
    best
}

/// Anything that can lend a compact graph to [`best_ancestor`].
pub trait AsGraph {
    /// Borrow the graph.
    fn graph(&self) -> &CompactGraph;
}

impl AsGraph for &CompactGraph {
    fn graph(&self) -> &CompactGraph {
        self
    }
}

impl AsGraph for std::sync::Arc<CompactGraph> {
    fn graph(&self) -> &CompactGraph {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::flatten::flatten;
    use crate::layer::{Activation, LayerConfig, LayerKind};

    fn input(d: u32) -> LayerConfig {
        LayerConfig::new("in", LayerKind::Input { shape: vec![d] })
    }

    fn dense(name: &str, i: u32, u: u32) -> LayerConfig {
        LayerConfig::new(
            name,
            LayerKind::Dense {
                in_features: i,
                units: u,
                activation: Activation::ReLU,
            },
        )
    }

    fn seq(units: &[u32]) -> CompactGraph {
        let mut a = Architecture::new("seq");
        let mut prev = a.add_layer(input(units[0]));
        let mut inf = units[0];
        for (i, &u) in units.iter().enumerate().skip(1) {
            prev = a.chain(prev, dense(&format!("d{i}"), inf, u));
            inf = u;
        }
        flatten(&a).unwrap()
    }

    #[test]
    fn identical_graphs_full_prefix() {
        let g = seq(&[4, 8, 8, 2]);
        let r = lcp(&g, &g);
        assert_eq!(r.len(), g.len());
        // Self-match maps every vertex to itself.
        for v in g.vertex_ids() {
            assert_eq!(r.match_in_ancestor[v.0 as usize], Some(v));
        }
    }

    #[test]
    fn mismatched_root_empty_prefix() {
        let g = seq(&[4, 8]);
        let a = seq(&[5, 8]);
        assert!(lcp(&g, &a).is_empty());
    }

    #[test]
    fn sequential_prefix_stops_at_first_difference() {
        let g = seq(&[4, 8, 8, 2]);
        let a = seq(&[4, 8, 9, 2]); // differs at layer 2
        let r = lcp(&g, &a);
        assert_eq!(r.len(), 2); // input + first dense
                                // Nothing after the mismatch, even though dims re-align later
                                // would not matter here (d3 differs because in_features differ).
    }

    #[test]
    fn suffix_only_match_is_not_a_prefix() {
        // Same last layer, different first layer: prefix is empty beyond
        // the mismatch (prefix-closure).
        let g = seq(&[4, 8, 2]);
        let a = seq(&[4, 9, 2]);
        let r = lcp(&g, &a);
        assert_eq!(r.len(), 1); // only input
    }

    /// Figure 2 of the paper: parent vs grandparent share {1,2,3}; parent
    /// vs child share {1,2,3,4,5}.
    #[test]
    fn figure2_scenario() {
        // Layer vocabulary: li = dense layer with distinctive width i.
        let l = |name: &str, w: u32| dense(name, 4, w);

        // Grandparent: in -> l1 -> l2 -> l3 -> l4 -> l5
        // (we model the paper's branch structure linearly per side; the
        //  branch case is covered by `branching_join_requires_all_inputs`).
        let build = |widths: &[u32]| {
            let mut a = Architecture::new("m");
            let mut prev = a.add_layer(input(4));
            for (i, &w) in widths.iter().enumerate() {
                prev = a.chain(prev, l(&format!("l{i}"), w));
            }
            flatten(&a).unwrap()
        };

        let grandparent = build(&[10, 20, 30, 99, 98]);
        let parent = build(&[10, 20, 30, 40, 50]);
        let child = build(&[10, 20, 30, 40, 50, 60]);

        let gp = lcp(&parent, &grandparent);
        assert_eq!(gp.len(), 4); // input + {l1,l2,l3}

        let pc = lcp(&child, &parent);
        assert_eq!(pc.len(), 6); // input + {l1..l5}
    }

    #[test]
    fn branching_join_requires_all_inputs() {
        // G:  in -> a -> add ; in -> b -> add ; add -> out
        // A:  in -> a -> add ; in -> B'-> add ; add -> out   (b differs)
        // The add vertex must NOT enter the prefix: only one of its two
        // inputs matches.
        let build = |b_width: u32| {
            let mut m = Architecture::new("m");
            let i = m.add_layer(input(4));
            let a = m.chain(i, dense("a", 4, 7));
            let b = m.chain(i, dense("b", 4, b_width));
            let add = m.add_layer(LayerConfig::new("add", LayerKind::Add));
            m.connect(a, add);
            m.connect(b, add);
            let out = m.add_layer(dense("out", 7, 2));
            m.connect(add, out);
            flatten(&m).unwrap()
        };
        let g = build(9);
        let a = build(13);
        let r = lcp(&g, &a);
        // Prefix: input + matching branch "a" only.
        assert_eq!(r.len(), 2);
        let names: Vec<&str> = r
            .prefix
            .iter()
            .map(|&v| g.vertex(v).config.kind.name())
            .collect();
        assert!(names.contains(&"input"));
        assert!(!names.contains(&"add"));
    }

    #[test]
    fn join_enters_prefix_when_both_branches_match() {
        let build = || {
            let mut m = Architecture::new("m");
            let i = m.add_layer(input(4));
            let a = m.chain(i, dense("a", 4, 7));
            let b = m.chain(i, dense("b", 4, 9));
            let add = m.add_layer(LayerConfig::new("add", LayerKind::Add));
            m.connect(a, add);
            m.connect(b, add);
            flatten(&m).unwrap()
        };
        let g = build();
        let a = build();
        let r = lcp(&g, &a);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn in_degree_mismatch_blocks_vertex() {
        // G's add has 2 inputs; A's add has 3. Even with 2 matching
        // inputs, need = max(2,3) = 3 is unreachable.
        let build = |extra: bool| {
            let mut m = Architecture::new("m");
            let i = m.add_layer(input(4));
            let a = m.chain(i, dense("a", 4, 7));
            let b = m.chain(i, dense("b", 4, 9));
            let add = m.add_layer(LayerConfig::new("add", LayerKind::Add));
            m.connect(a, add);
            m.connect(b, add);
            if extra {
                let c = m.chain(i, dense("c", 4, 11));
                m.connect(c, add);
            }
            flatten(&m).unwrap()
        };
        let g = build(false);
        let a = build(true);
        let r = lcp(&g, &a);
        let add_in_prefix = r
            .prefix
            .iter()
            .any(|&v| g.vertex(v).config.kind.name() == "add");
        assert!(!add_in_prefix);
    }

    #[test]
    fn nested_submodel_partial_match_found_at_leaf_granularity() {
        // §4.2's motivating case: grandparent has submodel A = {3,4};
        // parent shares leaf 3 but not 4. Leaf-level LCP must still find
        // the partial match inside the submodel.
        let sub = |w2: u32| {
            let mut s = Architecture::new("A");
            let x = s.add_layer(dense("l3", 4, 33));
            s.chain(x, dense("l4", 33, w2));
            s
        };
        let build = |w2: u32| {
            let mut m = Architecture::new("m");
            let i = m.add_layer(input(4));
            let d = m.chain(i, dense("l2", 4, 4));
            let s = m.add_submodel(sub(w2));
            m.connect(d, s);
            flatten(&m).unwrap()
        };
        let g = build(44);
        let a = build(55); // differs inside the submodel, at l4 only
        let r = lcp(&g, &a);
        // input, l2, l3 match; l4 differs.
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn best_ancestor_picks_longest_then_score() {
        let g = seq(&[4, 8, 8, 2]);
        let a_short = seq(&[4, 8, 9, 2]); // LCP 2
        let a_long = seq(&[4, 8, 8, 3]); // LCP 3
        let a_long2 = seq(&[4, 8, 8, 5]); // LCP 3, higher score

        let got =
            best_ancestor(&g, vec![(&a_short, 0.9), (&a_long, 0.5), (&a_long2, 0.8)]).unwrap();
        assert_eq!(got.result.len(), 3);
        assert!((got.score - 0.8).abs() < 1e-9);
        assert!(std::ptr::eq(got.key, &a_long2));
    }

    #[test]
    fn best_ancestor_none_when_nothing_matches() {
        let g = seq(&[4, 8]);
        let a = seq(&[5, 8]);
        assert!(best_ancestor(&g, vec![(&a, 1.0)]).is_none());
    }

    #[test]
    fn fixpoint_agrees_on_sequential() {
        let g = seq(&[4, 8, 8, 2, 7]);
        let a = seq(&[4, 8, 8, 3, 7]);
        let fast = lcp(&g, &a);
        let slow = lcp_fixpoint(&g, &a);
        let mut f: Vec<u32> = fast.prefix.iter().map(|v| v.0).collect();
        let mut s: Vec<u32> = slow.prefix.iter().map(|v| v.0).collect();
        f.sort_unstable();
        s.sort_unstable();
        assert_eq!(f, s);
    }

    #[test]
    fn prefix_is_closed_under_predecessors() {
        let g = seq(&[4, 8, 8, 2]);
        let a = seq(&[4, 8, 8, 9]);
        let r = lcp(&g, &a);
        let inset: std::collections::HashSet<u32> = r.prefix.iter().map(|v| v.0).collect();
        for (from, to) in g.edge_list() {
            if inset.contains(&to) {
                assert!(inset.contains(&from), "prefix not predecessor-closed");
            }
        }
    }
}
